#!/usr/bin/env sh
# Offline CI gate: build, test, lint, metrics schema. No network access
# required — the workspace has zero external dependencies by design.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Doc gate: every crate must document cleanly — broken intra-doc links,
# bare URLs and other rustdoc lints fail the build.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

# Metrics-schema gate: the library-level tests assert every canonical
# counter/histogram/span key is present and that the timing-stripped
# report is byte-identical across --jobs values.
cargo test -q --offline --test metrics_schema

# Chaos gate: deterministic fault injection (injected panics, forced
# Unknown exits, synthetic deadline expiry) must yield byte-identical
# partial suites and stripped metrics across --jobs values, with every
# skip attributed.
cargo test -q --offline --features chaos --test chaos

# Bench smoke gate: the solver-core sweep (dpll / fresh cdcl /
# incremental session) must run end-to-end at a tiny scale. The binary
# itself asserts three-way verdict parity and byte-identical session
# suites across --jobs before it prints a single timing, so this leg is
# a correctness gate too. Writes to a temp file, not results/.
SWEEP_OUT=$(mktemp)
XDATA_MAX_RELS=3 XDATA_STAR_SPOKES=2 XDATA_RANDOM_CASES=2 \
    XDATA_SWEEP_OUT="$SWEEP_OUT" \
    cargo run -q --release --offline -p xdata-bench --bin solver_sweep \
    > /dev/null
rm -f "$SWEEP_OUT" "$SWEEP_OUT.trace.json"
echo "ci: solver_sweep smoke (parity + jobs determinism) OK"

# Grading-sweep smoke gate: the batch grader over a tiny synthetic
# submission pile. The binary asserts hash/nested verdict parity
# (byte-identical rendered reports), per-candidate agreement between the
# amortized batch and the independent per-candidate loop, and bulk-join
# result parity, before it prints a single timing.
GRADE_OUT=$(mktemp)
XDATA_GRADE_CANDIDATES=60 XDATA_JOIN_ROWS=64 \
    XDATA_SWEEP_OUT="$GRADE_OUT" \
    cargo run -q --release --offline -p xdata-bench --bin grading_sweep \
    > /dev/null
rm -f "$GRADE_OUT" "$GRADE_OUT.trace.json"
echo "ci: grading_sweep smoke (batch/independent + hash/nested parity) OK"

# Doc-link gate: every backticked metric key named in DESIGN.md must
# exist in the canonical registry (crates/xdata-obs/src/names.rs), so
# the design doc's consolidated key table cannot drift from the code.
for key in $(grep -o '`\(core\|engine\|solver\|kill\|par\|serve\)\.[a-z_.]*`' DESIGN.md \
        | tr -d '\`' | sed 's/\.$//' | sort -u); do
    case "$key" in
        # Brace-expanded table rows list their members explicitly below.
        kill.killed|kill.survived) continue ;;
    esac
    grep -q "\"$key" crates/xdata-obs/src/names.rs || {
        echo "ci: DESIGN.md names metric key $key, missing from xdata-obs names registry" >&2
        exit 1
    }
done
for class in join cmp agg having_cmp having_agg distinct subquery like null_check; do
    for verdict in killed survived; do
        grep -q "\"kill.$verdict.$class\"" crates/xdata-obs/src/names.rs || {
            echo "ci: kill.$verdict.$class missing from xdata-obs names registry" >&2
            exit 1
        }
    done
done
echo "ci: DESIGN.md metric keys all present in the registry"

# End-to-end check of the CLI surface on the paper's running example:
# generate with --metrics-json under two thread counts, require the
# canonical keys, and require the timing-stripped reports identical.
Q='SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000'
M1=$(mktemp) && M4=$(mktemp)
trap 'rm -f "$M1" "$M4"' EXIT
./target/release/xdata generate --schema examples/university.sql \
    --query "$Q" --jobs 1 --metrics-json "$M1" > /dev/null
./target/release/xdata generate --schema examples/university.sql \
    --query "$Q" --jobs 4 --metrics-json "$M4" > /dev/null
for key in solver.decisions solver.conflicts solver.propagations \
    solver.theory_relaxations solver.unknown_exits \
    solver.learned_clauses solver.restarts solver.backjump_depth \
    core.skeleton_cache.hit core.skeleton_cache.miss \
    core.solve_memo.hit core.solve_memo.miss \
    kill.killed.join timings_ns; do
    grep -q "\"$key\"" "$M1" || { echo "ci: metrics key $key missing" >&2; exit 1; }
done
# Strip the trailing timings_ns section (always the last top-level key)
# and byte-compare.
strip_timings() { sed -n '1,/"timings_ns"/p' "$1" | sed '$d'; }
if [ "$(strip_timings "$M1")" != "$(strip_timings "$M4")" ]; then
    echo "ci: timing-stripped metrics differ between --jobs 1 and --jobs 4" >&2
    exit 1
fi
echo "ci: metrics schema + determinism OK"

# Extended-class smoke leg (§V-H): generate + evaluate on the nullable
# subquery example. The suite must plan a NULL-membership witness (the
# `NOT IN` trap dataset), kill every subquery-connective mutant, count
# the witness in core.targets.null_witness, and stay byte-identical
# across --jobs values.
EQ='SELECT name FROM instructor WHERE id IN (SELECT id FROM teaches WHERE year > 2000)'
E1=$(mktemp) && E4=$(mktemp) && EM=$(mktemp)
trap 'rm -f "$M1" "$M4" "$E1" "$E4" "$EM"' EXIT
./target/release/xdata generate --schema examples/university_subqueries.sql \
    --query "$EQ" --jobs 1 --metrics-json "$EM" > "$E1"
./target/release/xdata generate --schema examples/university_subqueries.sql \
    --query "$EQ" --jobs 4 > "$E4"
if ! cmp -s "$E1" "$E4"; then
    echo "ci: extended-class suite differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi
grep -q 'NULL membership witness' "$E1" || {
    echo "ci: extended-class suite is missing the NULL membership witness dataset" >&2
    exit 1
}
grep -q '"core.targets.null_witness": *[1-9]' "$EM" || {
    echo "ci: core.targets.null_witness was not counted for the witness target" >&2
    exit 1
}
EVAL_OUT=$(./target/release/xdata evaluate \
    --schema examples/university_subqueries.sql --query "$EQ")
echo "$EVAL_OUT" | grep -q ' 0 surviving' || {
    echo "ci: a subquery-connective mutant survived on the extended-class example" >&2
    echo "$EVAL_OUT" >&2
    exit 1
}
echo "$EVAL_OUT" | grep -q 'subquery connective mutant' || {
    echo "ci: evaluate produced no subquery-connective mutants" >&2
    exit 1
}
echo "ci: extended-class smoke (NULL witness + kill-complete + jobs determinism) OK"

# Grading leg: batch-grade the sample submission pile against the
# reference on the shipped schema, under two thread counts and both join
# strategies — the rendered verdict report carries no timings and must be
# byte-identical everywhere.
GQ='SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id'
G1=$(mktemp) && G4=$(mktemp)
trap 'rm -f "$M1" "$M4" "$G1" "$G4"' EXIT
./target/release/xdata grade --schema examples/university.sql \
    --query "$GQ" --candidates examples/submissions.sql --jobs 1 > "$G1"
./target/release/xdata grade --schema examples/university.sql \
    --query "$GQ" --candidates examples/submissions.sql --jobs 4 \
    --join-strategy nested-loop > "$G4"
grep -q '^#0 *PASS' "$G1" || { echo "ci: expected candidate 0 to PASS" >&2; exit 1; }
grep -q 'INVALID' "$G1" || { echo "ci: expected an INVALID verdict" >&2; exit 1; }
grep -q 'dup\]' "$G1" || { echo "ci: expected a dedup hit" >&2; exit 1; }
if ! cmp -s "$G1" "$G4"; then
    echo "ci: verdict report differs across --jobs/--join-strategy" >&2
    exit 1
fi
echo "ci: batch grading verdict stability OK"

# Trace leg: capture an event timeline on the same Table I example, have
# `xdata trace --validate` run the built-in structural checker (balanced
# begin/end nesting, monotonic per-thread timestamps, flow ordering — no
# external tooling), and require the critical path to tile the root span
# (the subcommand exits non-zero if the segment sum diverges).
T=$(mktemp) && F=$(mktemp)
trap 'rm -f "$M1" "$M4" "$G1" "$G4" "$T" "$F"' EXIT
./target/release/xdata evaluate --schema examples/university.sql \
    --query "$Q" --jobs 4 --trace-out "$T" > /dev/null
grep -q '"traceEvents"' "$T" || {
    echo "ci: --trace-out did not write Chrome trace-event JSON" >&2
    exit 1
}
grep -q '"git_sha"' "$T" || {
    echo "ci: trace artifact is missing build provenance metadata" >&2
    exit 1
}
TRACE_OUT=$(./target/release/xdata trace "$T" --validate --folded "$F")
echo "$TRACE_OUT" | grep -q '^validated:' || {
    echo "ci: xdata trace --validate did not pass the structural checker" >&2
    exit 1
}
echo "$TRACE_OUT" | grep -q 'critical path' || {
    echo "ci: xdata trace printed no critical path" >&2
    exit 1
}
test -s "$F" || { echo "ci: folded-stacks export is empty" >&2; exit 1; }
echo "ci: trace capture + validation + critical path OK"

# Help-snapshot leg: `xdata --help` is the CLI's documented surface;
# scripts/cli_help.txt is its committed snapshot. Any flag or command
# added without updating the snapshot (and thus the README flag table
# next to it) fails here.
H=$(mktemp)
trap 'rm -f "$M1" "$M4" "$G1" "$G4" "$T" "$F" "$H"' EXIT
./target/release/xdata --help > "$H"
if ! cmp -s "$H" scripts/cli_help.txt; then
    echo "ci: xdata --help drifted from scripts/cli_help.txt" >&2
    echo "ci: regenerate with: ./target/release/xdata --help > scripts/cli_help.txt" >&2
    echo "ci: (and update the README flag table if the surface changed)" >&2
    diff scripts/cli_help.txt "$H" >&2 || true
    exit 1
fi
echo "ci: CLI --help snapshot OK"

# Protocol-doc gate: PROTOCOL.md is normative for the wire format, so it
# must name every public wire type and every error code defined in
# crates/xdata-client/src/protocol.rs. Renaming or adding either without
# documenting it fails here.
for name in $(grep -o 'pub \(struct\|enum\) [A-Za-z]*' \
        crates/xdata-client/src/protocol.rs | awk '{print $3}' | sort -u); do
    grep -q "$name" PROTOCOL.md || {
        echo "ci: wire type $name (protocol.rs) is not documented in PROTOCOL.md" >&2
        exit 1
    }
done
for code in $(sed -n '/fn as_str/,/^    }/p' crates/xdata-client/src/protocol.rs \
        | grep -o '"[a-z_]*"' | tr -d '"' | sort -u); do
    grep -q "\`$code\`" PROTOCOL.md || {
        echo "ci: error code $code (protocol.rs) is not documented in PROTOCOL.md" >&2
        exit 1
    }
done
echo "ci: PROTOCOL.md covers every wire type and error code"

# Serve loopback smoke: boot the real daemon on an ephemeral port, ping
# it, require a wire `generate` byte-identical to the batch CLI on the
# same inputs (the service mode's core contract), then shut it down
# gracefully and require exit 0.
cargo build -q --release --offline -p xdata-client
SERVE_LOG=$(mktemp) && WIRE=$(mktemp) && LOCAL=$(mktemp)
./target/release/xdata serve --listen 127.0.0.1:0 > "$SERVE_LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -f "$M1" "$M4" "$G1" "$G4" "$T" "$F" "$H" "$SERVE_LOG" "$WIRE" "$LOCAL"' EXIT
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "ci: xdata serve never printed its listen address" >&2; exit 1; }
./target/release/xdata-client --addr "$ADDR" ping | grep -q '^pong: protocol 1' || {
    echo "ci: daemon ping failed" >&2
    exit 1
}
./target/release/xdata-client --addr "$ADDR" generate \
    --schema examples/university.sql --query "$Q" > "$WIRE"
./target/release/xdata generate \
    --schema examples/university.sql --query "$Q" > "$LOCAL"
if ! cmp -s "$WIRE" "$LOCAL"; then
    echo "ci: wire generate output differs from the batch CLI (byte-identity contract)" >&2
    exit 1
fi
./target/release/xdata-client --addr "$ADDR" shutdown > /dev/null
wait "$SERVE_PID" || { echo "ci: daemon exited nonzero after graceful shutdown" >&2; exit 1; }
echo "ci: serve loopback smoke (ping + wire/CLI byte-identity + graceful shutdown) OK"

# Serve-sweep smoke: the service-mode bench at a tiny scale. The binary
# asserts wire/in-process output parity on every response and
# warm-p50 < cold before printing a single timing, so this is a
# correctness gate for the warm path too. Writes to a temp file.
SERVE_SWEEP_OUT=$(mktemp)
XDATA_SERVE_REQUESTS=3 XDATA_SERVE_WORKERS=2 \
    XDATA_SWEEP_OUT="$SERVE_SWEEP_OUT" \
    cargo run -q --release --offline -p xdata-bench --bin serve_sweep \
    > /dev/null
rm -f "$SERVE_SWEEP_OUT"
echo "ci: serve_sweep smoke (parity + warm<cold) OK"
