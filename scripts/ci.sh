#!/usr/bin/env sh
# Offline CI gate: build, test, lint. No network access required — the
# workspace has zero external dependencies by design.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
