-- Extended-class example (§V-H): the university cut with a *nullable*
-- foreign-key column. `teaches.id` carries an explicit NULL marker, so
-- membership subqueries linked through it plan a NULL-membership witness
-- dataset — the dataset that exhibits the `NOT IN` three-valued-logic
-- trap and distinguishes IN from EXISTS connectives. Used by the README
-- walkthrough and the CI extended-class smoke leg.
CREATE TABLE instructor (
    id INT PRIMARY KEY,
    name VARCHAR,
    dept_id INT,
    salary INT
);
CREATE TABLE teaches (
    id INT NULL,
    course_id INT,
    sec_id INT,
    year INT,
    FOREIGN KEY (id) REFERENCES instructor (id)
);
