//! Grading student SQL: the scenario that motivated X-Data (it later became
//! a deployed grading tool at IIT Bombay).
//!
//! ```sh
//! cargo run --example university_grading
//! ```
//!
//! The instructor writes the correct query; each student submission is a
//! candidate. [`XData::grade_batch`] generates the test suite from the
//! *correct* query **once**, collapses structurally equivalent submissions
//! into classes, executes each class against every dataset, and reports a
//! per-student verdict with partial credit — the fraction of datasets a
//! wrong answer still agreed on — without hand-writing a single test case.

use xdata::core::CandidateOutcome;
use xdata::XData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xdata = XData::new(xdata::catalog::university::schema());

    // The assignment: "list names of instructors together with the course
    // ids of all courses they teach".
    let correct = "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id";

    // Student submissions, some right, some subtly wrong, some shared.
    let submissions = [
        ("alice", "SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id"),
        (
            "bob",
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
        ),
        ("carol", "SELECT i.name, t.course_id FROM instructor i JOIN teaches t ON i.id = t.id"),
        ("dave", "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id <> t.id"),
        // eve copied bob's answer with different whitespace: the structural
        // fingerprint collapses them into one class, so her verdict is
        // shared, not recomputed.
        (
            "eve",
            "SELECT i.name,  t.course_id  FROM instructor i LEFT  OUTER JOIN teaches t \
             ON i.id = t.id",
        ),
        // frank's submission does not parse; that is his problem, not the
        // batch's.
        ("frank", "SELECT FROM WHERE"),
    ];

    println!("reference query:\n  {correct}\n");
    let candidates: Vec<String> = submissions.iter().map(|(_, sql)| sql.to_string()).collect();
    let report = xdata.grade_batch(correct, &candidates)?;
    println!(
        "graded {} submissions as {} equivalence classes ({} dedup hits) \
         on {} generated datasets\n",
        report.verdicts.len(),
        report.classes,
        report.dedup_hits,
        report.datasets,
    );

    for ((student, _), verdict) in submissions.iter().zip(&report.verdicts) {
        let score = verdict
            .outcome
            .score(report.datasets)
            .map_or("  n/a".to_string(), |s| format!("{s:.3}"));
        let note = match &verdict.outcome {
            CandidateOutcome::Pass => "agrees with the reference everywhere".to_string(),
            CandidateOutcome::Fail { first_dataset, agreeing, .. } => format!(
                "first differs on dataset {first_dataset}, partial credit {agreeing}/{}",
                report.datasets
            ),
            CandidateOutcome::Invalid { message } => format!("rejected: {message}"),
            CandidateOutcome::ExecError { message } => format!("execution failed: {message}"),
            CandidateOutcome::Unevaluated => "deadline expired before a verdict".to_string(),
        };
        let dup = if verdict.dedup_hit { " [shared verdict]" } else { "" };
        println!("{student:8} score {score}  {note}{dup}");
    }

    println!(
        "\n(bob's LEFT OUTER JOIN and dave's <> differ from the reference on the \
         nullification datasets but keep partial credit for the datasets they \
         matched; alice's commuted join and carol's explicit JOIN are \
         equivalent rewrites and pass; eve inherits bob's verdict through the \
         structural fingerprint without executing anything.)"
    );
    Ok(())
}
