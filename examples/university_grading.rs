//! Grading student SQL: the scenario that motivated X-Data (it later became
//! a deployed grading tool at IIT Bombay).
//!
//! ```sh
//! cargo run --example university_grading
//! ```
//!
//! The instructor writes the correct query; each student submission is a
//! candidate. We generate the test suite from the *correct* query, run both
//! queries on every dataset, and flag submissions that differ anywhere —
//! without hand-writing a single test case.

use xdata::catalog::university;
use xdata::engine::execute_query;
use xdata::relalg::normalize;
use xdata::sql::parse_query;
use xdata::XData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = university::schema();
    let xdata = XData::new(schema.clone());

    // The assignment: "list names of instructors together with the course
    // ids of all courses they teach".
    let correct = "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id";

    // Student submissions, some right, some subtly wrong.
    let submissions = [
        (
            "alice",
            "SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id",
        ),
        (
            "bob",
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
        ),
        (
            "carol",
            "SELECT i.name, t.course_id FROM instructor i JOIN teaches t ON i.id = t.id",
        ),
        (
            "dave",
            "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id <> t.id",
        ),
    ];

    println!("reference query:\n  {correct}\n");
    let run = xdata.generate_for(correct)?;
    println!(
        "generated {} datasets ({} equivalent-mutant groups skipped)\n",
        run.suite.datasets.len(),
        run.suite.skipped.len()
    );

    for (student, sql) in submissions {
        let sub_ast = parse_query(sql)?;
        let sub = normalize(&sub_ast, &schema)?;
        let mut verdict = "PASS".to_string();
        for (di, d) in run.suite.datasets.iter().enumerate() {
            let expected = execute_query(&run.query, &d.dataset, &schema)?;
            let got = execute_query(&sub, &d.dataset, &schema)?;
            if expected != got {
                verdict = format!(
                    "FAIL on dataset {di} ({}): expected {} rows, got {} rows",
                    d.label,
                    expected.len(),
                    got.len()
                );
                break;
            }
        }
        println!("{student:8} {verdict}");
    }

    println!(
        "\n(bob's LEFT OUTER JOIN and dave's <> differ from the reference on the \
         nullification datasets; alice's commuted join and carol's explicit JOIN \
         are equivalent rewrites and pass.)"
    );
    Ok(())
}
