//! Auditing aggregate queries: DISTINCT bugs and operator mix-ups.
//!
//! ```sh
//! cargo run --example aggregate_audit
//! ```
//!
//! `SUM` vs `SUM(DISTINCT)` (or `COUNT` vs `COUNT(DISTINCT)`) is a classic
//! silent bug: the two agree on most ad-hoc test data because duplicates
//! are rare there. Algorithm 4 of the paper constructs a group with a
//! duplicated value pair plus a distinct third value, on which every pair
//! of the eight aggregate operators disagrees wherever possible.

use xdata::catalog::university;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::Mutant;
use xdata::XData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema);

    for sql in [
        "SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id",
        "SELECT dept_id, COUNT(DISTINCT salary) FROM instructor GROUP BY dept_id",
        "SELECT AVG(credits) FROM course",
    ] {
        println!("=== query: {sql}");
        let (run, space, report) = xdata.evaluate(sql, MutationOptions::default())?;
        let agg_ds = run
            .suite
            .datasets
            .iter()
            .find(|d| d.label.contains("aggregate"))
            .expect("aggregate dataset generated");
        println!("aggregate-killing dataset:\n{}", agg_ds.dataset);
        let mutants: Vec<Mutant> = space.iter().collect();
        let mut killed = 0usize;
        let mut survived = Vec::new();
        for (mi, m) in mutants.iter().enumerate() {
            if let Mutant::Agg(am) = m {
                if report.killed_by[mi].is_some() {
                    killed += 1;
                } else {
                    survived.push(format!(
                        "{} -> {}",
                        am.from.display_name(),
                        am.to.display_name()
                    ));
                }
            }
        }
        println!("aggregate mutants killed: {killed}");
        if !survived.is_empty() {
            println!("surviving (equivalent under constraints): {survived:?}");
        }
        println!();
    }
    Ok(())
}
