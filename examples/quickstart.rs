//! Quickstart: generate test data for the paper's introductory query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The query joins `instructor` and `teaches`. A programmer could have
//! meant a left outer join instead (keep instructors who teach nothing) —
//! X-Data generates datasets on which those two queries differ, so running
//! your query on them and eyeballing the result reveals the mistake.

use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Declare the schema in SQL. Only primary and foreign keys are
    // supported constraints (the paper's assumption A1).
    let xdata = XData::from_sql_schema(
        "CREATE TABLE instructor (
             id INT PRIMARY KEY,
             name VARCHAR(20),
             dept VARCHAR(20),
             salary INT
         );
         CREATE TABLE teaches (
             id INT NOT NULL,
             course_id INT NOT NULL,
             PRIMARY KEY (id, course_id),
             FOREIGN KEY (id) REFERENCES instructor (id)
         );",
    )?;

    let sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id";
    println!("query under test:\n  {sql}\n");

    let run = xdata.generate_for(sql)?;
    println!("generated {} test datasets:\n", run.suite.datasets.len());
    for (i, d) in run.suite.datasets.iter().enumerate() {
        println!("=== dataset {i}: {}", d.label);
        println!("{}", d.dataset);
    }
    for s in &run.suite.skipped {
        println!("=== skipped (mutants equivalent): {}", s.label);
    }

    // Which mutants does the suite kill?
    let space = run.mutants(MutationOptions::default());
    let report = xdata::engine::kill::kill_report(
        &run.query,
        &space,
        &run.suite.data(),
        xdata.schema(),
    )?;
    println!(
        "mutation space: {} mutants, {} killed by the suite",
        space.len(),
        report.killed_count()
    );
    for (mi, m) in space.iter().enumerate() {
        let status = match report.killed_by[mi] {
            Some(d) => format!("killed by dataset {d}"),
            None => "SURVIVED (equivalent under the schema constraints)".to_string(),
        };
        println!("  - {} -> {status}", m.describe(&run.query));
    }
    Ok(())
}
