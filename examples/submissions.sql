# Sample submission pile for `xdata grade --candidates`: one candidate
# query per line, `#` lines and blank lines ignored. Graded against the
# assignment "list names of instructors together with the course ids of
# all courses they teach":
#
#   SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id

# Equivalent rewrites: commuted FROM list, explicit JOIN syntax.
SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id
SELECT i.name, t.course_id FROM instructor i JOIN teaches t ON i.id = t.id

# Wrong join type: keeps instructors who teach nothing.
SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id

# A whitespace-noised copy of the previous answer: the structural
# fingerprint collapses it into the same class, so the verdict is shared.
SELECT i.name,  t.course_id FROM instructor i LEFT  OUTER JOIN teaches t ON i.id = t.id

# Wrong comparison operator.
SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id <> t.id

# Does not parse: graded INVALID, the rest of the batch is unaffected.
SELECT FROM WHERE
