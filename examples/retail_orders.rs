//! A non-academic domain: auditing revenue queries over a retail schema.
//!
//! ```sh
//! cargo run --example retail_orders
//! ```
//!
//! Shows X-Data on a schema it has never seen (declared inline in SQL),
//! with nullable foreign keys (§V-H: guest orders have no customer),
//! an IN-subquery, and an aggregate query — the full feature surface.

use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xdata = XData::from_sql_schema(
        "CREATE TABLE customer (
             cust_id INT PRIMARY KEY,
             name VARCHAR(30),
             tier INT
         );
         CREATE TABLE product (
             prod_id INT PRIMARY KEY,
             title VARCHAR(30),
             price INT
         );
         CREATE TABLE orders (
             order_id INT PRIMARY KEY,
             cust_id INT NULL,            -- guest checkout: nullable FK
             prod_id INT NOT NULL,
             quantity INT,
             FOREIGN KEY (cust_id) REFERENCES customer (cust_id),
             FOREIGN KEY (prod_id) REFERENCES product (prod_id)
         );",
    )?;

    let queries = [
        // A revenue join: guest orders silently disappear — was that meant?
        (
            "orders per customer (inner join — guests dropped!)",
            "SELECT c.name, o.order_id FROM customer c, orders o \
             WHERE c.cust_id = o.cust_id",
        ),
        // Premium customers via IN.
        (
            "orders of premium customers (IN subquery)",
            "SELECT o.order_id FROM orders o WHERE o.cust_id IN \
             (SELECT cust_id FROM customer WHERE tier >= 2)",
        ),
        // Aggregate audit.
        (
            "quantity stats per product (aggregate)",
            "SELECT prod_id, SUM(quantity) FROM orders GROUP BY prod_id",
        ),
    ];

    for (what, sql) in queries {
        println!("=== {what}\n    {sql}");
        let (run, space, report) =
            xdata.evaluate(sql, MutationOptions { include_full: false, tree_limit: 5_000, ..Default::default() })?;
        println!(
            "    {} datasets | {} mutants | {} killed | {} equivalent",
            run.suite.datasets.len(),
            space.len(),
            report.killed_count(),
            space.len() - report.killed_count()
        );
        // Show the most interesting dataset: the first one killing a
        // join-type mutant, if any.
        if let Some(di) = report.killed_by.iter().flatten().next() {
            let d = &run.suite.datasets[*di];
            println!("    sample killing dataset ({}):", d.label);
            for line in d.dataset.to_string().lines() {
                println!("      {line}");
            }
        }
        println!();
    }

    println!(
        "Note the nullable cust_id: guest orders (cust_id = NULL) appear in \
         the generated data and make the inner-vs-left-outer confusion on \
         the first query visible."
    );
    Ok(())
}
