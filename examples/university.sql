-- The paper's running example schema (§II, Figure 1 flavor): a cut of the
-- University schema with the instructor–teaches foreign key. Used by the
-- README examples and the CI metrics-schema gate.
CREATE TABLE instructor (
    id INT PRIMARY KEY,
    name VARCHAR,
    dept_id INT,
    salary INT
);
CREATE TABLE teaches (
    id INT,
    course_id INT,
    sec_id INT,
    year INT,
    FOREIGN KEY (id) REFERENCES instructor (id)
);
