//! Full mutation-analysis report for a multi-join query: the evaluation
//! loop of §VI-C as a library call.
//!
//! ```sh
//! cargo run --example mutation_report
//! ```
//!
//! Shows the exponential mutant space vs. the linear test suite, the effect
//! of foreign keys on equivalent mutants (Table I's trend), and per-dataset
//! kill attribution.

use xdata::catalog::university;
use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sql = "SELECT * FROM instructor i, teaches t, course c \
               WHERE i.id = t.id AND t.course_id = c.course_id";
    println!("query: {sql}\n");
    println!(
        "{:>4} | {:>9} | {:>8} | {:>7} | {:>8}",
        "#FK", "#mutants", "#killed", "#equiv", "#datasets"
    );
    println!("{}", "-".repeat(52));

    for fks in [0usize, 1, 2] {
        let schema = university::schema_with_fk_count(fks);
        let xdata = XData::new(schema);
        let mopts = MutationOptions { include_full: false, ..MutationOptions::default() };
        let (run, space, report) = xdata.evaluate(sql, mopts)?;
        println!(
            "{fks:>4} | {:>9} | {:>8} | {:>7} | {:>8}",
            space.len(),
            report.killed_count(),
            space.len() - report.killed_count(),
            run.suite.datasets.len(),
        );
    }

    println!("\nDetailed attribution with all foreign keys of the chain (2):\n");
    let schema = university::schema_with_fk_count(2);
    let xdata = XData::new(schema);
    let (run, space, report) =
        xdata.evaluate(sql, MutationOptions { include_full: false, ..Default::default() })?;
    for (i, d) in run.suite.datasets.iter().enumerate() {
        let kills = report.killed_by.iter().filter(|k| **k == Some(i)).count();
        println!("dataset {i} ({}) first-kills {kills} mutants", d.label);
    }
    println!();
    for (mi, m) in space.iter().enumerate() {
        if report.killed_by[mi].is_none() {
            println!("equivalent mutant: {}", m.describe(&run.query));
        }
    }
    println!(
        "\nAs in Table I of the paper: more foreign keys => more equivalent \
         mutants => fewer kills and fewer datasets."
    );
    Ok(())
}
