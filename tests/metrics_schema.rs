//! Schema and determinism gate for the metrics report.
//!
//! These tests drive the library directly (no subprocess) against the
//! paper's running example and validate the two contracts the report
//! makes:
//!
//! 1. **Stable schema** — every canonical counter, histogram and phase
//!    span is present in every report (preseeding), with the documented
//!    fixed key order, so downstream tooling can diff reports across
//!    runs and commits.
//! 2. **Determinism** — the timing-stripped report is byte-identical
//!    whatever `--jobs` value produced it.
//!
//! The recorder is process-global, so the tests share a lock and each
//! re-installs the recorder from scratch.

use std::sync::{Mutex, MutexGuard};

use xdata::obs;
use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

const QUERY: &str = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000";

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn university() -> XData {
    XData::new(xdata::catalog::university::schema())
}

/// Run the full generate + kill pipeline under a fresh recorder and
/// return the report.
fn evaluate_with_jobs(jobs: usize) -> obs::MetricsReport {
    obs::install();
    obs::preseed();
    let xd = university().with_jobs(jobs);
    xd.evaluate(QUERY, MutationOptions::default()).expect("paper example evaluates");
    obs::take_report().expect("recorder was installed")
}

#[test]
fn report_contains_every_canonical_key() {
    let _g = lock();
    let report = evaluate_with_jobs(1);
    let json = report.to_json();

    for name in obs::ALL_COUNTERS {
        assert!(json.contains(&format!("\"{name}\"")), "counter {name} missing from report");
    }
    for name in obs::ALL_HISTOGRAMS {
        assert!(json.contains(&format!("\"{name}\"")), "histogram {name} missing from report");
    }
    for name in obs::PHASE_SPANS {
        assert!(json.contains(&format!("\"{name}\"")), "span {name} missing from report");
    }

    // Fixed top-level key order, timings last (the determinism contract
    // depends on it).
    let order = ["schema_version", "counters", "histograms", "spans", "timings_ns"]
        .map(|k| json.find(&format!("\"{k}\"")).unwrap_or_else(|| panic!("{k} missing")));
    assert!(order.windows(2).all(|w| w[0] < w[1]), "top-level keys out of order");
}

/// The reverse inclusion of `report_contains_every_canonical_key`: an
/// instrumentation site recording a counter or histogram that is not in
/// the `xdata_obs::names` registry fails here, so the canonical lists and
/// the recorded key set cannot silently desynchronize in either direction.
#[test]
fn recorded_keys_are_all_canonical() {
    let _g = lock();
    let report = evaluate_with_jobs(1);
    for name in report.counters.keys() {
        assert!(
            obs::ALL_COUNTERS.contains(name),
            "counter {name} is recorded but missing from xdata_obs::names::ALL_COUNTERS"
        );
    }
    for name in report.histograms.keys() {
        assert!(
            obs::ALL_HISTOGRAMS.contains(name),
            "histogram {name} is recorded but missing from xdata_obs::names::ALL_HISTOGRAMS"
        );
    }
    for path in report.spans.keys() {
        assert!(
            obs::PHASE_SPANS.contains(&path.as_str()),
            "span {path} is recorded but missing from xdata_obs::names::PHASE_SPANS"
        );
    }
    // The registry itself must stay sorted — preseeding relies on it for
    // the report's stable key order and reviewers rely on it for diffs.
    assert!(obs::ALL_COUNTERS.windows(2).all(|w| w[0] < w[1]), "ALL_COUNTERS not sorted");
    assert!(obs::ALL_HISTOGRAMS.windows(2).all(|w| w[0] < w[1]), "ALL_HISTOGRAMS not sorted");
}

#[test]
fn pipeline_actually_records() {
    let _g = lock();
    let report = evaluate_with_jobs(1);

    // The plan→solve phase ran and did real work.
    assert!(report.counter("core.targets.solved") > 0);
    assert!(report.counter("core.rows_emitted") > 0);
    assert!(report.counter("solver.decisions") > 0);
    assert!(report.counter("solver.ground_solves") > 0);
    assert!(report.counter("solver.propagations") > 0);
    // The skeleton cache saw both a miss (first shape) and hits (reuse).
    assert!(report.counter("core.skeleton_cache.miss") > 0);
    assert!(report.counter("core.skeleton_cache.hit") > 0);
    // Sessions are the default: targets solved under assumptions on a
    // warm engine, with phases saved across them.
    assert!(report.counter("solver.session.assumption_solves") > 0);
    assert!(report.counter("solver.phase_saves") > 0);
    // The kill phase tallied every mutant into exactly one class bucket.
    let killed: u64 = [
        "kill.killed.agg",
        "kill.killed.cmp",
        "kill.killed.distinct",
        "kill.killed.having_agg",
        "kill.killed.having_cmp",
        "kill.killed.join",
    ]
    .iter()
    .map(|n| report.counter(n))
    .sum();
    let survived: u64 = [
        "kill.survived.agg",
        "kill.survived.cmp",
        "kill.survived.distinct",
        "kill.survived.having_agg",
        "kill.survived.having_cmp",
        "kill.survived.join",
    ]
    .iter()
    .map(|n| report.counter(n))
    .sum();
    assert_eq!(killed + survived, report.counter("kill.mutants"));
    assert!(report.counter("kill.mutants") > 0);
}

#[test]
fn generate_only_report_has_kill_keys_at_zero() {
    let _g = lock();
    obs::install();
    obs::preseed();
    let xd = university();
    xd.generate_for(QUERY).expect("paper example generates");
    let report = obs::take_report().expect("recorder was installed");
    assert_eq!(report.counter("kill.mutants"), 0);
    assert!(report.to_json().contains("\"kill.killed.join\": 0"));
}

#[test]
fn stripped_report_is_identical_across_jobs() {
    let _g = lock();
    let baseline = evaluate_with_jobs(1).to_json_stripped();
    for jobs in [2, 4] {
        let report = evaluate_with_jobs(jobs).to_json_stripped();
        assert_eq!(
            baseline, report,
            "timing-stripped metrics differ between --jobs 1 and --jobs {jobs}"
        );
    }
    assert!(!baseline.contains("timings_ns"));
}

#[test]
fn uninstalled_recorder_yields_no_report() {
    let _g = lock();
    // Make sure a previous test's recorder isn't lingering.
    let _ = obs::take_report();
    let xd = university();
    xd.generate_for(QUERY).expect("paper example generates");
    assert!(obs::take_report().is_none(), "no report without install()");
}
