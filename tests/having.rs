//! Constrained aggregation (HAVING) end to end — the extension of the
//! paper's class (§II excludes it; §VII names it as future work).

use xdata::catalog::{university, Dataset, Value};
use xdata::engine::execute_query;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::{normalize, Mutant};
use xdata::sql::parse_query;
use xdata::XData;

fn db() -> Dataset {
    let mut d = Dataset::new();
    for (id, dept, sal) in [(1, 1, 10), (2, 1, 20), (3, 1, 30), (4, 2, 40), (5, 2, 40)] {
        d.push(
            "instructor",
            vec![Value::Int(id), Value::Str(format!("i{id}")), Value::Int(dept), Value::Int(sal)],
        );
    }
    d
}

#[test]
fn engine_having_count_filters_groups() {
    let schema = university::schema_with_fk_count(0);
    let q = normalize(
        &parse_query(
            "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id HAVING COUNT(*) > 2",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let r = execute_query(&q, &db(), &schema).unwrap();
    assert_eq!(r.rows(), &[vec![Value::Int(1), Value::Int(3)]]);
}

#[test]
fn engine_having_min_max_sum_avg() {
    let schema = university::schema_with_fk_count(0);
    let cases = [
        ("HAVING MIN(salary) >= 20", vec![2i64]),  // dept 2 (min 40)
        ("HAVING MAX(salary) < 35", vec![1]),      // dept 1 (max 30)
        ("HAVING SUM(salary) = 80", vec![2]),      // dept 2 (40+40)
        ("HAVING AVG(salary) = 20", vec![1]),      // dept 1 (avg 20)
        ("HAVING COUNT(DISTINCT salary) = 1", vec![2]), // dept 2: {40}
    ];
    for (hav, expect) in cases {
        let q = normalize(
            &parse_query(&format!(
                "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id {hav}"
            ))
            .unwrap(),
            &schema,
        )
        .unwrap();
        let r = execute_query(&q, &db(), &schema).unwrap();
        let depts: Vec<i64> = r.rows().iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(depts, expect, "{hav}");
    }
}

#[test]
fn having_original_dataset_is_nonempty() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    for sql in [
        "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id HAVING COUNT(*) > 2",
        "SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id HAVING SUM(salary) >= 50",
        "SELECT dept_id, MIN(salary) FROM instructor GROUP BY dept_id HAVING MIN(salary) = 7",
        "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id \
         HAVING COUNT(*) = 2 AND AVG(salary) > 10",
    ] {
        let run = xdata.generate_for(sql).unwrap();
        let orig = run
            .suite
            .datasets
            .iter()
            .find(|d| d.label.contains("original"))
            .unwrap_or_else(|| panic!("no original dataset for {sql}:\n{}", run.suite));
        let r = execute_query(&run.query, &orig.dataset, &schema).unwrap();
        assert!(!r.is_empty(), "{sql}:\n{}", orig.dataset);
        assert!(orig.dataset.integrity_violations(&schema).is_empty());
    }
}

#[test]
fn having_comparison_mutants_killed() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id HAVING COUNT(*) > 2",
            MutationOptions::default(),
        )
        .unwrap();
    assert_eq!(space.having_cmp.len(), 5);
    let mutants: Vec<Mutant> = space.iter().collect();
    let surviving: Vec<String> = report
        .surviving()
        .map(|i| mutants[i].describe(&run.query))
        .filter(|d| d.contains("having"))
        .collect();
    assert!(surviving.is_empty(), "surviving having mutants: {surviving:?}\n{}", run.suite);
}

#[test]
fn having_min_comparison_mutants_killed() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id \
             HAVING MIN(salary) >= 15",
            MutationOptions::default(),
        )
        .unwrap();
    let mutants: Vec<Mutant> = space.iter().collect();
    let surviving: Vec<String> = report
        .surviving()
        .map(|i| mutants[i].describe(&run.query))
        .filter(|d| d.contains("having comparison"))
        .collect();
    assert!(surviving.is_empty(), "surviving: {surviving:?}\n{}", run.suite);
}

#[test]
fn infeasible_having_yields_no_datasets() {
    // COUNT(*) < 1 can never hold for a visible group.
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let run = xdata
        .generate_for(
            "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id HAVING COUNT(*) < 1",
        )
        .unwrap();
    assert!(
        run.suite.datasets.iter().all(|d| !d.label.contains("original")),
        "{}",
        run.suite
    );
    assert!(!run.suite.skipped.is_empty());
}

#[test]
fn having_aggregate_mutants_mostly_killed() {
    // HAVING SUM(salary) >= 50: mutants replacing SUM by COUNT/MIN/MAX...
    // are killable via the boundary datasets (SUM lands on 50 exactly,
    // while COUNT of the group is small and MIN/MAX differ from the sum).
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id \
             HAVING SUM(salary) >= 50",
            MutationOptions::default(),
        )
        .unwrap();
    assert_eq!(space.having_agg.len(), 7);
    let mutants: Vec<Mutant> = space.iter().collect();
    let killed_having_agg = mutants
        .iter()
        .enumerate()
        .filter(|(i, m)| {
            matches!(m, Mutant::HavingAgg(_)) && report.killed_by[*i].is_some()
        })
        .count();
    // Best-effort (the paper offers no guarantee at all here): at least
    // the duplicate-sensitive and scale-sensitive operators must die.
    assert!(killed_having_agg >= 4, "killed {} of 7:\n{}", killed_having_agg, run.suite);
}
