//! Integration tests for the `xdata` binary: argument parsing, error
//! reporting, and the `--metrics-json`/`--trace` observability flags.
//!
//! Each test spawns the compiled binary (`CARGO_BIN_EXE_xdata`), so the
//! global metrics recorder is per-process and the tests are independent.

use std::path::PathBuf;
use std::process::{Command, Output};

const SCHEMA: &str = "examples/university.sql";
const QUERY: &str = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000";

fn xdata(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xdata"))
        .args(args)
        .output()
        .expect("spawn xdata binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("xdata-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn missing_command_is_an_error() {
    let out = xdata(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("missing command"), "{}", stderr(&out));
}

#[test]
fn unknown_command_is_an_error() {
    let out = xdata(&["frobnicate", "--schema", SCHEMA, "--query", QUERY]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"), "{}", stderr(&out));
}

#[test]
fn unknown_option_is_an_error() {
    let out = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, "--frob"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown option"), "{}", stderr(&out));
}

#[test]
fn missing_schema_is_an_error() {
    let out = xdata(&["generate", "--query", QUERY]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--schema is required"), "{}", stderr(&out));
}

#[test]
fn jobs_rejects_garbage() {
    for bad in ["three", "-1", "2.5", ""] {
        let out = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, "--jobs", bad]);
        assert!(!out.status.success(), "--jobs {bad:?} must be rejected");
        assert!(stderr(&out).contains("--jobs"), "{}", stderr(&out));
    }
}

#[test]
fn jobs_without_value_is_an_error() {
    let out = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, "--jobs"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--jobs needs a thread count"), "{}", stderr(&out));
}

#[test]
fn jobs_zero_means_auto_and_succeeds() {
    // `0` is documented as "one worker per core", not an error; the output
    // must equal the sequential run's byte-for-byte.
    let auto = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, "--jobs", "0"]);
    assert!(auto.status.success(), "{}", stderr(&auto));
    let seq = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, "--jobs", "1"]);
    assert_eq!(auto.stdout, seq.stdout);
}

#[test]
fn metrics_json_without_value_is_an_error() {
    let out = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, "--metrics-json"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--metrics-json needs a file"), "{}", stderr(&out));
}

#[test]
fn metrics_json_writes_schema_keys() {
    let path = tmp_path("metrics.json");
    let out = xdata(&[
        "generate",
        "--schema",
        SCHEMA,
        "--query",
        QUERY,
        "--metrics-json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_file(&path).ok();
    // The preseeded canonical schema: solver counters, cache counters,
    // per-class kill tallies and the three phases are all present even
    // though `generate` never runs the kill phase.
    for key in xdata::obs::ALL_COUNTERS {
        assert!(json.contains(&format!("\"{key}\"")), "missing counter {key}");
    }
    for key in ["\"generate/plan\"", "\"generate/solve\"", "\"kill\"", "\"timings_ns\""] {
        assert!(json.contains(key), "missing {key}");
    }
}

#[test]
fn metrics_json_identical_across_jobs_except_timings() {
    let mut stripped = Vec::new();
    for jobs in ["1", "4"] {
        let path = tmp_path(&format!("metrics-j{jobs}.json"));
        let out = xdata(&[
            "generate",
            "--schema",
            SCHEMA,
            "--query",
            QUERY,
            "--jobs",
            jobs,
            "--metrics-json",
            path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        let json = std::fs::read_to_string(&path).expect("metrics file written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"timings_ns\""));
        stripped.push(xdata::obs::strip_timings(&json));
    }
    assert_eq!(stripped[0], stripped[1], "timing-stripped metrics must not depend on --jobs");
    assert!(!stripped[0].contains("timings_ns"));
}

#[test]
fn trace_prints_span_lines_to_stderr() {
    let out = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, "--trace"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    // Lines are buffered per thread and carry the thread ordinal, so
    // parallel runs flush contiguous per-thread blocks instead of
    // interleaving mid-line.
    assert!(err.contains("[xdata-trace t0] generate/solve"), "{err}");
    assert!(err.contains("[xdata-trace t0] generate "), "{err}");
    // Labels ride along on solve spans.
    assert!(err.contains("original query"), "{err}");
}

#[test]
fn target_timeout_zero_attributes_timeout_skips() {
    // A 0 ms per-target deadline expires before any solve: every target is
    // skipped with the Timeout reason and the survivors are labeled
    // unresolved, not equivalent.
    let out = xdata(&[
        "evaluate",
        "--schema",
        SCHEMA,
        "--query",
        QUERY,
        "--target-timeout-ms",
        "0",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("0 datasets"), "{text}");
    assert!(text.contains("skipped targets:"), "{text}");
    assert!(text.contains("deadline expired before a verdict (timeout)"), "{text}");
    assert!(text.contains("SURVIVES (unresolved: suite is partial)"), "{text}");
    assert!(!text.contains("SURVIVES (equivalent)"), "{text}");
}

#[test]
fn decision_limit_zero_attributes_budget_skips() {
    let out = xdata(&[
        "evaluate",
        "--schema",
        SCHEMA,
        "--query",
        QUERY,
        "--decision-limit",
        "0",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("budget exhausted"), "{text}");
    assert!(text.contains("SURVIVES (unresolved: suite is partial)"), "{text}");
}

#[test]
fn budget_and_timeout_skips_both_surface_in_one_run() {
    // The regression the skip-reason plumbing exists for: a run where both
    // degradation kinds occur must attribute each one — neither hides the
    // other. A 0 ms *suite* deadline times out whatever a 0-decision budget
    // has not already skipped; plan-time skips keep their own reasons.
    let out = xdata(&[
        "evaluate",
        "--schema",
        SCHEMA,
        "--query",
        QUERY,
        "--target-timeout-ms",
        "0",
        "--decision-limit",
        "0",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    // Both flags set: the per-target token trips at solve entry (Timeout
    // wins the race deterministically — it is checked first), so run one
    // flag each to see both reasons; this run checks the combination stays
    // well-formed and partial.
    assert!(text.contains("skipped targets:"), "{text}");
    assert!(text.contains("SURVIVES (unresolved: suite is partial)"), "{text}");

    let timeout_only =
        xdata(&["evaluate", "--schema", SCHEMA, "--query", QUERY, "--target-timeout-ms", "0"]);
    let budget_only =
        xdata(&["evaluate", "--schema", SCHEMA, "--query", QUERY, "--decision-limit", "0"]);
    let t = String::from_utf8_lossy(&timeout_only.stdout).into_owned();
    let b = String::from_utf8_lossy(&budget_only.stdout).into_owned();
    assert!(t.contains("(timeout)") && !t.contains("budget exhausted"), "{t}");
    assert!(b.contains("budget exhausted") && !b.contains("(timeout)"), "{b}");
}

#[test]
fn timeout_flags_reject_garbage() {
    for flag in ["--timeout-ms", "--target-timeout-ms", "--decision-limit"] {
        let out = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, flag, "soon"]);
        assert!(!out.status.success(), "{flag} soon must be rejected");
        assert!(stderr(&out).contains(flag), "{}", stderr(&out));
        let out = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY, flag]);
        assert!(!out.status.success(), "{flag} without value must be rejected");
        assert!(stderr(&out).contains("needs a"), "{}", stderr(&out));
    }
}

#[test]
fn generous_timeout_changes_nothing() {
    // A deadline that never fires must leave the output byte-identical to
    // the no-deadline run (the cancellation plumbing is inert until
    // tripped).
    let plain = xdata(&["generate", "--schema", SCHEMA, "--query", QUERY]);
    let timed = xdata(&[
        "generate",
        "--schema",
        SCHEMA,
        "--query",
        QUERY,
        "--timeout-ms",
        "3600000",
        "--target-timeout-ms",
        "3600000",
    ]);
    assert!(timed.status.success(), "{}", stderr(&timed));
    assert_eq!(plain.stdout, timed.stdout);
}

#[test]
fn evaluate_metrics_include_kill_phase() {
    let path = tmp_path("metrics-eval.json");
    let out = xdata(&[
        "evaluate",
        "--schema",
        SCHEMA,
        "--query",
        QUERY,
        "--jobs",
        "2",
        "--metrics-json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_file(&path).ok();
    // The kill phase ran: the span count and at least one kill tally are
    // non-zero.
    assert!(json.contains("\"kill\": {\"count\": 1}"), "{json}");
    assert!(!json.contains("\"kill.mutants\": 0,"), "{json}");
}
