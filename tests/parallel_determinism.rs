//! Cross-crate determinism guarantee: generation and kill evaluation must
//! produce **byte-identical** output for every thread count. Covers the
//! Table I chain-join workload and Table II-style selection/aggregation
//! queries, with jobs ∈ {1, 2, 8}.

use xdata::catalog::university;
use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

/// Table I: pure join chains over 2..=4 relations, all relevant FKs kept.
fn table1_queries() -> Vec<(String, xdata::catalog::Schema)> {
    (2..=4)
        .map(|k| {
            let rels = university::join_chain(k);
            let mut conds = Vec::new();
            for i in 0..k - 1 {
                let (lr, la, rr, ra) = university::join_chain_condition(i);
                conds.push(format!("{lr}.{la} = {rr}.{ra}"));
            }
            let sql =
                format!("SELECT * FROM {} WHERE {}", rels.join(", "), conds.join(" AND "));
            (sql, university::schema_with_fk_count(k - 1))
        })
        .collect()
}

/// Table II-style mix: selections, attribute comparisons, aggregation,
/// HAVING.
fn table2_queries() -> Vec<(String, xdata::catalog::Schema)> {
    let schema = || university::schema_with_fk_count(2);
    [
        "SELECT * FROM instructor WHERE salary > 50000",
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary <= 80000",
        "SELECT i.name FROM instructor i, teaches t, course c \
         WHERE i.id = t.id AND t.course_id = c.course_id AND c.credits >= 3",
        "SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id",
        "SELECT dept_id, COUNT(salary) FROM instructor GROUP BY dept_id \
         HAVING COUNT(salary) > 2",
    ]
    .iter()
    .map(|sql| (sql.to_string(), schema()))
    .collect()
}

#[test]
fn suites_and_kill_matrices_identical_across_thread_counts() {
    let mopts =
        MutationOptions { include_full: false, tree_limit: 2_000, ..Default::default() };
    let mut queries = table1_queries();
    queries.extend(table2_queries());
    for (sql, schema) in queries {
        let (base_run, _, base_report) = XData::new(schema.clone())
            .with_jobs(1)
            .evaluate(&sql, mopts)
            .unwrap_or_else(|e| panic!("evaluate({sql}): {e}"));
        for jobs in [2usize, 8] {
            let (run, _, report) = XData::new(schema.clone())
                .with_jobs(jobs)
                .evaluate(&sql, mopts)
                .unwrap();
            // Labels and datasets, tuple for tuple.
            assert_eq!(
                base_run.suite.datasets.len(),
                run.suite.datasets.len(),
                "jobs={jobs}: {sql}"
            );
            for (a, b) in base_run.suite.datasets.iter().zip(&run.suite.datasets) {
                assert_eq!(a.label, b.label, "jobs={jobs}: {sql}");
                assert_eq!(a.dataset, b.dataset, "jobs={jobs}: {sql} ({})", a.label);
            }
            // Skip lists.
            let skips = |r: &xdata::Run| {
                r.suite.skipped.iter().map(|s| s.label.clone()).collect::<Vec<_>>()
            };
            assert_eq!(skips(&base_run), skips(&run), "jobs={jobs}: {sql}");
            // Kill matrix, verdict for verdict.
            assert_eq!(base_report.killed_by, report.killed_by, "jobs={jobs}: {sql}");
        }
    }
}
