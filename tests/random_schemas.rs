//! Whole-pipeline fuzzing over *random schemas*: random relations, random
//! foreign-key DAGs, random join queries. Catches assumptions baked into
//! the University schema (attribute counts, key shapes, FK topologies).
//! Seeded [`SplitMix64`] drives case generation.

use xdata::catalog::{Attribute, Relation, Schema, SplitMix64, SqlType};
use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

/// Description of a random schema: per relation, the number of extra
/// attributes; plus FK edges (i → j with i > j so the graph is acyclic).
#[derive(Debug, Clone)]
struct SchemaSpec {
    extra_attrs: Vec<usize>, // length = relation count, 0..=2 extra attrs
    fk_edges: Vec<(usize, usize)>,
}

impl SchemaSpec {
    fn random(rng: &mut SplitMix64) -> Self {
        let n = 2 + rng.below(3);
        let extra_attrs = (0..n).map(|_| rng.below(3)).collect();
        // Candidate edges i -> j with i > j; keep a random subset.
        let mut all_edges = Vec::new();
        for i in 1..n {
            for j in 0..i {
                all_edges.push((i, j));
            }
        }
        let fk_edges = rng.subset(&all_edges);
        SchemaSpec { extra_attrs, fk_edges }
    }
}

fn build_schema(spec: &SchemaSpec) -> Schema {
    let mut s = Schema::new();
    let n = spec.extra_attrs.len();
    for (i, extra) in spec.extra_attrs.iter().enumerate() {
        let mut attrs = vec![Attribute::new("id", SqlType::Int)];
        // One link column per possible outgoing edge.
        for j in 0..n {
            if spec.fk_edges.contains(&(i, j)) {
                attrs.push(Attribute::new(format!("r{j}_id"), SqlType::Int));
            }
        }
        for k in 0..*extra {
            attrs.push(Attribute::new(format!("a{k}"), SqlType::Int));
        }
        s.add_relation(Relation::new(format!("r{i}"), attrs, &["id"]).unwrap()).unwrap();
    }
    for (i, j) in &spec.fk_edges {
        let from_col = format!("r{j}_id");
        s.add_foreign_key(&format!("r{i}"), &[&from_col], &format!("r{j}"), &["id"]).unwrap();
    }
    s
}

/// A join query over the FK edges (or a cross-free pair via shared id)
/// exercising each relation once.
fn query_for(spec: &SchemaSpec) -> String {
    let n = spec.extra_attrs.len();
    let mut conds: Vec<String> = spec
        .fk_edges
        .iter()
        .map(|(i, j)| format!("r{i}.r{j}_id = r{j}.id"))
        .collect();
    // Relations not linked by any FK edge join on id (arbitrary but legal).
    let mut linked: Vec<bool> = vec![false; n];
    for (i, j) in &spec.fk_edges {
        linked[*i] = true;
        linked[*j] = true;
    }
    for (i, is_linked) in linked.iter().enumerate().skip(1) {
        if !is_linked {
            conds.push(format!("r{i}.id = r0.id"));
        }
    }
    let from: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
    if conds.is_empty() {
        conds.push("r0.id = r1.id".into());
    }
    format!("SELECT * FROM {} WHERE {}", from.join(", "), conds.join(" AND "))
}

#[test]
fn random_schema_pipeline() {
    let mut rng = SplitMix64::new(0x5c4ea);
    for _ in 0..32 {
        let spec = SchemaSpec::random(&mut rng);
        let schema = build_schema(&spec);
        let sql = query_for(&spec);
        let xdata = XData::new(schema.clone());
        let (run, space, report) = xdata
            .evaluate(&sql, MutationOptions { include_full: false, tree_limit: 2_000, ..Default::default() })
            .unwrap_or_else(|e| panic!("{sql} on {spec:?}: {e}"));

        // Datasets legal, original non-empty.
        for d in &run.suite.datasets {
            let errs = d.dataset.integrity_violations(&schema);
            assert!(errs.is_empty(), "{}: {errs:?} ({sql}, {spec:?})", d.label);
        }
        let orig = run.suite.datasets.iter().find(|d| d.label.contains("original"));
        assert!(orig.is_some(), "no original dataset for {sql}");
        let r = xdata::engine::execute_query(
            &run.query,
            &orig.unwrap().dataset,
            &schema,
        ).unwrap();
        assert!(!r.is_empty(), "original dataset gives empty result for {sql}");

        // Kill verdicts are sound.
        let data = run.suite.data();
        let mutants: Vec<_> = space.iter().collect();
        for (mi, k) in report.killed_by.iter().enumerate() {
            if let Some(di) = k {
                let a = xdata::engine::execute_query(&run.query, data[*di], &schema).unwrap();
                let b = xdata::engine::kill::execute_mutant(
                    &run.query, &mutants[mi], data[*di], &schema,
                ).unwrap();
                assert!(a != b);
            }
        }
    }
}
