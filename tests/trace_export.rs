//! Trace-export gate: the event journal's external faces hold their
//! contracts on real pipeline runs.
//!
//! * The Chrome trace-event JSON written for a **chaos-injected partial
//!   run** (injected panic, forced `Unknown`, synthetic expiry) still
//!   parses, and its events nest — every `E` closes the matching `B`, no
//!   span is left open, per-thread timestamps are monotonic, and every
//!   flow arrow starts before it steps or finishes.
//! * The timing-stripped trace **structure** (event kinds, names, span
//!   labels, nesting, counts) is byte-identical for `--jobs 1/2/8` — the
//!   trace-level analogue of the metrics determinism gate.
//! * The critical path extracted from a captured trace tiles the root
//!   span exactly: segment durations sum to the root span duration.
//!
//! The journal is process-global, so tests share a lock and each installs
//! a fresh journal run.

use std::sync::{Mutex, MutexGuard};

use xdata::core::FaultPlan;
use xdata::obs;
use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

const QUERY: &str =
    "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000";

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn university() -> XData {
    XData::new(xdata::catalog::university::schema())
}

/// One fault of each failure mode, matched by label substring — identical
/// to the chaos harness's sweep plan, so the traced run is genuinely
/// partial (skips with three distinct `SkipReason`s).
fn faults() -> FaultPlan {
    FaultPlan {
        panic_targets: vec!["dataset with `<`".into()],
        unknown_targets: vec!["dataset with `>`".into()],
        expire_targets: vec!["eq-class".into()],
    }
}

/// Full evaluate under a fresh journal; returns the drained trace.
fn traced_evaluate(jobs: usize, faults: FaultPlan) -> obs::TraceLog {
    obs::install_trace();
    let xd = university().with_jobs(jobs).with_faults(faults);
    xd.evaluate(QUERY, MutationOptions::default()).expect("pipeline completes");
    obs::take_trace().expect("journal was installed")
}

#[test]
fn chaos_partial_run_exports_valid_chrome_trace_across_jobs() {
    let _g = lock();
    let mut structures: Vec<(usize, String)> = Vec::new();
    for jobs in [1, 2, 8] {
        let log = traced_evaluate(jobs, faults());
        let json = log.to_chrome_json();

        // Parses with the dependency-free parser and passes the structural
        // checker: balanced B/E nesting, monotonic per-thread timestamps,
        // flow starts preceding steps/finishes.
        let summary = obs::validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("jobs={jobs}: invalid Chrome trace: {e}"));
        assert!(summary.spans > 0, "jobs={jobs}: no spans journaled");
        assert!(summary.flows > 0, "jobs={jobs}: no flow events journaled");
        assert!(summary.has_metadata, "jobs={jobs}: build metadata missing");

        // The partial run's skips are attributed on the timeline: one
        // `core.target.skip` instant per failure mode, reason spelled out.
        let skips: Vec<&str> = log
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                obs::TraceEventKind::Instant { name, label } if name == "core.target.skip" => {
                    Some(label.as_str())
                }
                _ => None,
            })
            .collect();
        assert!(
            skips.iter().any(|l| l.contains("dataset with `<`")),
            "jobs={jobs}: panicked target not attributed: {skips:?}"
        );
        assert!(
            skips.iter().any(|l| l.contains("dataset with `>`")),
            "jobs={jobs}: forced-Unknown target not attributed: {skips:?}"
        );
        assert!(
            skips.iter().any(|l| l.contains("eq-class")),
            "jobs={jobs}: expired target not attributed: {skips:?}"
        );

        // Round-trip: parsing our own export reproduces the structure.
        let back = obs::parse_chrome_trace(&json).expect("round-trip parse");
        assert_eq!(back.to_structure(), log.to_structure(), "jobs={jobs}");

        structures.push((jobs, log.to_structure()));
    }

    // The determinism contract: the timing-stripped structure is
    // byte-identical whatever `--jobs` value produced the trace.
    let (_, baseline) = &structures[0];
    for (jobs, s) in &structures[1..] {
        assert_eq!(
            baseline, s,
            "timing-stripped trace structure differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn clean_run_trace_has_gate_spans_and_session_flows() {
    let _g = lock();
    let log = traced_evaluate(2, FaultPlan::default());
    let structure = log.to_structure();
    assert!(structure.contains("span generate/solve/gate"), "gate spans missing:\n{structure}");
    assert!(structure.contains("flow session start"), "session flow start missing:\n{structure}");
    assert!(structure.contains("flow session step"), "session flow steps missing:\n{structure}");
    assert!(structure.contains("flow target start"), "target flow starts missing:\n{structure}");
    assert!(structure.contains("flow target finish"), "target flow finishes missing:\n{structure}");
    assert!(structure.contains("instant kill.verdict"), "verdict instants missing:\n{structure}");
    assert!(
        structure.contains("instant solver.session.turn"),
        "turn instants missing:\n{structure}"
    );
    assert!(structure.contains("instant solver.solve"), "solve instants missing:\n{structure}");

    // Every instant name the pipeline journals is in the canonical
    // registry, and the registry stays sorted (same discipline as the
    // counter registry).
    for e in &log.events {
        if let obs::TraceEventKind::Instant { name, .. } = &e.kind {
            assert!(
                obs::ALL_INSTANTS.contains(&name.as_str()),
                "instant {name} journaled but missing from xdata_obs::names::ALL_INSTANTS"
            );
        }
        if let obs::TraceEventKind::Flow { name, .. } = &e.kind {
            assert!(
                obs::FLOW_NAMES.contains(&name.as_str()),
                "flow {name} journaled but missing from xdata_obs::names::FLOW_NAMES"
            );
        }
    }
    assert!(obs::ALL_INSTANTS.windows(2).all(|w| w[0] < w[1]), "ALL_INSTANTS not sorted");
    assert!(obs::FLOW_NAMES.windows(2).all(|w| w[0] < w[1]), "FLOW_NAMES not sorted");
}

#[test]
fn critical_path_tiles_the_root_span_on_a_real_trace() {
    let _g = lock();
    let log = traced_evaluate(4, FaultPlan::default());
    let analysis = log.analyze(10);
    let total: u64 = analysis.critical_path.iter().map(|s| s.dur_ns).sum();
    assert_eq!(
        total, analysis.root_dur_ns,
        "critical-path segments must sum exactly to the root span duration"
    );
    assert!(analysis.root_dur_ns > 0);
    assert!(!analysis.per_target.is_empty(), "per-target breakdown empty");
    assert!(!analysis.per_class.is_empty(), "per-mutant-class breakdown empty");
    assert!(!analysis.slowest.is_empty(), "top-K slowest solves empty");
    // The folded export carries the same total span mass: every line is
    // `stack self_ns`, non-negative, and the root frame appears.
    let folded = log.to_folded();
    assert!(folded.lines().any(|l| l.starts_with("generate ")), "root frame missing:\n{folded}");
    // Worker threads root their own stacks at the solve span; the inline
    // `--jobs 1` path nests it under `generate` instead.
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("generate/solve ") || l.contains("generate;generate/solve ")),
        "solve frame missing:\n{folded}"
    );
}
