//! Chaos harness: deterministic fault injection across the plan→solve→kill
//! pipeline (`cargo test --features chaos --test chaos`).
//!
//! The [`FaultPlan`] in `GenOptions` matches *target labels*, not thread
//! schedules, so an injected panic / forced-`Unknown` / synthetic deadline
//! expiry hits the same targets whatever `--jobs` value runs the suite.
//! That is the property these tests pin down:
//!
//! * the suite's rendered output is byte-identical across `--jobs`;
//! * the timing-stripped metrics report is byte-identical across `--jobs`;
//! * every faulted target surfaces in `suite.skipped` with the right
//!   [`SkipReason`] — nothing is silently dropped;
//! * kill evaluation still runs over the surviving datasets (no poisoned
//!   lock or wedged memo slot survives a panicked solve).
//!
//! The recorder is process-global, so tests share a lock.

#![cfg(feature = "chaos")]

use std::sync::{Mutex, MutexGuard};

use xdata::core::{FaultPlan, SkipReason};
use xdata::obs;
use xdata::relalg::mutation::MutationOptions;
use xdata::XData;

const QUERY: &str =
    "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000";

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn university() -> XData {
    XData::new(xdata::catalog::university::schema())
}

/// The sweep's fault plan: one target of each failure mode, matched by
/// label substring against the paper example's plan.
fn plan() -> FaultPlan {
    FaultPlan {
        panic_targets: vec!["dataset with `<`".into()],
        unknown_targets: vec!["dataset with `>`".into()],
        expire_targets: vec!["eq-class".into()],
    }
}

/// Full evaluate under a fresh recorder; returns (suite text, stripped
/// metrics json, killed count, unevaluated count).
fn chaos_evaluate(jobs: usize, faults: FaultPlan) -> (String, String, usize, usize) {
    obs::install();
    obs::preseed();
    let xd = university().with_jobs(jobs).with_faults(faults);
    let (run, _space, report) =
        xd.evaluate(QUERY, MutationOptions::default()).expect("chaos run still completes");
    let report_json =
        obs::take_report().expect("recorder was installed").to_json_stripped();
    (run.suite.to_string(), report_json, report.killed_count(), report.unevaluated.len())
}

/// The tentpole determinism claim: an injected panic, a forced `Unknown`
/// and a synthetic deadline expiry produce the *same* partial suite and
/// the *same* stripped metrics whatever the thread count.
#[test]
fn fault_sweep_is_deterministic_across_jobs() {
    let _g = lock();
    let (suite1, metrics1, killed1, uneval1) = chaos_evaluate(1, plan());
    for jobs in [4] {
        let (suite_n, metrics_n, killed_n, uneval_n) = chaos_evaluate(jobs, plan());
        assert_eq!(suite1, suite_n, "suite bytes differ between --jobs 1 and --jobs {jobs}");
        assert_eq!(
            metrics1, metrics_n,
            "stripped metrics differ between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(killed1, killed_n, "jobs={jobs}");
        assert_eq!(uneval1, uneval_n, "jobs={jobs}");
    }
    // The faults were per-target: the pipeline token never tripped, so the
    // kill phase evaluated every mutant and the surviving datasets still
    // killed some of them.
    assert_eq!(uneval1, 0, "no pipeline deadline was set");
    assert!(killed1 > 0, "surviving datasets should still kill mutants");
}

/// Every injected fault must surface in `suite.skipped` with the matching
/// reason — a skipped target is attributed, never silent.
#[test]
fn every_fault_is_attributed() {
    let _g = lock();
    let xd = university().with_faults(plan());
    let run = xd.generate_for(QUERY).expect("chaos run still completes");
    let suite = &run.suite;
    assert!(suite.is_partial(), "injected faults must make the suite partial");

    let panicked: Vec<_> = suite
        .skipped
        .iter()
        .filter(|s| matches!(s.reason, SkipReason::Fault { .. }))
        .collect();
    assert_eq!(panicked.len(), 1, "exactly one panic target: {:?}", suite.skipped);
    assert!(panicked[0].label.contains("dataset with `<`"));
    match &panicked[0].reason {
        SkipReason::Fault { message } => {
            assert!(message.contains("chaos: injected panic"), "payload captured: {message}")
        }
        other => panic!("unexpected {other:?}"),
    }

    let budget: Vec<_> = suite
        .skipped
        .iter()
        .filter(|s| matches!(s.reason, SkipReason::Budget { .. }))
        .collect();
    assert_eq!(budget.len(), 1, "exactly one forced-Unknown target");
    assert!(budget[0].label.contains("dataset with `>`"));

    let timed_out: Vec<_> =
        suite.skipped.iter().filter(|s| s.reason == SkipReason::Timeout).collect();
    assert!(!timed_out.is_empty(), "expire targets must become Timeout skips");
    assert!(timed_out.iter().all(|s| s.label.contains("eq-class")));

    // The untouched targets still produced datasets.
    assert!(suite.datasets.iter().any(|d| d.label.contains("original")));
    assert!(suite.datasets.iter().any(|d| d.label.contains("dataset with `=`")));
}

/// Synthetic deadline expiry on *mid-session* targets: with incremental
/// sessions on (the default), targets of one skeleton shape share a warm
/// CDCL engine in plan order. Expiring a target in the middle of that
/// order must not perturb its successors — the partial suite stays
/// byte-identical across `--jobs`, the expired targets surface as
/// `Timeout` skips, and the targets solved *after* them on the same
/// session still produce datasets.
#[test]
fn mid_session_expiry_is_deterministic_across_jobs() {
    let _g = lock();
    let faults = FaultPlan {
        expire_targets: vec!["dataset with `>`".into(), "eq-class".into()],
        ..FaultPlan::default()
    };
    let run1 = university()
        .with_jobs(1)
        .with_faults(faults.clone())
        .generate_for(QUERY)
        .expect("expiry run completes");
    let suite1 = run1.suite.to_string();
    for jobs in [2usize, 4] {
        let run_n = university()
            .with_jobs(jobs)
            .with_faults(faults.clone())
            .generate_for(QUERY)
            .expect("expiry run completes");
        assert_eq!(suite1, run_n.suite.to_string(), "partial suite differs at --jobs {jobs}");
    }
    // Every expired target is an attributed Timeout skip...
    let timeouts: Vec<_> =
        run1.suite.skipped.iter().filter(|s| s.reason == SkipReason::Timeout).collect();
    assert!(!timeouts.is_empty(), "expire targets must surface: {:?}", run1.suite.skipped);
    assert!(timeouts
        .iter()
        .all(|s| s.label.contains("dataset with `>`") || s.label.contains("eq-class")));
    // ...and later same-session targets were unaffected by the gap.
    assert!(run1.suite.datasets.iter().any(|d| d.label.contains("comparison")));
    assert!(run1.suite.datasets.iter().any(|d| d.label.contains("dataset with `=`")));
}

/// A panicked solve must not wedge the solve-memo: rerunning the same
/// query without faults right after a panicked run works normally (no
/// poisoned lock escapes the generation call), and within a faulted run
/// the other targets — including ones sharing solver state — complete.
#[test]
fn panic_does_not_poison_the_pipeline() {
    let _g = lock();
    let faulted = university()
        .with_jobs(4)
        .with_faults(FaultPlan {
            panic_targets: vec!["comparison".into()],
            ..FaultPlan::default()
        })
        .generate_for(QUERY)
        .expect("faulted run completes");
    assert!(faulted.suite.is_partial());
    // Same process, fresh run, no faults: everything solves again.
    let clean = university().with_jobs(4).generate_for(QUERY).expect("clean run completes");
    assert!(!clean.suite.is_partial());
    assert!(clean.suite.datasets.len() > faulted.suite.datasets.len());
}

/// Seeded random schema under a 1 ms per-target deadline: whatever subset
/// of targets beats the clock, the suite stays *well-formed* — legal
/// datasets, every miss attributed, dataset+skip count equal to the plan.
#[test]
fn tiny_deadline_yields_well_formed_partial_suite() {
    let _g = lock();
    use xdata::catalog::{Attribute, Relation, Schema, SplitMix64, SqlType};

    let mut rng = SplitMix64::new(0xc4a05);
    for _case in 0..8 {
        // Random 2–3 relation chain schema, FK i -> i-1 coin-flipped.
        let n = 2 + rng.below(2);
        let mut schema = Schema::new();
        let mut fks = Vec::new();
        for i in 0..n {
            let mut attrs = vec![Attribute::new("id", SqlType::Int)];
            if i > 0 && rng.bool() {
                attrs.push(Attribute::new("prev_id", SqlType::Int));
                fks.push(i);
            }
            schema
                .add_relation(Relation::new(format!("r{i}"), attrs, &["id"]).unwrap())
                .unwrap();
        }
        for &i in &fks {
            schema
                .add_foreign_key(&format!("r{i}"), &["prev_id"], &format!("r{}", i - 1), &["id"])
                .unwrap();
        }
        let conds: Vec<String> = (1..n)
            .map(|i| {
                if fks.contains(&i) {
                    format!("r{i}.prev_id = r{}.id", i - 1)
                } else {
                    format!("r{i}.id = r0.id")
                }
            })
            .collect();
        let from: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
        let sql = format!("SELECT * FROM {} WHERE {}", from.join(", "), conds.join(" AND "));

        let xd = XData::new(schema.clone()).with_jobs(2).with_target_deadline_ms(1);
        let run = xd.generate_for(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));

        // Well-formed: datasets legal, every skip attributed with a
        // printable reason (a genuinely timed-out target shows up as
        // Timeout; a fast machine may simply solve everything).
        for d in &run.suite.datasets {
            let errs = d.dataset.integrity_violations(&schema);
            assert!(errs.is_empty(), "{}: {errs:?} ({sql})", d.label);
        }
        for s in &run.suite.skipped {
            assert!(!s.label.is_empty());
            assert!(!s.reason.to_string().is_empty());
        }
        // Rendering a partial suite must not panic.
        let _ = run.suite.to_string();
    }
}

/// Batch grading under chaos-injected fault cancellation: a fault plan
/// that expires suite targets yields a *partial* suite, and the rendered
/// verdict report — Pass verdicts certified on the surviving datasets —
/// must still be byte-identical for every `--jobs` value and for both
/// join strategies.
#[test]
fn chaos_batch_grade_is_deterministic_across_jobs() {
    use xdata::engine::JoinStrategy;
    let reference = "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id";
    let candidates: Vec<String> = [
        reference,
        "SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id",
        "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id",
        "SELECT FROM WHERE",
    ]
    .map(str::to_string)
    .to_vec();
    let faults = FaultPlan { expire_targets: vec!["eq-class".into()], ..FaultPlan::default() };
    let grade = |jobs: usize, strategy: JoinStrategy| {
        let xd = university().with_jobs(jobs).with_faults(faults.clone()).with_join_strategy(strategy);
        let report = xd.grade_batch(reference, &candidates).expect("chaos batch completes");
        assert!(report.partial, "expired targets must mark the suite partial");
        report.render()
    };
    let baseline = grade(1, JoinStrategy::Hash);
    for jobs in [2, 8] {
        assert_eq!(baseline, grade(jobs, JoinStrategy::Hash), "jobs={jobs}");
    }
    for jobs in [1, 4] {
        assert_eq!(baseline, grade(jobs, JoinStrategy::NestedLoop), "nested jobs={jobs}");
    }
}
