//! The paper's worked examples (§I, §IV-B Examples 1–4, Figures 1–2),
//! verified end-to-end.

use xdata::catalog::{university, Dataset, Value};
use xdata::engine::execute_query;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::normalize;
use xdata::sql::parse_query;
use xdata::XData;

/// §I: "a test case containing an instructor who does not teach any course
/// would kill the join/left-outer-join mutant."
#[test]
fn intro_scenario() {
    let schema = university::schema_with_fk_count(1);
    let xdata = XData::new(schema.clone());
    let run = xdata
        .generate_for("SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
        .unwrap();
    // Some generated dataset contains an instructor with no teaches row.
    let found = run.suite.datasets.iter().any(|d| {
        let instructors = d.dataset.relation("instructor").unwrap_or(&[]);
        let teaches = d.dataset.relation("teaches").unwrap_or(&[]);
        instructors.iter().any(|i| !teaches.iter().any(|t| t[0] == i[0]))
    });
    assert!(found, "suite must contain a non-teaching instructor:\n{}", run.suite);
}

/// Example 1: killing instructor ⟖ teaches (tree of Figure 1) requires a
/// teaches tuple with no matching instructor, *and* a course tuple matching
/// the teaches tuple so the difference propagates to the root.
#[test]
fn example_1_propagation_to_root() {
    let schema = university::schema_with_fk_count(0); // no FKs (as in Example 1)
    let xdata = XData::new(schema.clone());
    let sql = "SELECT * FROM instructor i, teaches t, course c \
               WHERE i.id = t.id AND t.course_id = c.course_id";
    let run = xdata.generate_for(sql).unwrap();
    // Find the dataset nullifying instructor.id.
    let d = run
        .suite
        .datasets
        .iter()
        .find(|d| d.label.contains("nullify i.id"))
        .expect("nullification dataset for instructor.id");
    let teaches = d.dataset.relation("teaches").unwrap();
    let instructors = d.dataset.relation("instructor").unwrap_or(&[]);
    let courses = d.dataset.relation("course").unwrap();
    // A teaches tuple with no matching instructor...
    let orphan = teaches
        .iter()
        .find(|t| !instructors.iter().any(|i| i[0] == t[0]))
        .expect("teaches tuple without instructor");
    // ...whose course exists, so the difference reaches the root.
    assert!(
        courses.iter().any(|c| c[0] == orphan[1]),
        "orphan teaches tuple must still join with course:\n{}",
        d.dataset
    );
}

/// Example 2: with the FK teaches.id → instructor.id the right-outer mutant
/// is equivalent — but adding a selection on instructor revives it: the
/// generator produces a dataset where the instructor matches the FK but
/// fails the selection.
#[test]
fn example_2_selection_revives_mutant() {
    let schema = university::schema_with_fk_count(1);
    let xdata = XData::new(schema.clone());

    // Without a selection: nullifying instructor.id is impossible.
    let plain = xdata
        .generate_for("SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
        .unwrap();
    assert!(
        plain.suite.skipped.iter().any(|s| s.label.contains("i.id")),
        "{:?}",
        plain.suite.skipped
    );

    // With a selection: Algorithm 3 generates the σ-violating dataset.
    let with_sel = xdata
        .generate_for(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000",
        )
        .unwrap();
    let d = with_sel
        .suite
        .datasets
        .iter()
        .find(|d| d.label.contains("nullify i"))
        .expect("selection-nullification dataset");
    // The dataset has a teaches row whose instructor fails the selection.
    let instructors = d.dataset.relation("instructor").unwrap();
    let teaches = d.dataset.relation("teaches").unwrap();
    let revived = teaches.iter().any(|t| {
        instructors
            .iter()
            .any(|i| i[0] == t[0] && i[3].as_i64().expect("salary") <= 50000)
    });
    assert!(revived, "instructor matches FK but fails selection:\n{}", d.dataset);

    // And that dataset indeed kills a right-outer-style mutant.
    let space = with_sel.mutants(MutationOptions::default());
    let report = xdata::engine::kill::kill_report(
        &with_sel.query,
        &space,
        &with_sel.suite.data(),
        &schema,
    )
    .unwrap();
    assert!(report.killed_count() > plain.suite.datasets.len());
}

/// Example 3: mutating instructor ⋈ teaches to a left outer join inside
/// (instructor ⋈ teaches) ⋈ course is EQUIVALENT: the NULL-extended row is
/// filtered at the root. The kill report must show it surviving, and
/// exhaustive execution on a hand-built dataset confirms equal results.
#[test]
fn example_3_masked_mutation_is_equivalent() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let sql = "SELECT * FROM instructor i, teaches t, course c \
               WHERE i.id = t.id AND t.course_id = c.course_id";
    let (run, space, report) = xdata.evaluate(sql, MutationOptions::default()).unwrap();
    let mutants: Vec<_> = space.iter().collect();
    let mut found = false;
    for mi in report.surviving() {
        let desc = mutants[mi].describe(&run.query);
        if desc.contains("(i LEFT-OUTER-JOIN t) JOIN c") {
            found = true;
        }
    }
    assert!(found, "Example 3's equivalent mutant must survive");

    // Direct check on a dataset with a non-teaching instructor.
    let mut db = Dataset::new();
    db.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
    db.push("instructor", vec![Value::Int(2), Value::Str("B".into()), Value::Int(1), Value::Int(1)]);
    db.push("teaches", vec![Value::Int(1), Value::Int(10), Value::Int(1), Value::Int(2009)]);
    db.push("course", vec![Value::Int(10), Value::Str("X".into()), Value::Int(1), Value::Int(3)]);
    let orig = execute_query(&run.query, &db, &schema).unwrap();
    for mi in report.surviving() {
        let m = &mutants[mi];
        let got = xdata::engine::kill::execute_mutant(&run.query, m, &db, &schema).unwrap();
        assert_eq!(orig, got, "surviving mutant differs: {}", m.describe(&run.query));
    }
}

/// Example 4 / Figure 2: whether the user writes `A.x = B.x AND B.x = C.x`
/// or `A.x = B.x AND A.x = C.x`, the equivalence class is the same and the
/// same mutants are killed — including mutants of the (A ⋈ C)-first tree
/// that only the class representation exposes.
#[test]
fn example_4_equivalence_class_join_orders() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let form1 = "SELECT * FROM student a, takes b, advisor c \
                 WHERE a.sid = b.sid AND b.sid = c.s_id";
    let form2 = "SELECT * FROM student a, takes b, advisor c \
                 WHERE a.sid = b.sid AND a.sid = c.s_id";
    let (r1, s1, k1) = xdata.evaluate(form1, MutationOptions::default()).unwrap();
    let (r2, s2, k2) = xdata.evaluate(form2, MutationOptions::default()).unwrap();
    assert_eq!(r1.query.eq_classes, r2.query.eq_classes);
    assert_eq!(s1.len(), s2.len(), "same mutation space for both spellings");
    assert_eq!(k1.killed_count(), k2.killed_count());
    // The space includes a tree joining student (a) and advisor (c) first —
    // Figure 2(c)'s shape, derivable only through the equivalence class.
    let names: Vec<String> = r1.query.occurrences.iter().map(|o| o.name.clone()).collect();
    let has_ac_first = s1.join.iter().any(|m| {
        let t = m.tree.display_with(&names).to_string();
        t.contains("(a ") && t.contains(" c)") && !t.contains("(a JOIN b)")
            || t.contains("(a JOIN c)")
            || t.contains("(c JOIN a)")
            || t.contains("(a LEFT-OUTER-JOIN c)")
            || t.contains("(c LEFT-OUTER-JOIN a)")
    });
    assert!(has_ac_first, "Figure 2(c)-style trees must be in the space");
}

/// Figure 1's query tree renders as the paper draws it.
#[test]
fn figure_1_tree_rendering() {
    let schema = university::schema();
    let q = normalize(
        &parse_query(
            "SELECT * FROM instructor, teaches, course \
             WHERE instructor.id = teaches.id AND teaches.course_id = course.course_id",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let names: Vec<String> = q.occurrences.iter().map(|o| o.name.clone()).collect();
    assert_eq!(
        q.tree.display_with(&names).to_string(),
        "((instructor JOIN teaches) JOIN course)"
    );
}
