//! Additional completeness spot-checks over query shapes not covered by
//! `end_to_end.rs`: repeated relations (self joins), selections on both
//! sides of a join, ON-clause outer joins mixed with WHERE selections, and
//! IN-subquery membership predicates (kill-completeness for the subquery
//! connective space itself lives in `subqueries.rs`).

use xdata::catalog::{university, Dataset, Value};
use xdata::engine::execute_query;
use xdata::engine::kill::execute_mutant;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::Mutant;
use xdata::XData;

/// A light killability probe: try a panel of hand-crafted instances and
/// confirm none distinguishes the surviving mutants (weaker than the
/// exhaustive search in end_to_end.rs, but fast and broad).
fn probe_survivors(sql: &str, fks: usize, probes: &[Dataset]) {
    let schema = university::schema_with_fk_count(fks);
    let xdata = XData::new(schema.clone());
    let (run, space, report) =
        xdata.evaluate(sql, MutationOptions::default()).unwrap();
    let mutants: Vec<Mutant> = space.iter().collect();
    for mi in report.surviving() {
        for db in probes {
            if !db.integrity_violations(&schema).is_empty() {
                continue;
            }
            let a = execute_query(&run.query, db, &schema).unwrap();
            let b = execute_mutant(&run.query, &mutants[mi], db, &schema).unwrap();
            assert_eq!(
                a,
                b,
                "survivor is killable: {} (query {sql})\non:\n{db}",
                mutants[mi].describe(&run.query)
            );
        }
    }
}

fn instructor(id: i64, dept: i64, sal: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(format!("n{id}")), Value::Int(dept), Value::Int(sal)]
}

fn teaches(id: i64, cid: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Int(cid), Value::Int(1), Value::Int(2009)]
}

fn probes() -> Vec<Dataset> {
    let mut out = Vec::new();
    for spec in 0..8u32 {
        let mut d = Dataset::new();
        if spec & 1 != 0 {
            d.push("instructor", instructor(1, 1, 10));
        }
        if spec & 2 != 0 {
            d.push("instructor", instructor(2, 2, 20));
        }
        if spec & 4 != 0 {
            d.push("teaches", teaches(1, 100));
        }
        out.push(d);
    }
    // A denser instance.
    let mut d = Dataset::new();
    d.push("instructor", instructor(1, 1, 10));
    d.push("instructor", instructor(2, 1, 10));
    d.push("teaches", teaches(1, 100));
    d.push("teaches", teaches(2, 101));
    out.push(d);
    out
}

#[test]
fn self_join_survivors_unkillable() {
    probe_survivors(
        "SELECT a.id FROM instructor a, instructor b \
         WHERE a.dept_id = b.dept_id AND a.salary > b.salary",
        0,
        &probes(),
    );
}

#[test]
fn outer_join_with_selection_survivors_unkillable() {
    probe_survivors(
        "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
         ON i.id = t.id WHERE i.salary > 5",
        0,
        &probes(),
    );
}

#[test]
fn self_join_generates_and_kills() {
    // Repeated relation occurrences share one solver array (§V-A); the
    // suite must still kill the non-equivalent outer-join mutants.
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT a.id FROM instructor a, instructor b WHERE a.dept_id = b.dept_id",
            MutationOptions::default(),
        )
        .unwrap();
    assert!(report.killed_count() > 0, "{}", run.suite);
    assert!(space.join.len() >= 2);
    for d in &run.suite.datasets {
        assert!(d.dataset.integrity_violations(&schema).is_empty());
    }
}

#[test]
fn in_query_suite_kills_comparison_mutants() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT s_id FROM advisor WHERE i_id > 3)",
            MutationOptions::default(),
        )
        .unwrap();
    let mutants: Vec<Mutant> = space.iter().collect();
    let surviving_cmp: Vec<String> = report
        .surviving()
        .map(|i| &mutants[i])
        .filter(|m| matches!(m, Mutant::Cmp(_)))
        .map(|m| m.describe(&run.query))
        .collect();
    assert!(surviving_cmp.is_empty(), "surviving: {surviving_cmp:?}\n{}", run.suite);
}

#[test]
fn mixed_inner_outer_tree_mutants() {
    // (i ⋈ t) ⟕ c written explicitly: the fixed tree mutates node kinds.
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT i.name, t.course_id, c.title FROM instructor i \
             JOIN teaches t ON i.id = t.id \
             LEFT OUTER JOIN course c ON t.course_id = c.course_id",
            MutationOptions::default(),
        )
        .unwrap();
    // Fixed tree: 2 nodes × 3 kinds = 6 join mutants.
    assert_eq!(space.join.len(), 6);
    // The left-outer-to-inner mutant at the top is killable (a teaches row
    // with no course) and must die.
    let killed = report.killed_count();
    assert!(killed >= 3, "killed {killed}:\n{}", run.suite);
}
