//! Randomized end-to-end tests: random queries in the paper's class,
//! generated against the University schema, driven by a seeded
//! [`SplitMix64`].
//!
//! Invariants checked per random query:
//!
//! 1. every generated dataset is a **legal instance** (PK/FK/non-null);
//! 2. the **original-query dataset** yields a non-empty result;
//! 3. kill checking is **sound**: a "killed" verdict really means the
//!    results differ (re-verified by re-execution);
//! 4. generation is **deterministic**: two runs produce identical suites;
//! 5. both solver **modes agree** on the number of datasets and skips.

use xdata::catalog::{university, SplitMix64};
use xdata::engine::{execute_query, kill::execute_mutant};
use xdata::relalg::mutation::MutationOptions;
use xdata::solver::Mode;
use xdata::XData;

/// Random query description: a prefix of the join chain, optional
/// selections with random operators/constants, optional aggregate.
#[derive(Debug, Clone)]
struct QuerySpec {
    relations: usize,
    fks: usize,
    salary_sel: Option<(usize, i64)>, // (op index, constant)
    credits_sel: Option<(usize, i64)>,
    aggregate: Option<usize>, // index into AGGS
}

const OPS: [&str; 6] = ["=", "<>", "<", "<=", ">", ">="];
const AGGS: [&str; 5] = ["SUM(i.salary)", "AVG(i.salary)", "COUNT(i.salary)",
    "MIN(i.salary)", "MAX(i.salary)"];

impl QuerySpec {
    fn random(rng: &mut SplitMix64) -> Self {
        QuerySpec {
            relations: 2 + rng.below(3),
            fks: rng.below(4),
            salary_sel: rng.bool().then(|| (rng.below(6), rng.range_i64(1, 199))),
            credits_sel: rng.bool().then(|| (rng.below(6), rng.range_i64(1, 5))),
            aggregate: rng.bool().then(|| rng.below(AGGS.len())),
        }
    }

    fn sql(&self) -> String {
        let rels = university::join_chain(self.relations);
        let mut conds = Vec::new();
        for i in 0..self.relations - 1 {
            let (lr, la, rr, ra) = university::join_chain_condition(i);
            conds.push(format!("{lr}.{la} = {rr}.{ra}"));
        }
        if let Some((op, k)) = self.salary_sel {
            conds.push(format!("instructor.salary {} {k}", OPS[op]));
        }
        if let Some((op, k)) = self.credits_sel {
            if self.relations >= 3 {
                conds.push(format!("course.credits {} {k}", OPS[op]));
            }
        }
        // Aliases: the chain helper uses bare names; alias instructor as i
        // for the aggregate spellings.
        let from: Vec<String> = rels
            .iter()
            .map(|r| if *r == "instructor" { "instructor i".to_string() } else { r.to_string() })
            .collect();
        let conds: Vec<String> =
            conds.into_iter().map(|c| c.replace("instructor.", "i.")).collect();
        let select = match self.aggregate {
            Some(a) => format!("i.dept_id, {}", AGGS[a]),
            None => "*".to_string(),
        };
        let group = if self.aggregate.is_some() { " GROUP BY i.dept_id" } else { "" };
        format!(
            "SELECT {select} FROM {} WHERE {}{group}",
            from.join(", "),
            conds.join(" AND ")
        )
    }
}

#[test]
fn random_query_suite_invariants() {
    let mut rng = SplitMix64::new(0x5017e1);
    for _ in 0..24 {
        let spec = QuerySpec::random(&mut rng);
        let schema = university::schema_with_fk_count(spec.fks);
        let xdata = XData::new(schema.clone());
        let sql = spec.sql();
        let run = xdata.generate_for(&sql)
            .unwrap_or_else(|e| panic!("generate_for({sql}): {e}"));

        // (1) legality.
        for d in &run.suite.datasets {
            let errs = d.dataset.integrity_violations(&schema);
            assert!(errs.is_empty(), "dataset `{}` illegal: {errs:?} (query {sql})", d.label);
        }

        // (2) the original dataset produces rows.
        if let Some(orig) = run.suite.datasets.iter().find(|d| d.label.contains("original")) {
            let r = execute_query(&run.query, &orig.dataset, &schema).unwrap();
            assert!(!r.is_empty(), "original dataset empty result for {sql}");
        }

        // (3) kill soundness.
        let space = run.mutants(MutationOptions { include_full: false, tree_limit: 2_000, ..Default::default() });
        let data = run.suite.data();
        let report = xdata::engine::kill::kill_report(&run.query, &space, &data, &schema).unwrap();
        let mutants: Vec<_> = space.iter().collect();
        for (mi, killer) in report.killed_by.iter().enumerate() {
            if let Some(di) = killer {
                let orig = execute_query(&run.query, data[*di], &schema).unwrap();
                let mutd = execute_mutant(&run.query, &mutants[mi], data[*di], &schema).unwrap();
                assert!(orig != mutd, "claimed kill is not a kill for {sql}");
            }
        }

        // (4) determinism.
        let run2 = xdata.generate_for(&sql).unwrap();
        assert_eq!(run.suite.datasets.len(), run2.suite.datasets.len());
        for (a, b) in run.suite.datasets.iter().zip(&run2.suite.datasets) {
            assert_eq!(&a.dataset, &b.dataset, "nondeterministic dataset for {sql}");
        }

        // (5) mode agreement.
        let lazy = XData::new(schema.clone()).with_mode(Mode::Lazy).generate_for(&sql).unwrap();
        assert_eq!(lazy.suite.datasets.len(), run.suite.datasets.len(), "mode mismatch for {sql}");
        assert_eq!(lazy.suite.skipped.len(), run.suite.skipped.len());
    }
}

/// Suites stay small: the paper's "small and intuitive" promise.
#[test]
fn random_query_datasets_are_small() {
    let mut rng = SplitMix64::new(0x5017e2);
    for _ in 0..12 {
        let spec = QuerySpec::random(&mut rng);
        let schema = university::schema_with_fk_count(spec.fks);
        let xdata = XData::new(schema.clone());
        let run = xdata.generate_for(&spec.sql()).unwrap();
        // Linear dataset count: crude but effective bound.
        assert!(run.suite.datasets.len() <= 8 + 4 * spec.relations);
        // Tiny datasets.
        assert!(run.suite.max_dataset_size() <= 40,
            "dataset too large: {}", run.suite.max_dataset_size());
    }
}
