//! Loopback integration tests for the persistent service mode:
//! `xdata-serve` daemon + `xdata-client` over a real TCP socket on an
//! ephemeral port.
//!
//! The contract under test is the serve mode's whole reason to exist:
//! **the daemon answers with exactly the bytes the batch pipeline
//! produces** — warm caches, tenant namespaces, concurrent clients, and
//! mid-request deadlines change latency, never output. Plus the framing
//! edges a long-running socket server owes its callers: malformed and
//! oversized frames get typed error responses (not hangs, not torn
//! frames), and deadline expiry degrades a response exactly like the
//! batch CLI degrades a run.
//!
//! The metrics recorder is process-global, so the one test that requests
//! per-request metrics shares the usual lock discipline with nothing —
//! it is the only recorder user in this binary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use xdata::client::{Client, ErrorCode, Response, WireOptions};
use xdata::relalg::mutation::MutationOptions;
use xdata::serve::{render_evaluate, Server, ServerConfig};
use xdata::XData;

const SCHEMA: &str = include_str!("../examples/university.sql");
const QUERY: &str = "SELECT name FROM instructor WHERE salary > 75000";
const JOIN_QUERY: &str =
    "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id";

fn spawn_default() -> xdata::serve::ServerHandle {
    Server::bind(ServerConfig::default()).expect("bind ephemeral port").spawn().expect("spawn")
}

/// The in-process pipeline configured exactly as the handler configures it
/// for `SCHEMA` (no INSERTs, so default domains) and `jobs`.
fn in_process(jobs: usize) -> XData {
    let (schema, data) = xdata::sql::parse_script(SCHEMA).expect("example schema parses");
    assert!(data.is_empty(), "university.sql grew INSERTs; mirror the domain setup here");
    XData::new(schema).with_jobs(jobs)
}

fn mopts() -> MutationOptions {
    // The handler's fixed mutation settings (same as the CLI).
    MutationOptions { include_full: true, tree_limit: 20_000, ..Default::default() }
}

#[test]
fn wire_output_is_byte_identical_to_in_process_for_every_method() {
    let server = spawn_default();
    let mut client = Client::connect(server.addr()).expect("connect");

    for jobs in [1, 2] {
        let opts = WireOptions { jobs, ..WireOptions::default() };
        let xd = in_process(jobs);

        let wire = client.generate(SCHEMA, QUERY, opts.clone()).expect("generate ok");
        let run = xd.generate_for(QUERY).expect("in-process generate");
        assert_eq!(wire.output, run.suite.to_string(), "generate bytes (jobs={jobs})");

        let wire = client.evaluate(SCHEMA, QUERY, opts.clone()).expect("evaluate ok");
        let (run, space, report) = xd.evaluate(QUERY, mopts()).expect("in-process evaluate");
        assert_eq!(
            wire.output,
            render_evaluate(&run.query, &run.suite, &space, &report),
            "evaluate bytes (jobs={jobs})"
        );

        let candidates = vec![
            "SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id"
                .to_string(),
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id"
                .to_string(),
            "SELECT FROM WHERE".to_string(),
        ];
        let wire =
            client.grade_batch(SCHEMA, JOIN_QUERY, &candidates, opts).expect("grade_batch ok");
        let report = xd.grade_batch(JOIN_QUERY, &candidates).expect("in-process grade_batch");
        assert_eq!(wire.output, report.render(), "grade_batch bytes (jobs={jobs})");
    }
    server.shutdown().expect("clean shutdown");
}

/// Warm state is a latency optimization, not a semantic one: the second
/// identical request replays memoized solves but must return the same
/// bytes, and `ping` shows the cache actually populating.
#[test]
fn warm_repeat_requests_return_identical_bytes() {
    let server = spawn_default();
    let mut client = Client::connect(server.addr()).expect("connect");

    let before = client.ping().expect("ping");
    assert!(before.output.contains("warm memo entries 0"), "fresh daemon: {}", before.output);

    let cold = client.generate(SCHEMA, QUERY, WireOptions::default()).expect("cold");
    let warm = client.generate(SCHEMA, QUERY, WireOptions::default()).expect("warm");
    assert_eq!(cold.output, warm.output, "warm replay changed output bytes");

    let after = client.ping().expect("ping");
    assert!(!after.output.contains("warm memo entries 0"), "cache never populated: {}", after.output);
    server.shutdown().expect("clean shutdown");
}

/// Concurrent clients on distinct tenants: every response carries the
/// same bytes the single-client run produced. Tenants namespace the warm
/// cache, so cross-tenant interleaving exercises disjoint salt spaces
/// against one shared memo map.
#[test]
fn concurrent_clients_are_deterministic() {
    let server = spawn_default();
    let mut reference = Client::connect(server.addr()).expect("connect");
    let expected = reference.generate(SCHEMA, QUERY, WireOptions::default()).expect("ref").output;

    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr)
                    .expect("connect")
                    .with_tenant(&format!("tenant-{i}"));
                for _ in 0..2 {
                    let got = c.generate(SCHEMA, QUERY, WireOptions::default()).expect("gen");
                    assert_eq!(got.output, expected, "client {i} diverged");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown().expect("clean shutdown");
}

/// A request with `metrics` set gets a per-request report whose
/// timing-stripped bytes match the in-process recorder's — modulo the
/// `serve.*` lines, which carry daemon-lifetime totals by design.
#[test]
fn first_request_metrics_match_in_process_modulo_serve_counters() {
    fn drop_serve_lines(report: &str) -> String {
        report.lines().filter(|l| !l.contains("\"serve.")).collect::<Vec<_>>().join("\n")
    }

    let server = spawn_default();
    let mut client = Client::connect(server.addr()).expect("connect");
    let req = client
        .build(xdata::client::RequestBody::Generate(xdata::client::GenerateParams {
            schema: SCHEMA.to_string(),
            query: QUERY.to_string(),
            options: WireOptions::default(),
        }))
        .with_metrics();
    let payload = client.request(&req).expect("generate ok");
    let wire_metrics = payload.metrics_json.expect("metrics requested");
    server.shutdown().expect("clean shutdown");

    xdata::obs::install();
    xdata::obs::preseed();
    in_process(1).generate_for(QUERY).expect("in-process generate");
    let local = xdata::obs::take_report().expect("recorder installed");

    assert_eq!(
        drop_serve_lines(&xdata::obs::strip_timings(&wire_metrics)),
        drop_serve_lines(&local.to_json_stripped()),
        "wire metrics diverged from the in-process recorder"
    );
    // And the serve.* totals themselves are the fresh-daemon values.
    assert!(wire_metrics.contains("\"serve.requests\": 1"), "lifetime totals missing");
}

/// Framing edges: junk JSON gets a typed `bad_request` (with best-effort
/// id recovery), an unknown method gets `unknown_method`, and an
/// oversized line gets `oversized_frame` followed by connection close.
#[test]
fn malformed_and_oversized_frames_get_typed_errors() {
    let config = ServerConfig { max_line_bytes: 4096, ..ServerConfig::default() };
    let server = Server::bind(config).expect("bind").spawn().expect("spawn");

    let send_line = |line: &str| -> Response {
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.write_all(line.as_bytes()).expect("write");
        s.write_all(b"\n").expect("write");
        let mut r = BufReader::new(s);
        let mut resp = String::new();
        r.read_line(&mut resp).expect("read");
        Response::decode(resp.trim_end()).expect("error responses are valid frames")
    };

    let resp = send_line("this is not json");
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::BadRequest);

    let resp = send_line(r#"{"v": 1, "id": 7, "method": "frobnicate", "params": {}}"#);
    let err = resp.result.unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownMethod);
    assert_eq!(resp.id, 7, "id recovered from the malformed frame");

    let resp = send_line(&"x".repeat(8192));
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::OversizedFrame);

    // The oversized response is terminal for its connection, but the
    // daemon itself keeps serving new ones.
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("daemon survived the rejected frames");
    server.shutdown().expect("clean shutdown");
}

/// A request-level deadline that expires mid-run degrades the *payload*
/// exactly like the batch CLI degrades a timed-out run — skipped targets
/// in a partial suite — and is never surfaced as a wire error.
#[test]
fn expired_deadline_degrades_payload_never_errors() {
    let server = spawn_default();
    let mut client = Client::connect(server.addr()).expect("connect");
    let req = client
        .build(xdata::client::RequestBody::Generate(xdata::client::GenerateParams {
            schema: SCHEMA.to_string(),
            query: QUERY.to_string(),
            options: WireOptions::default(),
        }))
        .with_deadline_ms(0);
    match client.request(&req) {
        Ok(payload) => assert!(
            payload.output.contains("skipped"),
            "a 0ms deadline must leave timed-out skips in the suite: {}",
            payload.output
        ),
        Err(e) => panic!("deadline expiry must degrade, not error: {e}"),
    }
    server.shutdown().expect("clean shutdown");
}

/// Chaos leg: a forced mid-request expiry fault shows up over the wire as
/// `UNEVALUATED` verdicts in a successful response — byte-identical to
/// the in-process chaos run — never as an error frame and never as a
/// false `SURVIVES (equivalent)` verdict.
#[cfg(feature = "chaos")]
#[test]
fn chaos_expiry_fault_yields_unevaluated_over_the_wire() {
    use xdata::client::ClientError;
    use xdata::core::FaultPlan;

    let faults = FaultPlan {
        panic_targets: vec![],
        unknown_targets: vec![],
        expire_targets: vec!["eq-class".into()],
    };
    let options = WireOptions {
        fault_expire: vec!["eq-class".into()],
        ..WireOptions::default()
    };
    let query =
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000";

    let server = spawn_default();
    let mut client = Client::connect(server.addr()).expect("connect");
    let wire = match client.evaluate(SCHEMA, query, options) {
        Ok(p) => p,
        Err(ClientError::Server(e)) => panic!("fault must degrade, not error: {e:?}"),
        Err(e) => panic!("transport failed: {e}"),
    };
    server.shutdown().expect("clean shutdown");

    let xd = in_process(1).with_faults(faults);
    let (run, space, report) = xd.evaluate(query, mopts()).expect("chaos run completes");
    assert_eq!(wire.output, render_evaluate(&run.query, &run.suite, &space, &report));
    assert!(
        !wire.output.contains("SURVIVES (equivalent)") || !run.suite.is_partial(),
        "partial suite must not claim proven equivalence"
    );
}
