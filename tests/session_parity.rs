//! Verdict parity across search cores: the incremental assumption-based
//! session (`--search-core session`), a fresh CDCL solve per target
//! (`--search-core cdcl`) and the chronological DPLL baseline
//! (`--search-core dpll`) must agree on every verdict — which targets
//! produce a dataset, which are skipped, and why.
//!
//! The cores are free to return *different models* (a satisfying dataset
//! is not unique), so parity is over labels and skip reasons, not tuple
//! values. Within one core, tuple values must still be byte-identical
//! across `--jobs` — that part is pinned for the session core here and
//! for the default configuration in `parallel_determinism.rs`.

use xdata::catalog::university;
use xdata::core::SkipReason;
use xdata::solver::SearchCore;
use xdata::XData;

/// (name, core, incremental) — mirrors the CLI's `--search-core` values.
const CONFIGS: [(&str, SearchCore, bool); 3] = [
    ("session", SearchCore::Cdcl, true),
    ("cdcl", SearchCore::Cdcl, false),
    ("dpll", SearchCore::Dpll, false),
];

/// Table I chain joins (2..=4 relations, all relevant FKs) plus a
/// selection chain, the workload family of the paper's evaluation.
fn table1_queries() -> Vec<(String, xdata::catalog::Schema)> {
    let mut queries: Vec<(String, xdata::catalog::Schema)> = (2..=4)
        .map(|k| {
            let rels = university::join_chain(k);
            let mut conds = Vec::new();
            for i in 0..k - 1 {
                let (lr, la, rr, ra) = university::join_chain_condition(i);
                conds.push(format!("{lr}.{la} = {rr}.{ra}"));
            }
            let sql =
                format!("SELECT * FROM {} WHERE {}", rels.join(", "), conds.join(" AND "));
            (sql, university::schema_with_fk_count(k - 1))
        })
        .collect();
    queries.push((
        "SELECT * FROM instructor i, teaches t, course c \
         WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 50000"
            .into(),
        university::schema_with_fk_count(2),
    ));
    queries
}

/// §V-H extended-class queries: membership and quantified subqueries,
/// LIKE patterns, NULL checks — including a NULL-witness target, which
/// needs a DDL schema whose linked column stays nullable.
fn extended_queries() -> Vec<(String, xdata::catalog::Schema)> {
    let strict = university::schema_with_fk_count(0);
    let nullable = xdata::sql::parse_schema(
        "CREATE TABLE instructor (id INT PRIMARY KEY, name VARCHAR, dept_id INT, salary INT);
         CREATE TABLE teaches (id INT, course_id INT, sec_id INT, year INT);",
    )
    .unwrap();
    vec![
        (
            "SELECT name FROM instructor WHERE id NOT IN \
             (SELECT s_id FROM advisor WHERE i_id > 3)"
                .into(),
            strict.clone(),
        ),
        (
            "SELECT i.name FROM instructor i WHERE NOT EXISTS \
             (SELECT id FROM teaches t WHERE t.id = i.id)"
                .into(),
            strict.clone(),
        ),
        (
            "SELECT id FROM instructor WHERE name LIKE '%Wu%' AND salary IS NOT NULL".into(),
            strict,
        ),
        (
            "SELECT name FROM instructor WHERE id IN \
             (SELECT id FROM teaches WHERE year > 2000)"
                .into(),
            nullable,
        ),
    ]
}

fn verdicts(
    schema: &xdata::catalog::Schema,
    sql: &str,
    core: SearchCore,
    incremental: bool,
    limit: Option<u64>,
) -> (Vec<String>, Vec<(String, SkipReason)>) {
    let mut xd = XData::new(schema.clone())
        .with_search_core(core)
        .with_incremental(incremental);
    if let Some(l) = limit {
        xd = xd.with_decision_limit(l);
    }
    let run = xd.generate_for(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    (
        run.suite.datasets.iter().map(|d| d.label.clone()).collect(),
        run.suite.skipped.iter().map(|s| (s.label.clone(), s.reason.clone())).collect(),
    )
}

/// Every Table I target solved three ways yields the same verdict: the
/// same targets produce datasets, the same targets are skipped, with the
/// same [`SkipReason`].
#[test]
fn three_cores_agree_on_table1_verdicts() {
    for (sql, schema) in table1_queries() {
        let (base_labels, base_skips) =
            verdicts(&schema, &sql, CONFIGS[0].1, CONFIGS[0].2, None);
        assert!(!base_labels.is_empty(), "{sql}: no datasets at all");
        for (name, core, incremental) in &CONFIGS[1..] {
            let (labels, skips) = verdicts(&schema, &sql, *core, *incremental, None);
            assert_eq!(base_labels, labels, "dataset labels differ: session vs {name}: {sql}");
            assert_eq!(base_skips, skips, "skip lists differ: session vs {name}: {sql}");
        }
    }
}

/// Extended-class targets (subquery distinguishers, NULL witnesses, LIKE
/// symmetric differences) keep the three-way verdict parity, and the
/// session core keeps byte-identical suites across `--jobs` on them.
#[test]
fn extended_classes_keep_core_and_jobs_parity() {
    for (sql, schema) in extended_queries() {
        let (base_labels, base_skips) =
            verdicts(&schema, &sql, CONFIGS[0].1, CONFIGS[0].2, None);
        assert!(!base_labels.is_empty(), "{sql}: no datasets at all");
        for (name, core, incremental) in &CONFIGS[1..] {
            let (labels, skips) = verdicts(&schema, &sql, *core, *incremental, None);
            assert_eq!(base_labels, labels, "dataset labels differ: session vs {name}: {sql}");
            assert_eq!(base_skips, skips, "skip lists differ: session vs {name}: {sql}");
        }
        let render = |jobs: usize| {
            XData::new(schema.clone())
                .with_jobs(jobs)
                .with_search_core(SearchCore::Cdcl)
                .with_incremental(true)
                .generate_for(&sql)
                .unwrap_or_else(|e| panic!("jobs={jobs} {sql}: {e}"))
                .suite
                .to_string()
        };
        let base = render(1);
        for jobs in [2, 4] {
            assert_eq!(base, render(jobs), "suite bytes differ at jobs={jobs}: {sql}");
        }
    }
}

/// With a decision budget of 0 only propagation-solvable targets get
/// through; everything else must surface as `SkipReason::Budget` — and
/// *identically* so in all three cores, decisions-spent field included.
/// Assumption establishment in the session core must not count against
/// the budget, or this diverges from the fresh cores.
#[test]
fn tiny_budget_reports_identical_budget_skips() {
    let (sql, schema) = table1_queries().pop().unwrap();
    let (base_labels, base_skips) =
        verdicts(&schema, &sql, CONFIGS[0].1, CONFIGS[0].2, Some(0));
    assert!(
        base_skips.iter().any(|(_, r)| matches!(r, SkipReason::Budget { .. })),
        "a zero budget must starve some target: {base_skips:?}"
    );
    for (name, core, incremental) in &CONFIGS[1..] {
        let (labels, skips) = verdicts(&schema, &sql, *core, *incremental, Some(0));
        assert_eq!(base_labels, labels, "starved labels differ: session vs {name}");
        assert_eq!(base_skips, skips, "starved skips differ: session vs {name}");
    }
}

/// The session core keeps the cross-`--jobs` byte-identity guarantee:
/// warm solver state (learned clauses, activities, saved phases) is
/// handed from target to target in plan order whatever the thread count.
#[test]
fn session_suites_byte_identical_across_jobs() {
    for (sql, schema) in table1_queries() {
        let render = |jobs: usize| {
            XData::new(schema.clone())
                .with_jobs(jobs)
                .with_search_core(SearchCore::Cdcl)
                .with_incremental(true)
                .generate_for(&sql)
                .unwrap_or_else(|e| panic!("jobs={jobs} {sql}: {e}"))
                .suite
                .to_string()
        };
        let base = render(1);
        for jobs in [2, 4, 0] {
            assert_eq!(base, render(jobs), "suite bytes differ at jobs={jobs}: {sql}");
        }
    }
}
