//! SELECT DISTINCT and the duplicate-count mutation class (the paper's
//! footnote 2 defers these to future work; implemented here).

use xdata::catalog::{university, Dataset, Value};
use xdata::engine::execute_query;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::{normalize, Mutant};
use xdata::sql::parse_query;
use xdata::XData;

#[test]
fn engine_distinct_deduplicates() {
    let schema = university::schema_with_fk_count(0);
    let mut d = Dataset::new();
    for (id, dept) in [(1, 7), (2, 7), (3, 8)] {
        d.push(
            "instructor",
            vec![Value::Int(id), Value::Str("x".into()), Value::Int(dept), Value::Int(1)],
        );
    }
    let plain = normalize(
        &parse_query("SELECT dept_id FROM instructor").unwrap(),
        &schema,
    )
    .unwrap();
    let distinct = normalize(
        &parse_query("SELECT DISTINCT dept_id FROM instructor").unwrap(),
        &schema,
    )
    .unwrap();
    assert_eq!(execute_query(&plain, &d, &schema).unwrap().len(), 3);
    assert_eq!(execute_query(&distinct, &d, &schema).unwrap().len(), 2);
}

#[test]
fn duplicate_mutant_killed_for_projection() {
    // SELECT i.dept_id over a join: two instructors in one department give
    // duplicate projected rows; the generator must build that dataset.
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT i.dept_id FROM instructor i, teaches t WHERE i.id = t.id",
            MutationOptions::default(),
        )
        .unwrap();
    assert_eq!(space.dup.len(), 1);
    let mutants: Vec<Mutant> = space.iter().collect();
    let dup_idx = mutants
        .iter()
        .position(|m| matches!(m, Mutant::Distinct(_)))
        .expect("distinct mutant in space");
    assert!(
        report.killed_by[dup_idx].is_some(),
        "duplicate mutant survived:\n{}",
        run.suite
    );
    // The killing dataset really contains a duplicate projected row.
    let di = report.killed_by[dup_idx].unwrap();
    let ds = &run.suite.datasets[di];
    let r = execute_query(&run.query, &ds.dataset, &schema).unwrap();
    let mut rows = r.rows().to_vec();
    let before = rows.len();
    rows.dedup();
    assert!(rows.len() < before, "no duplicate row in:\n{}", ds.dataset);
}

#[test]
fn star_select_with_keys_has_equivalent_duplicate_mutant() {
    // SELECT * with primary keys everywhere: duplicate rows are impossible,
    // the mutant must survive as equivalent.
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (_, space, report) = xdata
        .evaluate(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
            MutationOptions::default(),
        )
        .unwrap();
    let dup_idx = space.len() - 1; // distinct mutant is last in iteration order
    assert!(report.killed_by[dup_idx].is_none());
}

#[test]
fn distinct_query_mutates_to_plain_select() {
    // The original uses DISTINCT; the mutant drops it — killed by the same
    // duplicate-bearing dataset.
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT DISTINCT dept_id FROM instructor",
            MutationOptions::default(),
        )
        .unwrap();
    assert_eq!(space.dup.len(), 1);
    assert!(!space.dup[0].to, "mutant drops DISTINCT");
    let mutants: Vec<Mutant> = space.iter().collect();
    let dup_idx =
        mutants.iter().position(|m| matches!(m, Mutant::Distinct(_))).expect("present");
    assert!(report.killed_by[dup_idx].is_some(), "{}", run.suite);
}

#[test]
fn aggregation_has_no_duplicate_mutant() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema);
    let run = xdata
        .generate_for("SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id")
        .unwrap();
    let space = run.mutants(MutationOptions::default());
    assert!(space.dup.is_empty());
}
