//! §V-H subquery decorrelation, end to end: `IN (SELECT ...)` queries are
//! rewritten into joins and then go through the full generate/mutate/kill
//! pipeline.

use xdata::catalog::{university, Dataset, Value};
use xdata::engine::execute_query;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::normalize;
use xdata::sql::parse_query;
use xdata::XData;

fn db() -> Dataset {
    let mut d = Dataset::new();
    for (id, name, dept, sal) in
        [(1, "A", 1, 100), (2, "B", 1, 50), (3, "C", 2, 100)]
    {
        d.push(
            "instructor",
            vec![Value::Int(id), Value::Str(name.into()), Value::Int(dept), Value::Int(sal)],
        );
    }
    d.push("advisor", vec![Value::Int(10), Value::Int(1)]);
    d.push("advisor", vec![Value::Int(11), Value::Int(3)]);
    d
}

/// The decorrelated IN computes the same result as the hand-written join.
#[test]
fn in_query_equals_manual_join_semantics() {
    let schema = university::schema_with_fk_count(0);
    let q_in = normalize(
        &parse_query(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT i_id FROM advisor WHERE s_id > 10)",
        )
        .unwrap(),
        &schema,
    );
    // advisor.i_id is not a PK: must be rejected (duplicate-unsafe).
    assert!(q_in.is_err());

    // advisor.s_id IS the PK; membership over it is safe.
    let q_in = normalize(
        &parse_query(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT s_id FROM advisor WHERE i_id > 0)",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let mut d = Dataset::new();
    d.push("instructor", vec![Value::Int(10), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
    d.push("instructor", vec![Value::Int(99), Value::Str("B".into()), Value::Int(1), Value::Int(1)]);
    d.push("advisor", vec![Value::Int(10), Value::Int(7)]);
    let r = execute_query(&q_in, &d, &schema).unwrap();
    assert_eq!(r.rows(), &[vec![Value::Str("A".into())]]);
}

/// Membership semantics: one outer row appears at most once even when the
/// subquery has selections.
#[test]
fn in_is_duplicate_safe() {
    let schema = university::schema_with_fk_count(0);
    let q = normalize(
        &parse_query(
            "SELECT name FROM instructor WHERE dept_id IN \
             (SELECT dept_id FROM department WHERE budget > 0)",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let mut d = db();
    d.push("department", vec![Value::Int(1), Value::Str("CS".into()), Value::Str("T".into()), Value::Int(5)]);
    let r = execute_query(&q, &d, &schema).unwrap();
    // Exactly the two dept-1 instructors, once each.
    assert_eq!(r.len(), 2);
}

/// Full pipeline: generation + kill checking on an IN query.
#[test]
fn in_query_generates_killing_suite() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT s_id FROM advisor WHERE i_id > 2)",
            MutationOptions::default(),
        )
        .unwrap();
    assert!(!run.suite.datasets.is_empty());
    assert!(!space.is_empty());
    assert!(report.killed_count() > 0, "IN-query mutants must be killable:\n{}", run.suite);
    for d in &run.suite.datasets {
        assert!(d.dataset.integrity_violations(&schema).is_empty());
    }
}

/// The membership column of the rewrite participates in equivalence
/// classes, so join-type mutants of the implicit semijoin exist and die.
#[test]
fn in_rewrite_exposes_join_mutants() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT name FROM instructor WHERE id IN (SELECT s_id FROM advisor)",
            MutationOptions::default(),
        )
        .unwrap();
    assert!(!space.join.is_empty(), "semijoin rewrite must expose join mutants");
    // Both nullification directions are possible without FKs, so the
    // left/right outer mutants of the rewrite die.
    let killed_join = space
        .join
        .iter()
        .enumerate()
        .filter(|(i, _)| report.killed_by[*i].is_some())
        .count();
    assert!(killed_join >= 2, "{}", run.suite);
}
