//! §V-H extended query classes, end to end: `[NOT] IN` / `[NOT] EXISTS`
//! subqueries, `LIKE` patterns and `IS [NOT] NULL` checks flow through the
//! full generate/mutate/kill pipeline, and each family's datasets kill
//! **every** non-equivalent mutant of that family.

use xdata::catalog::{university, Dataset, Schema, Value};
use xdata::engine::execute_query;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::{normalize, Mutant};
use xdata::sql::{parse_query, parse_schema};
use xdata::XData;

/// Evaluate `sql` and assert that no mutant matched by `class` survives.
fn assert_class_complete(schema: &Schema, sql: &str, class: fn(&Mutant) -> bool) {
    let xdata = XData::new(schema.clone());
    let (run, space, report) =
        xdata.evaluate(sql, MutationOptions::default()).unwrap_or_else(|e| panic!("{sql}: {e}"));
    let mutants: Vec<Mutant> = space.iter().collect();
    assert!(mutants.iter().any(class), "`{sql}` produced no mutants of the asserted class");
    let surviving: Vec<String> = report
        .surviving()
        .map(|i| &mutants[i])
        .filter(|m| class(m))
        .map(|m| m.describe(&run.query))
        .collect();
    assert!(surviving.is_empty(), "`{sql}` survivors: {surviving:?}\n{}", run.suite);
    for d in &run.suite.datasets {
        assert!(d.dataset.integrity_violations(schema).is_empty(), "{}", d.dataset);
    }
}

fn is_sub(m: &Mutant) -> bool {
    matches!(m, Mutant::Sub(_))
}

fn is_like(m: &Mutant) -> bool {
    matches!(m, Mutant::Like(_))
}

fn is_null_check(m: &Mutant) -> bool {
    matches!(m, Mutant::NullCheck(_))
}

/// A schema in the `examples/university_subqueries.sql` mould: DDL columns
/// without `NOT NULL` stay nullable, so NULL-witness targets plan.
fn nullable_schema() -> Schema {
    parse_schema(
        "CREATE TABLE instructor (
             id INT PRIMARY KEY,
             name VARCHAR,
             dept_id INT,
             salary INT
         );
         CREATE TABLE teaches (
             id INT,
             course_id INT,
             sec_id INT,
             year INT
         );",
    )
    .unwrap()
}

// ----- execution semantics ----------------------------------------------

/// Membership is evaluated as membership (not a join merge): one outer row
/// appears at most once however many subquery rows match, and non-PK
/// membership columns are accepted.
#[test]
fn in_is_duplicate_safe_without_pk_side_condition() {
    let schema = university::schema_with_fk_count(0);
    // advisor.i_id is NOT a primary key; the old join rewrite had to
    // reject this, membership semantics accept it.
    let q = normalize(
        &parse_query(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT i_id FROM advisor WHERE s_id > 10)",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let mut d = Dataset::new();
    d.push("instructor", vec![Value::Int(7), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
    d.push("instructor", vec![Value::Int(9), Value::Str("B".into()), Value::Int(1), Value::Int(1)]);
    // Two advisor rows point at instructor 7: membership must still yield
    // the row once.
    d.push("advisor", vec![Value::Int(11), Value::Int(7)]);
    d.push("advisor", vec![Value::Int(12), Value::Int(7)]);
    let r = execute_query(&q, &d, &schema).unwrap();
    assert_eq!(r.rows(), &[vec![Value::Str("A".into())]]);
}

/// The SQL `NOT IN` NULL trap: one NULL member empties the whole result.
#[test]
fn not_in_with_null_member_returns_nothing() {
    let schema = nullable_schema();
    let q = normalize(
        &parse_query(
            "SELECT name FROM instructor WHERE dept_id NOT IN \
             (SELECT dept_id FROM teaches WHERE year = 2009)",
        )
        .unwrap(),
        &schema,
    );
    // teaches has no dept_id column — use course_id instead.
    assert!(q.is_err());
    let q = normalize(
        &parse_query(
            "SELECT name FROM instructor WHERE salary NOT IN \
             (SELECT course_id FROM teaches WHERE year = 2009)",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let mut d = Dataset::new();
    d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(5)]);
    d.push("teaches", vec![Value::Int(1), Value::Null, Value::Int(1), Value::Int(2009)]);
    let r = execute_query(&q, &d, &schema).unwrap();
    assert!(r.is_empty(), "NOT IN over a NULL member must be UNKNOWN: {r:?}");
}

// ----- kill completeness per family -------------------------------------

/// Subquery-connective mutants: positive and negative `IN`, correlated
/// `EXISTS` and `NOT EXISTS` — each suite kills its full connective space.
#[test]
fn subquery_connective_mutants_all_killed() {
    let schema = university::schema_with_fk_count(0);
    for sql in [
        "SELECT name FROM instructor WHERE id IN \
         (SELECT s_id FROM advisor WHERE i_id > 3)",
        "SELECT name FROM instructor WHERE id NOT IN \
         (SELECT s_id FROM advisor WHERE i_id > 3)",
        "SELECT i.name FROM instructor i WHERE EXISTS \
         (SELECT id FROM teaches t WHERE t.id = i.id)",
        "SELECT i.name FROM instructor i WHERE NOT EXISTS \
         (SELECT id FROM teaches t WHERE t.id = i.id)",
    ] {
        assert_class_complete(&schema, sql, is_sub);
    }
}

/// The connective space stays fully killed when the subquery rides along
/// with a join and a selection.
#[test]
fn subquery_composed_with_join_mutants_all_killed() {
    let schema = university::schema_with_fk_count(0);
    assert_class_complete(
        &schema,
        "SELECT i.name FROM instructor i, department d \
         WHERE i.dept_id = d.dept_id AND i.salary > 100 AND i.id IN \
         (SELECT id FROM teaches t WHERE t.year > 2000)",
        is_sub,
    );
}

/// With a nullable linked column the NULL-membership witness dataset
/// plans, carries an actual NULL in that column, and the connective space
/// is still fully killed.
#[test]
fn null_witness_dataset_exhibits_the_not_in_trap() {
    let schema = nullable_schema();
    let sql = "SELECT name FROM instructor WHERE id IN \
               (SELECT id FROM teaches WHERE year > 2000)";
    assert_class_complete(&schema, sql, is_sub);
    let run = XData::new(schema.clone()).generate_for(sql).unwrap();
    let witness = run
        .suite
        .datasets
        .iter()
        .find(|d| d.label.contains("NULL membership witness"))
        .unwrap_or_else(|| panic!("no NULL witness dataset:\n{}", run.suite));
    let has_null_member = witness
        .dataset
        .relation("teaches")
        .map(|rows| rows.iter().any(|t| t[0] == Value::Null))
        .unwrap_or(false);
    assert!(has_null_member, "witness lacks a NULL in the linked column:\n{}", witness.dataset);
}

/// The NULL witness of a *negated* IN catches the classic NULL-blind
/// rewrite: `NOT EXISTS (... t.id = i.id ...)` agrees with `NOT IN` on
/// every NULL-free dataset, so only the witness can fail the candidate.
#[test]
fn negated_null_witness_catches_not_exists_rewrite() {
    let schema = nullable_schema();
    let reference = "SELECT name FROM instructor WHERE id NOT IN \
                     (SELECT id FROM teaches WHERE year > 2000)";
    assert_class_complete(&schema, reference, is_sub);
    let run = XData::new(schema.clone()).generate_for(reference).unwrap();
    let rewrite = normalize(
        &parse_query(
            "SELECT i.name FROM instructor i WHERE NOT EXISTS \
             (SELECT id FROM teaches t WHERE t.id = i.id AND t.year > 2000)",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let reference_q = &run.query;
    let mut caught_by = Vec::new();
    for d in &run.suite.datasets {
        let a = execute_query(reference_q, &d.dataset, &schema).unwrap();
        let b = execute_query(&rewrite, &d.dataset, &schema).unwrap();
        if a != b {
            caught_by.push(d.label.clone());
        }
    }
    assert!(
        caught_by.iter().any(|l| l.contains("NULL membership witness")),
        "the NULL witness must expose the NULL-blind rewrite; caught by {caught_by:?}\n{}",
        run.suite
    );
}

/// LIKE-pattern mutants: the `{core, core%, %core, %core%}` family is
/// killed from every starting shape, negated included.
#[test]
fn like_pattern_mutants_all_killed() {
    let schema = university::schema_with_fk_count(0);
    for sql in [
        "SELECT id FROM instructor WHERE name LIKE 'Wu'",
        "SELECT id FROM instructor WHERE name LIKE 'Wu%'",
        "SELECT id FROM instructor WHERE name LIKE '%Wu'",
        "SELECT id FROM instructor WHERE name LIKE '%Wu%'",
        "SELECT id FROM instructor WHERE name NOT LIKE '%Wu%'",
        "SELECT i.id FROM instructor i, teaches t WHERE i.id = t.id AND i.name LIKE 'Ko%'",
    ] {
        assert_class_complete(&schema, sql, is_like);
    }
}

/// NULL-check mutants: the polarity flip dies on nullable columns (a NULL
/// is constructible) and on non-nullable ones (the original side is then
/// the witness).
#[test]
fn null_check_mutants_all_killed() {
    let nullable = nullable_schema();
    for sql in [
        "SELECT id FROM instructor WHERE salary IS NULL",
        "SELECT id FROM instructor WHERE salary IS NOT NULL",
        "SELECT id FROM instructor WHERE salary IS NOT NULL AND dept_id > 2",
    ] {
        assert_class_complete(&nullable, sql, is_null_check);
    }
    // university::schema marks every column NOT NULL: `IS NOT NULL` is
    // always true, its flip always false — the original dataset kills it.
    let strict = university::schema_with_fk_count(0);
    assert_class_complete(&strict, "SELECT id FROM instructor WHERE salary IS NOT NULL", is_null_check);
}

/// Full pipeline sanity on an IN query: suite non-empty, mutants killable,
/// datasets valid — the spirit of the original decorrelation test, kept
/// under membership semantics.
#[test]
fn in_query_generates_killing_suite() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT s_id FROM advisor WHERE i_id > 2)",
            MutationOptions::default(),
        )
        .unwrap();
    assert!(!run.suite.datasets.is_empty());
    assert!(!space.is_empty());
    assert!(report.killed_count() > 0, "IN-query mutants must be killable:\n{}", run.suite);
    for d in &run.suite.datasets {
        assert!(d.dataset.integrity_violations(&schema).is_empty());
    }
}
