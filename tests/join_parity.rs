//! Differential testing of the two physical join strategies: every query
//! of the tier-1 corpus (paper examples over the University schema, plus
//! seeded random schemas in the `tests/random_schemas.rs` style) executes
//! through both the hash-join path and the nested-loop baseline, on every
//! dataset of its generated suite, for the original query *and* every
//! mutant — and the [`ResultSet`]s must be identical, row for row.
//!
//! Identical means `==` on the sorted bags AND the same projected row
//! content; because the hash path replays the nested-loop emission order,
//! even order-sensitive float aggregation (`SUM`/`AVG` accumulation)
//! cannot diverge.

use xdata::catalog::{Attribute, Relation, Schema, SplitMix64, SqlType};
use xdata::engine::exec::{execute_query_strategy, JoinStrategy};
use xdata::engine::kill::prepare_mutant;
use xdata::relalg::mutation::{mutation_space, MutationOptions};
use xdata::XData;

/// Assert hash/nested parity for `sql` on every dataset of its generated
/// suite, for the original and all mutants.
fn assert_parity(schema: &Schema, sql: &str) {
    let x = XData::new(schema.clone());
    let run = x.generate_for(sql).unwrap_or_else(|e| panic!("generate `{sql}`: {e}"));
    let space = mutation_space(&run.query, MutationOptions::default());
    let mutants: Vec<_> = space.iter().collect();
    for (di, d) in run.suite.datasets.iter().enumerate() {
        let hash = execute_query_strategy(&run.query, &d.dataset, schema, JoinStrategy::Hash)
            .unwrap_or_else(|e| panic!("hash `{sql}` on dataset {di}: {e}"));
        let nested =
            execute_query_strategy(&run.query, &d.dataset, schema, JoinStrategy::NestedLoop)
                .unwrap_or_else(|e| panic!("nested `{sql}` on dataset {di}: {e}"));
        assert_eq!(hash, nested, "original `{sql}` diverges on dataset {di}");
        assert_eq!(hash.rows(), nested.rows(), "row order/content `{sql}` dataset {di}");
        for (mi, m) in mutants.iter().enumerate() {
            let prepared = prepare_mutant(&run.query, m);
            let h = prepared
                .execute_strategy(&run.query, &d.dataset, schema, JoinStrategy::Hash)
                .unwrap_or_else(|e| panic!("hash mutant {mi} of `{sql}`: {e}"));
            let n = prepared
                .execute_strategy(&run.query, &d.dataset, schema, JoinStrategy::NestedLoop)
                .unwrap_or_else(|e| panic!("nested mutant {mi} of `{sql}`: {e}"));
            assert_eq!(
                h.rows(),
                n.rows(),
                "mutant {mi} ({}) of `{sql}` diverges on dataset {di}",
                m.describe(&run.query)
            );
        }
    }
}

/// The paper-example corpus: joins of every type, selections, non-equi
/// offset joins, self-joins, aggregation with HAVING, DISTINCT.
#[test]
fn university_corpus_parity() {
    let schema = xdata::catalog::university::schema();
    for sql in [
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000",
        "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id",
        "SELECT i.name, t.course_id FROM instructor i RIGHT OUTER JOIN teaches t ON i.id = t.id",
        "SELECT i.name, t.course_id FROM instructor i FULL OUTER JOIN teaches t ON i.id = t.id",
        "SELECT * FROM instructor i, teaches t, course c \
         WHERE i.id = t.id AND t.course_id = c.course_id",
        "SELECT t.id FROM teaches t, course c WHERE t.course_id = c.course_id + 10",
        "SELECT i.dept_id, SUM(i.salary) FROM instructor i, teaches t WHERE i.id = t.id \
         GROUP BY i.dept_id",
        "SELECT dept_id, COUNT(salary) FROM instructor GROUP BY dept_id \
         HAVING COUNT(salary) > 1",
        "SELECT DISTINCT i.dept_id FROM instructor i, teaches t WHERE i.id = t.id",
    ] {
        assert_parity(&schema, sql);
    }
}

/// §V-H extended classes ride the same differential harness: membership
/// subqueries (hash-indexed and fallback), correlated EXISTS, LIKE and
/// NULL checks, each with its full mutant family executed both ways.
#[test]
fn extended_class_corpus_parity() {
    let schema = xdata::catalog::university::schema();
    for sql in [
        "SELECT name FROM instructor WHERE id IN \
         (SELECT s_id FROM advisor WHERE i_id > 3)",
        "SELECT name FROM instructor WHERE id NOT IN \
         (SELECT s_id FROM advisor WHERE i_id > 3)",
        "SELECT i.name FROM instructor i WHERE EXISTS \
         (SELECT id FROM teaches t WHERE t.id = i.id)",
        "SELECT i.name FROM instructor i WHERE NOT EXISTS \
         (SELECT id FROM teaches t WHERE t.id = i.id)",
        "SELECT i.name FROM instructor i, department d \
         WHERE i.dept_id = d.dept_id AND i.id IN \
         (SELECT id FROM teaches t WHERE t.year > 2000)",
        "SELECT id FROM instructor WHERE name LIKE 'Wu%'",
        "SELECT i.id FROM instructor i, teaches t WHERE i.id = t.id AND i.name NOT LIKE '%Wu%'",
        "SELECT id FROM instructor WHERE salary IS NOT NULL",
    ] {
        assert_parity(&schema, sql);
    }
}

/// Hand-built datasets that stress hash-key edge cases the generator may
/// not produce: NULL join keys, duplicate keys on both sides, Int/Double
/// mixed-type key equality, and empty inputs.
#[test]
fn hand_built_edge_case_parity() {
    use xdata::catalog::{Dataset, Value};
    use xdata::relalg::normalize;
    use xdata::sql::parse_query;

    let mut schema = Schema::new();
    schema
        .add_relation(
            Relation::new(
                "a",
                vec![Attribute::new("id", SqlType::Int), Attribute::new("v", SqlType::Double)],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
    schema
        .add_relation(
            Relation::new(
                "b",
                vec![Attribute::new("id", SqlType::Int), Attribute::new("w", SqlType::Int)],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();

    let mut d = Dataset::new();
    // Duplicate keys, a NULL key on each side, and an Int/Double pair that
    // is equal under SQL comparison (v = 2 vs w = 2).
    d.push("a", vec![Value::Int(1), Value::Double(2.0)]);
    d.push("a", vec![Value::Int(1), Value::Double(3.0)]);
    d.push("a", vec![Value::Null, Value::Double(4.0)]);
    d.push("a", vec![Value::Int(2), Value::Double(2.0)]);
    d.push("b", vec![Value::Int(1), Value::Int(2)]);
    d.push("b", vec![Value::Int(1), Value::Int(5)]);
    d.push("b", vec![Value::Null, Value::Int(6)]);
    d.push("b", vec![Value::Int(3), Value::Int(7)]);

    for sql in [
        "SELECT * FROM a, b WHERE a.id = b.id",
        "SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id",
        "SELECT * FROM a RIGHT OUTER JOIN b ON a.id = b.id",
        "SELECT * FROM a FULL OUTER JOIN b ON a.id = b.id",
        // Mixed-type key: Double column against Int column.
        "SELECT * FROM a, b WHERE a.v = b.w",
        // Residual inequality alongside the hash key.
        "SELECT * FROM a, b WHERE a.id = b.id AND a.v < b.w",
        // No equality at all: the hash path must fall back per node.
        "SELECT * FROM a, b WHERE a.v < b.w",
        // Membership over duplicate and NULL keys: one NULL member must
        // turn NOT IN into the empty result on both strategies.
        "SELECT * FROM a WHERE a.id IN (SELECT id FROM b WHERE b.w > 2)",
        "SELECT * FROM a WHERE a.id NOT IN (SELECT id FROM b WHERE b.w > 2)",
        // Correlated quantification, hash-indexable and not.
        "SELECT * FROM a WHERE EXISTS (SELECT id FROM b WHERE b.id = a.id)",
        "SELECT * FROM a WHERE NOT EXISTS (SELECT id FROM b WHERE b.id = a.id AND b.w > 4)",
        "SELECT * FROM a WHERE a.id IN (SELECT id FROM b WHERE b.w > a.v)",
    ] {
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let h = execute_query_strategy(&q, &d, &schema, JoinStrategy::Hash).unwrap();
        let n = execute_query_strategy(&q, &d, &schema, JoinStrategy::NestedLoop).unwrap();
        assert_eq!(h.rows(), n.rows(), "`{sql}`");
    }
}

/// Random-schema fuzzing in the `tests/random_schemas.rs` mould: random
/// FK DAGs, random join queries, full mutant-space parity per dataset.
#[test]
fn random_schema_parity() {
    let mut rng = SplitMix64::new(0xDA7A_9057);
    for case in 0..6 {
        let n = 2 + rng.below(3);
        let extra: Vec<usize> = (0..n).map(|_| rng.below(3)).collect();
        let mut all_edges = Vec::new();
        for i in 1..n {
            for j in 0..i {
                all_edges.push((i, j));
            }
        }
        let fk_edges = rng.subset(&all_edges);

        let mut schema = Schema::new();
        for (i, extra) in extra.iter().enumerate() {
            let mut attrs = vec![Attribute::new("id", SqlType::Int)];
            for j in 0..n {
                if fk_edges.contains(&(i, j)) {
                    attrs.push(Attribute::new(format!("r{j}_id"), SqlType::Int));
                }
            }
            for k in 0..*extra {
                attrs.push(Attribute::new(format!("a{k}"), SqlType::Int));
            }
            schema
                .add_relation(Relation::new(format!("r{i}"), attrs, &["id"]).unwrap())
                .unwrap();
        }
        for (i, j) in &fk_edges {
            let from_col = format!("r{j}_id");
            schema
                .add_foreign_key(&format!("r{i}"), &[&from_col], &format!("r{j}"), &["id"])
                .unwrap();
        }

        let mut conds: Vec<String> =
            fk_edges.iter().map(|(i, j)| format!("r{i}.r{j}_id = r{j}.id")).collect();
        let mut linked = vec![false; n];
        for (i, j) in &fk_edges {
            linked[*i] = true;
            linked[*j] = true;
        }
        for (i, is_linked) in linked.iter().enumerate().skip(1) {
            if !is_linked {
                conds.push(format!("r{i}.id = r0.id"));
            }
        }
        if conds.is_empty() {
            conds.push("r0.id = r1.id".into());
        }
        let from: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
        let sql = format!("SELECT * FROM {} WHERE {}", from.join(", "), conds.join(" AND "));
        eprintln!("case {case}: {sql}");
        assert_parity(&schema, &sql);
    }
}
