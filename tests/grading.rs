//! Tests for the grading workflow (`XData::grade`) — the use case the
//! X-Data system was deployed for at IIT Bombay.

use xdata::catalog::university;
use xdata::{Grade, XData};

fn xd(fks: usize) -> XData {
    XData::new(university::schema_with_fk_count(fks))
}

const REFERENCE: &str =
    "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id";

#[test]
fn correct_rewrites_pass() {
    let x = xd(1);
    for candidate in [
        REFERENCE,
        // Commuted FROM order.
        "SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id",
        // Explicit JOIN syntax.
        "SELECT i.name, t.course_id FROM instructor i JOIN teaches t ON i.id = t.id",
        // Right outer join that the FK makes equivalent.
        "SELECT i.name, t.course_id FROM instructor i RIGHT OUTER JOIN teaches t \
         ON i.id = t.id",
    ] {
        let g = x.grade(REFERENCE, candidate).unwrap();
        assert!(g.passed(), "should pass: {candidate}");
    }
}

#[test]
fn wrong_join_type_fails_with_witness() {
    let x = xd(1);
    let g = x
        .grade(
            REFERENCE,
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
        )
        .unwrap();
    match g {
        Grade::Different { dataset, expected, got, .. } => {
            assert_ne!(expected, got);
            // The witness contains the non-teaching instructor.
            let instructors = dataset.relation("instructor").unwrap();
            let teaches = dataset.relation("teaches").unwrap_or(&[]);
            assert!(instructors.iter().any(|i| !teaches.iter().any(|t| t[0] == i[0])));
        }
        g => panic!("expected Different, got {g:?}"),
    }
}

#[test]
fn wrong_comparison_fails() {
    let x = xd(0);
    let reference = "SELECT id FROM instructor WHERE salary >= 50000";
    let g = x.grade(reference, "SELECT id FROM instructor WHERE salary > 50000").unwrap();
    assert!(!g.passed(), "boundary dataset must separate >= from >");
}

#[test]
fn wrong_aggregate_fails() {
    let x = xd(0);
    let reference = "SELECT dept_id, COUNT(salary) FROM instructor GROUP BY dept_id";
    let g = x
        .grade(reference, "SELECT dept_id, COUNT(DISTINCT salary) FROM instructor GROUP BY dept_id")
        .unwrap();
    assert!(!g.passed(), "duplicate-bearing dataset must separate COUNT from COUNT DISTINCT");
}

#[test]
fn different_arity_fails_on_original_dataset() {
    // The non-empty original-query dataset exposes any projection-arity
    // difference immediately. (Same-arity projection swaps are not in the
    // paper's mutation space and may evade the suite when values coincide.)
    let x = xd(1);
    let g = x
        .grade(REFERENCE, "SELECT i.name FROM instructor i, teaches t WHERE i.id = t.id")
        .unwrap();
    assert!(!g.passed());
}

#[test]
fn unparsable_candidate_is_an_error() {
    let x = xd(1);
    assert!(x.grade(REFERENCE, "SELECT FROM WHERE").is_err());
}

// ---- batch grading (`XData::grade_batch`) ----------------------------

use xdata::core::CandidateOutcome;
use xdata::engine::JoinStrategy;

/// A realistic small batch: duplicates, rewrites, wrong answers, and a
/// parse error — exercising dedup, partial credit and error attribution.
fn batch() -> Vec<String> {
    [
        REFERENCE,
        // Commuted FROM order — same equivalence class as the reference.
        "SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id",
        // Explicit JOIN syntax — also collapses into the reference class.
        "SELECT i.name, t.course_id FROM instructor i JOIN teaches t ON i.id = t.id",
        // Wrong join type: fails with partial credit.
        "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id",
        // Exact duplicate of the wrong answer: dedup hit, shared verdict.
        "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id",
        // Doesn't parse: per-candidate Invalid, not a batch error.
        "SELECT FROM WHERE",
    ]
    .map(str::to_string)
    .to_vec()
}

#[test]
fn batch_dedups_and_attributes_errors() {
    let report = xd(1).grade_batch(REFERENCE, &batch()).unwrap();
    assert_eq!(report.verdicts.len(), 6);
    // reference + 2 rewrites = 1 class; wrong join = 1 class (+1 dup).
    assert_eq!(report.classes, 2, "report: {}", report.render());
    assert_eq!(report.dedup_hits, 3, "report: {}", report.render());
    let v = &report.verdicts;
    assert_eq!(v[0].class, v[1].class, "commuted FROM shares the reference class");
    assert_eq!(v[0].class, v[2].class, "explicit JOIN shares the reference class");
    assert_eq!(v[3].class, v[4].class, "duplicate wrong answers share a class");
    assert_ne!(v[0].class, v[3].class);
    assert!(!v[0].dedup_hit && v[1].dedup_hit && v[2].dedup_hit);
    assert!(!v[3].dedup_hit && v[4].dedup_hit);

    assert_eq!(v[0].outcome, CandidateOutcome::Pass);
    match &v[3].outcome {
        CandidateOutcome::Fail { killed_by, agreeing, first_dataset } => {
            assert!(killed_by.iter().any(|&k| k));
            assert!(*agreeing < report.datasets);
            assert!(killed_by[*first_dataset]);
            // Partial credit strictly between 0 and 1: the wrong join
            // still agrees on datasets where every instructor teaches.
            let score = v[3].outcome.score(report.datasets).unwrap();
            assert!(score > 0.0 && score < 1.0, "score {score}");
        }
        o => panic!("expected Fail, got {o:?}"),
    }
    assert_eq!(v[3].outcome, v[4].outcome, "dedup shares the verdict");
    assert!(matches!(v[5].outcome, CandidateOutcome::Invalid { .. }));
    assert_eq!(v[5].class, None);
}

/// Batch verdicts must agree with the single-candidate path.
#[test]
fn batch_agrees_with_single_grade() {
    let x = xd(1);
    let candidates = batch();
    let report = x.grade_batch(REFERENCE, &candidates).unwrap();
    for (v, sql) in report.verdicts.iter().zip(&candidates) {
        match &v.outcome {
            CandidateOutcome::Pass => {
                assert!(x.grade(REFERENCE, sql).unwrap().passed(), "{sql}");
            }
            CandidateOutcome::Fail { .. } => {
                assert!(!x.grade(REFERENCE, sql).unwrap().passed(), "{sql}");
            }
            CandidateOutcome::Invalid { .. } => assert!(x.grade(REFERENCE, sql).is_err()),
            o => panic!("unexpected outcome {o:?} for {sql}"),
        }
    }
}

/// The rendered verdict report is byte-identical for every `--jobs` value
/// and both join strategies.
#[test]
fn batch_report_deterministic_across_jobs_and_strategies() {
    let candidates = batch();
    let baseline = xd(1).with_jobs(1).grade_batch(REFERENCE, &candidates).unwrap().render();
    assert!(baseline.contains("PASS") && baseline.contains("FAIL"), "{baseline}");
    for jobs in [2, 8] {
        let r = xd(1).with_jobs(jobs).grade_batch(REFERENCE, &candidates).unwrap().render();
        assert_eq!(baseline, r, "jobs={jobs}");
    }
    for jobs in [1, 2, 8] {
        let r = xd(1)
            .with_jobs(jobs)
            .with_join_strategy(JoinStrategy::NestedLoop)
            .grade_batch(REFERENCE, &candidates)
            .unwrap()
            .render();
        assert_eq!(baseline, r, "nested-loop jobs={jobs}");
    }
}

/// A pre-cancelled token grades nothing but still returns a well-formed
/// report: every evaluable candidate Unevaluated, never Pass/Fail.
#[test]
fn cancelled_batch_marks_unevaluated() {
    use xdata::core::{grade_batch_cancellable, CancelToken, GenOptions};
    let schema = university::schema_with_fk_count(1);
    let domains = xdata::catalog::DomainCatalog::defaults(&schema);
    let token = CancelToken::new();
    token.cancel();
    for jobs in [1, 4] {
        let opts = GenOptions { jobs, ..GenOptions::default() };
        let report = grade_batch_cancellable(
            REFERENCE,
            &batch(),
            &schema,
            &domains,
            &opts,
            JoinStrategy::Hash,
            &token,
        )
        .unwrap();
        assert!(report.partial, "jobs={jobs}");
        for v in &report.verdicts {
            assert!(
                matches!(
                    v.outcome,
                    CandidateOutcome::Unevaluated | CandidateOutcome::Invalid { .. }
                ),
                "jobs={jobs}: {:?}",
                v.outcome
            );
        }
    }
}
