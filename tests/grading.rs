//! Tests for the grading workflow (`XData::grade`) — the use case the
//! X-Data system was deployed for at IIT Bombay.

use xdata::catalog::university;
use xdata::{Grade, XData};

fn xd(fks: usize) -> XData {
    XData::new(university::schema_with_fk_count(fks))
}

const REFERENCE: &str =
    "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id";

#[test]
fn correct_rewrites_pass() {
    let x = xd(1);
    for candidate in [
        REFERENCE,
        // Commuted FROM order.
        "SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id",
        // Explicit JOIN syntax.
        "SELECT i.name, t.course_id FROM instructor i JOIN teaches t ON i.id = t.id",
        // Right outer join that the FK makes equivalent.
        "SELECT i.name, t.course_id FROM instructor i RIGHT OUTER JOIN teaches t \
         ON i.id = t.id",
    ] {
        let g = x.grade(REFERENCE, candidate).unwrap();
        assert!(g.passed(), "should pass: {candidate}");
    }
}

#[test]
fn wrong_join_type_fails_with_witness() {
    let x = xd(1);
    let g = x
        .grade(
            REFERENCE,
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
        )
        .unwrap();
    match g {
        Grade::Different { dataset, expected, got, .. } => {
            assert_ne!(expected, got);
            // The witness contains the non-teaching instructor.
            let instructors = dataset.relation("instructor").unwrap();
            let teaches = dataset.relation("teaches").unwrap_or(&[]);
            assert!(instructors.iter().any(|i| !teaches.iter().any(|t| t[0] == i[0])));
        }
        g => panic!("expected Different, got {g:?}"),
    }
}

#[test]
fn wrong_comparison_fails() {
    let x = xd(0);
    let reference = "SELECT id FROM instructor WHERE salary >= 50000";
    let g = x.grade(reference, "SELECT id FROM instructor WHERE salary > 50000").unwrap();
    assert!(!g.passed(), "boundary dataset must separate >= from >");
}

#[test]
fn wrong_aggregate_fails() {
    let x = xd(0);
    let reference = "SELECT dept_id, COUNT(salary) FROM instructor GROUP BY dept_id";
    let g = x
        .grade(reference, "SELECT dept_id, COUNT(DISTINCT salary) FROM instructor GROUP BY dept_id")
        .unwrap();
    assert!(!g.passed(), "duplicate-bearing dataset must separate COUNT from COUNT DISTINCT");
}

#[test]
fn different_arity_fails_on_original_dataset() {
    // The non-empty original-query dataset exposes any projection-arity
    // difference immediately. (Same-arity projection swaps are not in the
    // paper's mutation space and may evade the suite when values coincide.)
    let x = xd(1);
    let g = x
        .grade(REFERENCE, "SELECT i.name FROM instructor i, teaches t WHERE i.id = t.id")
        .unwrap();
    assert!(!g.passed());
}

#[test]
fn unparsable_candidate_is_an_error() {
    let x = xd(1);
    assert!(x.grade(REFERENCE, "SELECT FROM WHERE").is_err());
}
