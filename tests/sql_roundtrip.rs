//! Round-trip: generated datasets → INSERT SQL → parsed back → identical
//! instance. This is the deployment path of the grading tool (datasets are
//! loaded into a real DBMS).

use xdata::catalog::university;
use xdata::sql::parse_script;
use xdata::XData;

#[test]
fn generated_suites_roundtrip_through_sql() {
    let schema = university::schema_with_fk_count(2);
    let xdata = XData::new(schema.clone());
    let run = xdata
        .generate_for(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 100",
        )
        .unwrap();
    // A DDL script for the relations involved.
    let ddl = "CREATE TABLE instructor (id INT PRIMARY KEY, name VARCHAR(30),
                   dept_id INT, salary INT);
               CREATE TABLE teaches (id INT, course_id INT, sec_id INT, year INT,
                   PRIMARY KEY (id, course_id, sec_id, year));
               CREATE TABLE course (course_id INT PRIMARY KEY, title VARCHAR(30),
                   dept_id INT, credits INT);";
    for d in &run.suite.datasets {
        let script = format!("{ddl}\n{}", d.dataset.to_insert_sql());
        let (_, parsed) = parse_script(&script)
            .unwrap_or_else(|e| panic!("roundtrip parse failed for `{}`:\n{}", d.label, e.render(&script)));
        for rel in ["instructor", "teaches", "course"] {
            let orig: Vec<_> = d.dataset.relation(rel).unwrap_or(&[]).to_vec();
            let back: Vec<_> = parsed.relation(rel).unwrap_or(&[]).to_vec();
            let mut a = orig.clone();
            let mut b = back.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "relation {rel} of `{}` did not roundtrip", d.label);
        }
    }
}

#[test]
fn sample_data_roundtrips() {
    let d = university::sample_data(5);
    let sql = d.to_insert_sql();
    // Parse inserts only (schemaless script is fine: build a tiny schema
    // covering the tables).
    let ddl = "CREATE TABLE department (dept_id INT PRIMARY KEY, dept_name VARCHAR(20),
                   building VARCHAR(20), budget INT);
               CREATE TABLE instructor (id INT PRIMARY KEY, name VARCHAR(30),
                   dept_id INT, salary INT);
               CREATE TABLE course (course_id INT PRIMARY KEY, title VARCHAR(30),
                   dept_id INT, credits INT);
               CREATE TABLE teaches (id INT, course_id INT, sec_id INT, year INT,
                   PRIMARY KEY (id, course_id, sec_id, year));
               CREATE TABLE student (sid INT PRIMARY KEY, name VARCHAR(30),
                   dept_id INT, tot_cred INT);
               CREATE TABLE takes (sid INT, course_id INT, sec_id INT, year INT,
                   grade INT, PRIMARY KEY (sid, course_id, sec_id, year));
               CREATE TABLE advisor (s_id INT PRIMARY KEY, i_id INT);
               CREATE TABLE section (course_id INT, sec_id INT, year INT,
                   building VARCHAR(20), PRIMARY KEY (course_id, sec_id, year));";
    let (_, parsed) = parse_script(&format!("{ddl}\n{sql}")).unwrap();
    assert_eq!(parsed.total_tuples(), d.total_tuples());
}
