//! End-to-end validation of the paper's central claim: the generated test
//! suite kills every non-equivalent mutant.
//!
//! For small queries we go further than the paper's manual check (§VI-C,
//! "we manually verified that every mutation that was not killed was in
//! fact an equivalent mutation"): surviving mutants are checked for
//! equivalence *automatically* by exhaustive search over small legal
//! database instances.

use xdata::catalog::{university, Dataset, Value};
use xdata::engine::kill::execute_mutant;
use xdata::engine::execute_query;
use xdata::relalg::mutation::MutationOptions;
use xdata::relalg::{Mutant, NormQuery};
use xdata::XData;

/// Exhaustively search tiny legal instances for one that kills `m`.
/// Returns true if a killer exists (mutant is NOT equivalent).
fn killable_by_exhaustion(
    q: &NormQuery,
    m: &Mutant,
    schema: &xdata::catalog::Schema,
) -> bool {
    // Values 0..=2, up to 2 tuples per relation; only attributes used by
    // the query vary, the rest are fixed to 0 (they cannot affect results
    // except through SELECT *, where constant columns cancel out between
    // original and mutant).
    let bases: Vec<&str> = q.occurrences.iter().map(|o| o.base.as_str()).collect();
    let mut rels: Vec<&str> = bases.clone();
    rels.sort();
    rels.dedup();
    let used = q.used_attrs();
    // Per relation: which columns vary.
    let varying: Vec<(usize, Vec<usize>)> = rels
        .iter()
        .map(|r| {
            let rel = schema.relation(r).expect("relation");
            let mut cols: Vec<usize> = used
                .iter()
                .filter(|a| q.occurrences[a.occ].base == *r)
                .map(|a| a.col)
                .chain(rel.primary_key.iter().copied())
                .collect();
            cols.sort_unstable();
            cols.dedup();
            (rel.arity(), cols)
        })
        .collect();

    // Enumerate candidate tuples per relation: values 0..=2 on varying
    // columns. With ≤3 varying columns that's ≤27 tuples per relation.
    let candidates: Vec<Vec<Vec<Value>>> = varying
        .iter()
        .map(|(arity, cols)| {
            let mut tuples = vec![vec![Value::Int(0); *arity]];
            for &c in cols {
                let mut next = Vec::new();
                for t in &tuples {
                    for v in 0..=2i64 {
                        let mut t2 = t.clone();
                        t2[c] = Value::Int(v);
                        next.push(t2);
                    }
                }
                tuples = next;
                if tuples.len() > 200 {
                    tuples.truncate(200);
                }
            }
            tuples
        })
        .collect();

    // Enumerate instances: subsets of ≤2 candidate tuples per relation.
    // To bound the search, use a fixed pool of subsets per relation.
    let subsets: Vec<Vec<Vec<Vec<Value>>>> = candidates
        .iter()
        .map(|cands| {
            let mut subs: Vec<Vec<Vec<Value>>> = vec![vec![]];
            for t in cands {
                subs.push(vec![t.clone()]);
            }
            for (i, a) in cands.iter().enumerate() {
                for b in cands.iter().skip(i + 1) {
                    subs.push(vec![a.clone(), b.clone()]);
                }
            }
            subs
        })
        .collect();

    let mut idx = vec![0usize; rels.len()];
    loop {
        // Build instance.
        let mut db = Dataset::new();
        for (ri, r) in rels.iter().enumerate() {
            db.ensure_relation(r);
            for t in &subsets[ri][idx[ri]] {
                db.push(r, t.clone());
            }
        }
        if db.integrity_violations(schema).is_empty() {
            let orig = execute_query(q, &db, schema).expect("original executes");
            let mutd = execute_mutant(q, m, &db, schema).expect("mutant executes");
            if orig != mutd {
                return true;
            }
        }
        // Odometer.
        let mut i = 0;
        loop {
            if i == rels.len() {
                return false;
            }
            idx[i] += 1;
            if idx[i] < subsets[i].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

/// The core completeness check: generate, evaluate, and prove every
/// surviving mutant equivalent (within the bounded search).
fn assert_complete(sql: &str, fks: usize) {
    let schema = university::schema_with_fk_count(fks);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(sql, MutationOptions::default())
        .unwrap_or_else(|e| panic!("evaluate({sql}): {e}"));
    assert!(
        !run.suite.datasets.is_empty(),
        "no datasets generated for {sql}"
    );
    // Every dataset must be a legal instance.
    for d in &run.suite.datasets {
        let errs = d.dataset.integrity_violations(&schema);
        assert!(errs.is_empty(), "dataset `{}` illegal: {errs:?}", d.label);
    }
    let mutants: Vec<Mutant> = space.iter().collect();
    for mi in report.surviving() {
        let m = &mutants[mi];
        assert!(
            !killable_by_exhaustion(&run.query, m, &schema),
            "mutant survived but is killable: {} (query: {sql}, fks: {fks})",
            m.describe(&run.query)
        );
    }
}

#[test]
fn intro_example_complete_no_fk() {
    assert_complete("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 0);
}

#[test]
fn intro_example_complete_with_fk() {
    assert_complete("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 1);
}

#[test]
fn three_way_chain_complete_no_fk() {
    assert_complete(
        "SELECT * FROM instructor i, teaches t, course c \
         WHERE i.id = t.id AND t.course_id = c.course_id",
        0,
    );
}

#[test]
fn three_way_chain_complete_with_fks() {
    assert_complete(
        "SELECT * FROM instructor i, teaches t, course c \
         WHERE i.id = t.id AND t.course_id = c.course_id",
        2,
    );
}

#[test]
fn selection_comparison_complete() {
    assert_complete("SELECT id FROM instructor WHERE salary > 5", 0);
}

#[test]
fn join_plus_selection_complete() {
    assert_complete(
        "SELECT i.id FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 5",
        1,
    );
}

#[test]
fn nonequi_join_complete() {
    assert_complete(
        "SELECT t.id FROM teaches t, course c WHERE t.course_id = c.course_id + 1",
        0,
    );
}

#[test]
fn outer_join_query_complete() {
    assert_complete(
        "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
         ON i.id = t.id",
        0,
    );
}

#[test]
fn aggregate_mutants_killed() {
    // Aggregates: check the suite kills all aggregate mutants (the class
    // where the paper proves completeness for single-relation inputs).
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id",
            MutationOptions::default(),
        )
        .unwrap();
    let mutants: Vec<Mutant> = space.iter().collect();
    let surviving_aggs: Vec<String> = report
        .surviving()
        .map(|i| &mutants[i])
        .filter(|m| matches!(m, Mutant::Agg(_)))
        .map(|m| m.describe(&run.query))
        .collect();
    assert!(surviving_aggs.is_empty(), "surviving aggregate mutants: {surviving_aggs:?}");
}

#[test]
fn count_distinct_mutants_killed() {
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema.clone());
    let (run, space, report) = xdata
        .evaluate(
            "SELECT dept_id, COUNT(salary) FROM instructor GROUP BY dept_id",
            MutationOptions::default(),
        )
        .unwrap();
    let mutants: Vec<Mutant> = space.iter().collect();
    for mi in report.surviving() {
        if let Mutant::Agg(a) = &mutants[mi] {
            panic!("surviving aggregate mutant: {:?}", a);
        }
    }
    let _ = run;
}

#[test]
fn suite_size_linear_in_query_size() {
    // The number of datasets grows linearly with joins (the paper's
    // headline complexity result), while the mutant space explodes.
    let schema = university::schema_with_fk_count(0);
    let xdata = XData::new(schema);
    let sqls = [
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        "SELECT * FROM instructor i, teaches t, course c \
         WHERE i.id = t.id AND t.course_id = c.course_id",
        "SELECT * FROM instructor i, teaches t, course c, takes k \
         WHERE i.id = t.id AND t.course_id = c.course_id AND c.course_id = k.course_id",
        "SELECT * FROM instructor i, teaches t, course c, takes k, student s \
         WHERE i.id = t.id AND t.course_id = c.course_id AND c.course_id = k.course_id \
         AND k.sid = s.sid",
    ];
    let mut dataset_counts = Vec::new();
    let mut mutant_counts = Vec::new();
    for sql in sqls {
        let run = xdata.generate_for(sql).unwrap();
        dataset_counts.push(run.suite.datasets.len());
        mutant_counts.push(run.mutants(MutationOptions::default()).len());
    }
    // Linear-ish growth in datasets: increments bounded by a constant.
    for w in dataset_counts.windows(2) {
        assert!(w[1] >= w[0], "{dataset_counts:?}");
        assert!(w[1] - w[0] <= 4, "dataset growth not linear: {dataset_counts:?}");
    }
    // Mutant space grows much faster than the suite.
    assert!(
        *mutant_counts.last().unwrap() > 10 * *dataset_counts.last().unwrap(),
        "mutants {mutant_counts:?} vs datasets {dataset_counts:?}"
    );
}
