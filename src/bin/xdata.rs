//! `xdata` — command-line front end for the X-Data test-data generator.
//!
//! ```text
//! xdata generate --schema schema.sql --query "SELECT ..." [options]
//! xdata evaluate --schema schema.sql --query "SELECT ..." [options]
//! xdata mutants  --schema schema.sql --query "SELECT ..." [options]
//! xdata grade    --schema schema.sql --query "<reference>" --candidate "<submission>"
//! xdata grade    --schema schema.sql --query "<reference>" --candidates FILE
//! xdata serve    [--listen ADDR] [--serve-workers N] [--max-line-bytes N] [--max-deadline-ms N]
//! xdata trace    trace.json [--top K] [--validate] [--folded FILE]
//!
//! options:
//!   --schema FILE     SQL script: CREATE TABLE (+ optional INSERT INTO
//!                     statements forming the input database of §VI-A)
//!   --query SQL       the query under test (or --query-file FILE)
//!   --mode MODE       unfold (default) | lazy     (§VI-B)
//!   --jobs N          worker threads for generation and kill checking
//!                     (default 1; 0 = one per core; output is identical
//!                     for every value)
//!   --timeout-ms N    wall-clock budget for the whole run; on expiry the
//!                     suite completes partially (unfinished targets are
//!                     reported as timed-out skips, never dropped)
//!   --target-timeout-ms N
//!                     wall-clock budget per solve target; a target that
//!                     outlives it is skipped while the rest proceed
//!   --decision-limit N
//!                     solver decision budget per target (exhaustion is a
//!                     budget skip, not an error)
//!   --search-core C   session (default): incremental CDCL, one warm engine
//!                     per skeleton shape solving targets under assumptions;
//!                     cdcl: a fresh CDCL solve per target; dpll: the
//!                     chronological baseline core
//!   --candidates FILE batch grading: one candidate query per line (blank
//!                     lines and # comments skipped); the reference suite
//!                     is generated once, structurally equivalent
//!                     submissions execute once, and each candidate gets a
//!                     PASS/FAIL/INVALID verdict with a partial-credit
//!                     score and killed-by-dataset vector
//!   --join-strategy S hash (default): build a hash index on the smaller
//!                     side of each equality join; nested-loop: the
//!                     quadratic differential baseline (identical results)
//!   --use-input-db    restrict generated tuples to the script's INSERTs
//!   --minimize        prune datasets that add no kills (greedy set cover)
//!   --no-full-outer   exclude mutations to FULL OUTER JOIN (paper's eval)
//!   --metrics-json F  write a metrics report (spans, counters, histograms)
//!                     to F; everything except the timings_ns section is
//!                     byte-identical across --jobs values
//!   --trace           print `[xdata-trace tN]` span-close lines to stderr
//!   --trace-out F     journal the run's event timeline and write it to F
//!                     as Chrome trace-event JSON (open in Perfetto or
//!                     chrome://tracing); analyze offline with `xdata trace`
//!
//! trace options:
//!   --top K           how many slowest solves to list (default 10)
//!   --validate        structurally validate the file first (balanced
//!                     begin/end, monotonic per-thread timestamps, flow
//!                     starts before steps/finishes)
//!   --folded FILE     also export folded stacks for flamegraph tooling
//! ```

use std::process::ExitCode;

use xdata::catalog::DomainCatalog;
use xdata::core::minimize_suite;
use xdata::engine::JoinStrategy;
use xdata::relalg::mutation::MutationOptions;
use xdata::solver::{Mode, SearchCore};
use xdata::XData;

/// The `--help` text. `scripts/ci.sh` diffs this output against the
/// committed snapshot `scripts/cli_help.txt`, so a flag added to
/// `parse_args` without a line here (or vice versa) fails CI.
const USAGE: &str = "\
xdata — constraint-based test-data generation for killing SQL mutants

usage:
  xdata generate --schema FILE --query SQL [options]
  xdata evaluate --schema FILE --query SQL [options]
  xdata mutants  --schema FILE --query SQL [options]
  xdata grade    --schema FILE --query SQL --candidate SQL [options]
  xdata grade    --schema FILE --query SQL --candidates FILE [options]
  xdata serve    [--listen ADDR] [serve options]
  xdata trace    FILE [--top K] [--validate] [--folded FILE]
  xdata help     (or --help / -h)

options:
  --schema FILE          SQL script: CREATE TABLE + optional INSERT INTO
  --query SQL            the query under test
  --query-file FILE      read --query text from FILE
  --mode MODE            unfold (default) | lazy
  --jobs N               worker threads (default 1; 0 = one per core)
  --timeout-ms N         wall-clock budget for the whole run
  --target-timeout-ms N  wall-clock budget per solve target
  --decision-limit N     solver decision budget per target
  --search-core C        session (default) | cdcl | dpll
  --candidate SQL        single-candidate grading
  --candidates FILE      batch grading, one candidate query per line
  --join-strategy S      hash (default) | nested-loop
  --use-input-db         restrict generated tuples to the script's INSERTs
  --minimize             prune datasets that add no kills (generate only)
  --no-full-outer        exclude mutations to FULL OUTER JOIN
  --metrics-json FILE    write the metrics report JSON to FILE
  --trace                print span-close lines to stderr
  --trace-out FILE       write a Chrome trace-event JSON timeline to FILE

serve options:
  --listen ADDR          bind address (default 127.0.0.1:7878; port 0 picks
                         a free port — the bound address is printed)
  --serve-workers N      connection worker threads (default 4)
  --max-line-bytes N     per-frame size cap (default 1048576)
  --max-deadline-ms N    clamp every request's deadline to N ms

trace options:
  --top K                how many slowest solves to list (default 10)
  --validate             structurally validate the trace file first
  --folded FILE          also export folded stacks for flamegraph tooling
";

struct Args {
    command: String,
    schema_path: Option<String>,
    query: Option<String>,
    candidate: Option<String>,
    candidates_file: Option<String>,
    join_strategy: JoinStrategy,
    mode: Mode,
    jobs: usize,
    timeout_ms: Option<u64>,
    target_timeout_ms: Option<u64>,
    decision_limit: Option<u64>,
    search_core: SearchCore,
    incremental: bool,
    use_input_db: bool,
    minimize: bool,
    include_full: bool,
    metrics_json: Option<String>,
    trace: bool,
    trace_out: Option<String>,
    // `xdata trace` analysis options.
    trace_file: Option<String>,
    top: usize,
    validate: bool,
    folded: Option<String>,
    // `xdata serve` daemon options.
    listen: String,
    serve_workers: usize,
    max_line_bytes: usize,
    max_deadline_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        schema_path: None,
        query: None,
        candidate: None,
        candidates_file: None,
        join_strategy: JoinStrategy::default(),
        mode: Mode::Unfold,
        jobs: 1,
        timeout_ms: None,
        target_timeout_ms: None,
        decision_limit: None,
        search_core: SearchCore::Cdcl,
        incremental: true,
        use_input_db: false,
        minimize: false,
        include_full: true,
        metrics_json: None,
        trace: false,
        trace_out: None,
        trace_file: None,
        top: 10,
        validate: false,
        folded: None,
        listen: "127.0.0.1:7878".to_string(),
        serve_workers: 4,
        max_line_bytes: xdata::client::protocol::MIN_MAX_FRAME_BYTES,
        max_deadline_ms: None,
    };
    let mut it = std::env::args().skip(1);
    args.command =
        it.next().ok_or("missing command (generate|evaluate|mutants|grade|serve|trace)")?;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schema" => args.schema_path = Some(it.next().ok_or("--schema needs a file")?),
            "--query" => args.query = Some(it.next().ok_or("--query needs SQL text")?),
            "--query-file" => {
                let p = it.next().ok_or("--query-file needs a file")?;
                let text =
                    std::fs::read_to_string(&p).map_err(|e| format!("reading {p}: {e}"))?;
                args.query = Some(text);
            }
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("unfold") => Mode::Unfold,
                    Some("lazy") => Mode::Lazy,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a thread count")?;
                args.jobs = n.parse().map_err(|_| format!("--jobs: invalid count `{n}`"))?;
            }
            "--timeout-ms" => {
                let n = it.next().ok_or("--timeout-ms needs a millisecond count")?;
                args.timeout_ms =
                    Some(n.parse().map_err(|_| format!("--timeout-ms: invalid count `{n}`"))?);
            }
            "--target-timeout-ms" => {
                let n = it.next().ok_or("--target-timeout-ms needs a millisecond count")?;
                args.target_timeout_ms = Some(
                    n.parse().map_err(|_| format!("--target-timeout-ms: invalid count `{n}`"))?,
                );
            }
            "--decision-limit" => {
                let n = it.next().ok_or("--decision-limit needs a decision count")?;
                args.decision_limit =
                    Some(n.parse().map_err(|_| format!("--decision-limit: invalid count `{n}`"))?);
            }
            "--search-core" => {
                (args.search_core, args.incremental) = match it.next().as_deref() {
                    Some("session") => (SearchCore::Cdcl, true),
                    Some("cdcl") => (SearchCore::Cdcl, false),
                    Some("dpll") => (SearchCore::Dpll, false),
                    other => return Err(format!("unknown search core {other:?}")),
                }
            }
            "--candidate" => args.candidate = Some(it.next().ok_or("--candidate needs SQL")?),
            "--candidates" => {
                args.candidates_file = Some(it.next().ok_or("--candidates needs a file")?)
            }
            "--join-strategy" => {
                args.join_strategy = match it.next().as_deref() {
                    Some("hash") => JoinStrategy::Hash,
                    Some("nested-loop") => JoinStrategy::NestedLoop,
                    other => return Err(format!("unknown join strategy {other:?}")),
                }
            }
            "--use-input-db" => args.use_input_db = true,
            "--minimize" => args.minimize = true,
            "--no-full-outer" => args.include_full = false,
            "--metrics-json" => {
                args.metrics_json = Some(it.next().ok_or("--metrics-json needs a file")?)
            }
            "--trace" => args.trace = true,
            "--trace-out" => args.trace_out = Some(it.next().ok_or("--trace-out needs a file")?),
            "--top" => {
                let n = it.next().ok_or("--top needs a count")?;
                args.top = n.parse().map_err(|_| format!("--top: invalid count `{n}`"))?;
            }
            "--validate" => args.validate = true,
            "--folded" => args.folded = Some(it.next().ok_or("--folded needs a file")?),
            "--listen" => args.listen = it.next().ok_or("--listen needs HOST:PORT")?,
            "--serve-workers" => {
                let n = it.next().ok_or("--serve-workers needs a thread count")?;
                args.serve_workers =
                    n.parse().map_err(|_| format!("--serve-workers: invalid count `{n}`"))?;
            }
            "--max-line-bytes" => {
                let n = it.next().ok_or("--max-line-bytes needs a byte count")?;
                args.max_line_bytes =
                    n.parse().map_err(|_| format!("--max-line-bytes: invalid count `{n}`"))?;
            }
            "--max-deadline-ms" => {
                let n = it.next().ok_or("--max-deadline-ms needs a millisecond count")?;
                args.max_deadline_ms =
                    Some(n.parse().map_err(|_| format!("--max-deadline-ms: invalid count `{n}`"))?);
            }
            other if args.command == "trace" && !other.starts_with("--") => {
                if args.trace_file.is_some() {
                    return Err(format!("trace takes one trace file, got a second: `{other}`"));
                }
                args.trace_file = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

/// Feature flags this binary was compiled with, for artifact provenance.
fn active_features() -> Vec<&'static str> {
    let mut f = Vec::new();
    if cfg!(feature = "chaos") {
        f.push("chaos");
    }
    f
}

fn run() -> Result<(), String> {
    if std::env::args().skip(1).any(|a| a == "--help" || a == "-h")
        || std::env::args().nth(1).as_deref() == Some("help")
    {
        print!("{USAGE}");
        return Ok(());
    }
    let args = parse_args()?;
    if args.command == "serve" {
        return serve_cmd(&args);
    }
    if args.command == "trace" {
        // Offline analysis of an existing trace file: no schema, no query,
        // no pipeline run.
        return trace_cmd(&args);
    }
    if args.metrics_json.is_some() {
        // Install the global recorder with the full canonical key set, so
        // the report schema is identical whatever phases the command runs.
        xdata_obs::install();
        xdata_obs::preseed();
    }
    if args.trace {
        xdata_obs::set_trace(true);
    }
    if args.trace_out.is_some() {
        xdata_obs::install_trace();
    }
    let result = dispatch(&args);
    if let Some(path) = &args.trace_out {
        if let Some(mut log) = xdata_obs::take_trace() {
            log.meta.insert("features".to_string(), active_features().join(","));
            std::fs::write(path, log.to_chrome_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    if let Some(path) = &args.metrics_json {
        if let Some(report) = xdata_obs::take_report() {
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    result
}

/// The `xdata serve` subcommand: run the persistent daemon until a wire
/// `shutdown` request (or a process signal) stops it.
fn serve_cmd(args: &Args) -> Result<(), String> {
    let config = xdata::serve::ServerConfig {
        listen: args.listen.clone(),
        workers: args.serve_workers,
        max_line_bytes: args.max_line_bytes,
        max_deadline_ms: args.max_deadline_ms,
    };
    let server = xdata::serve::Server::bind(config)
        .map_err(|e| format!("binding {}: {e}", args.listen))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Print the *resolved* address (relevant when --listen asked for port
    // 0) and flush eagerly so scripts can parse where to connect.
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.serve().map_err(|e| format!("serving on {addr}: {e}"))
}

/// Format nanoseconds as fixed-width milliseconds for aligned columns.
fn ms(ns: u64) -> String {
    format!("{:>10.3}ms", ns as f64 / 1e6)
}

/// The `xdata trace` subcommand: load a Chrome-trace JSON file written by
/// `--trace-out` and break it down offline.
fn trace_cmd(args: &Args) -> Result<(), String> {
    let path = args
        .trace_file
        .as_deref()
        .ok_or("usage: xdata trace <trace.json> [--top K] [--validate] [--folded FILE]")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if args.validate {
        let s = xdata_obs::validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "validated: {} events on {} threads, {} spans, {} flow events, metadata {}",
            s.events,
            s.threads,
            s.spans,
            s.flows,
            if s.has_metadata { "present" } else { "absent" }
        );
    }
    let log = xdata_obs::parse_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(out) = &args.folded {
        std::fs::write(out, log.to_folded()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("folded stacks written to {out}");
    }
    println!("trace: {path} ({} events)", log.events.len());
    if let (Some(sha), Some(rustc)) = (log.meta.get("git_sha"), log.meta.get("rustc")) {
        let features = log.meta.get("features").filter(|f| !f.is_empty());
        println!(
            "build: git {sha}, {rustc}{}",
            features.map(|f| format!(", features [{f}]")).unwrap_or_default()
        );
    }
    let a = log.analyze(args.top);

    // The sweep construction tiles the root envelope exactly, so the
    // segment sum always equals the root duration; assert rather than
    // silently printing numbers that disagree.
    let total: u64 = a.critical_path.iter().map(|s| s.dur_ns).sum();
    if total != a.root_dur_ns {
        return Err(format!(
            "critical path total {total}ns does not tile the root span ({}ns) — corrupt trace?",
            a.root_dur_ns
        ));
    }
    println!(
        "\ncritical path ({} segments, total {} = root span duration):",
        a.critical_path.len(),
        ms(total).trim_start()
    );
    for seg in &a.critical_path {
        let label = if seg.label.is_empty() { String::new() } else { format!(" — {}", seg.label) };
        println!("  {}  {}{label}", ms(seg.dur_ns), seg.path);
    }

    let breakdown = |title: &str, rows: &[(String, u64, u64)]| {
        println!("\n{title}:");
        if rows.is_empty() {
            println!("  (none)");
        }
        for (key, ns, n) in rows {
            println!("  {}  x{n:<4} {key}", ms(*ns));
        }
    };
    breakdown("per-target solve time", &a.per_target);
    breakdown("per-mutant-class evaluation time", &a.per_class);
    breakdown("turn-gate waits", &a.gate_wait);

    println!("\ntop {} slowest solves:", args.top);
    if a.slowest.is_empty() {
        println!("  (none)");
    }
    for s in &a.slowest {
        println!("  {}  t{} {}", ms(s.end_ns - s.start_ns), s.tid, s.label);
    }
    Ok(())
}

fn dispatch(args: &Args) -> Result<(), String> {
    // Reject a bad command before demanding --schema/--query, so the user
    // sees the command list rather than a missing-flag error.
    if !matches!(args.command.as_str(), "generate" | "evaluate" | "mutants" | "grade") {
        return Err(format!(
            "unknown command `{}` (generate|evaluate|mutants|grade|serve|trace)",
            args.command
        ));
    }
    let schema_path = args.schema_path.as_deref().ok_or("--schema is required")?;
    let script = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("reading {schema_path}: {e}"))?;
    let (schema, data) =
        xdata::sql::parse_script(&script).map_err(|e| e.render(&script))?;
    let sql = args.query.as_deref().ok_or("--query is required")?;

    let mut xd = XData::new(schema.clone())
        .with_mode(args.mode)
        .with_jobs(args.jobs)
        .with_search_core(args.search_core)
        .with_incremental(args.incremental)
        .with_join_strategy(args.join_strategy);
    if let Some(ms) = args.timeout_ms {
        xd = xd.with_deadline_ms(ms);
    }
    if let Some(ms) = args.target_timeout_ms {
        xd = xd.with_target_deadline_ms(ms);
    }
    if let Some(limit) = args.decision_limit {
        xd = xd.with_decision_limit(limit);
    }
    if args.use_input_db {
        if data.is_empty() {
            return Err("--use-input-db: the schema script has no INSERT statements".into());
        }
        xd = xd.with_input_db(data.clone());
    } else if !data.is_empty() {
        // Use the data's values as domains (the paper's default, §VI-C).
        xd = xd.with_domains(DomainCatalog::from_dataset(&schema, &data));
    }

    let mopts = MutationOptions { include_full: args.include_full, tree_limit: 20_000, ..Default::default() };

    match args.command.as_str() {
        "generate" => {
            let run = xd.generate_for(sql).map_err(|e| e.to_string())?;
            let suite = if args.minimize {
                let space = run.mutants(mopts);
                minimize_suite(&run.query, &run.suite, &space, &schema)
                    .map_err(|e| e.to_string())?
            } else {
                run.suite.clone()
            };
            print!("{suite}");
            Ok(())
        }
        "evaluate" => {
            let (run, space, report) =
                xd.evaluate(sql, mopts).map_err(|e| e.to_string())?;
            // The listing lives in xdata-serve so the wire protocol's
            // `evaluate` output and this terminal output cannot drift.
            print!("{}", xdata::serve::render_evaluate(&run.query, &run.suite, &space, &report));
            Ok(())
        }
        "mutants" => {
            let run = xd.generate_for(sql).map_err(|e| e.to_string())?;
            let space = run.mutants(mopts);
            println!("{} mutants ({} raw):", space.len(), space.raw_len());
            for m in space.iter() {
                println!("  {}", m.describe(&run.query));
            }
            Ok(())
        }
        "grade" => {
            if let Some(path) = &args.candidates_file {
                // Batch mode: one submission per line; the suite is
                // generated once and shared across the whole file.
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))?;
                let candidates: Vec<String> = text
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .map(str::to_string)
                    .collect();
                if candidates.is_empty() {
                    return Err(format!("{path}: no candidate queries (one per line)"));
                }
                let report = xd.grade_batch(sql, &candidates).map_err(|e| e.to_string())?;
                print!("{}", report.render());
                return Ok(());
            }
            let candidate =
                args.candidate.as_deref().ok_or("--candidate or --candidates is required")?;
            match xd.grade(sql, candidate).map_err(|e| e.to_string())? {
                xdata::Grade::AgreesOnSuite { datasets } => {
                    println!("PASS: candidate agrees with the reference on all {datasets} datasets");
                }
                xdata::Grade::Different { dataset_index, dataset, expected, got } => {
                    println!("FAIL: differs on dataset {dataset_index}:");
                    print!("{dataset}");
                    println!("expected result:\n{expected}");
                    println!("candidate result:\n{got}");
                }
            }
            Ok(())
        }
        // Bad names are rejected at the top of dispatch; this arm only
        // backstops a command added there but not matched here.
        other => Err(format!("unknown command `{other}` (generate|evaluate|mutants|grade|trace)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xdata: {e}");
            ExitCode::FAILURE
        }
    }
}
