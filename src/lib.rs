//! # X-Data: test-data generation for killing SQL mutants
//!
//! A Rust reproduction of *"Generating Test Data for Killing SQL Mutants: A
//! Constraint-based Approach"* (Shah, Sudarshan, Kajbaje, Patidar, Gupta,
//! Vira — the extended version of the ICDE 2010 X-Data paper).
//!
//! Given a schema and a query, X-Data generates a small *test suite* —
//! a handful of tiny datasets — such that every non-equivalent mutant of
//! the query (wrong join type in any equivalent join tree, wrong comparison
//! operator, wrong aggregate function) produces a different result from the
//! original query on at least one dataset.
//!
//! ```
//! use xdata::XData;
//!
//! let schema = xdata::catalog::university::schema();
//! let xdata = XData::new(schema);
//! let run = xdata
//!     .generate_for("SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
//!     .expect("query in the supported class");
//! assert!(!run.suite.datasets.is_empty());
//! for ds in &run.suite.datasets {
//!     println!("{}", ds.dataset);
//! }
//! ```
//!
//! # Pipeline
//!
//! A query flows **parse → normalize → mutate → constrain → solve →
//! kill**, each stage owned by one member crate (re-exported here):
//!
//! * [`sql`] — *parse*: lexer + recursive-descent parser for the paper's
//!   query class, plus `CREATE TABLE` DDL;
//! * [`catalog`] — schemata, SQL values with NULL/3VL, PK/FK constraints,
//!   attribute domains;
//! * [`relalg`] — *normalize* and *mutate*: equivalence classes of
//!   equi-joined attributes, enumeration of equivalent join trees, the
//!   three mutant generators with canonical-form dedup;
//! * [`core`] — *constrain*: the paper's Algorithms 1–4 plan one target
//!   per mutant group and encode it as constraints over tuple-array
//!   variables (PK functional dependencies, FK `∀∃`, query + kill
//!   conditions), then materialize models into datasets;
//! * [`solver`] — *solve*: a conflict-driven (CDCL-lite) search over
//!   integer difference logic — theory-explained conflicts, 1-UIP
//!   learning, backjumping, Luby restarts — standing in for the paper's
//!   CVC3;
//! * [`engine`] — *kill*: an in-memory bag-semantics executor runs the
//!   original and every mutant on each dataset and reports which dataset
//!   kills which mutant;
//! * [`obs`] — the zero-dependency tracing/metrics layer over the whole
//!   plan→solve→kill pipeline (`--metrics-json`, `--trace`).
//!
//! # Tuning generation
//!
//! [`XData`] builder methods cover the common knobs; the full set lives on
//! [`core::GenOptions`]:
//!
//! ```
//! use xdata::core::GenOptions;
//! use xdata::solver::{Mode, SearchCore};
//!
//! let opts = GenOptions { jobs: 4, ..GenOptions::default() };
//! assert_eq!(opts.mode, Mode::Unfold);       // §VI-B fast configuration
//! assert_eq!(opts.core, SearchCore::Cdcl);   // conflict-driven ground core
//! assert!(opts.decision_limit > 1_000_000);  // budget exhaustion ⇒ skip-with-reason
//! ```
//!
//! # Using the solver directly
//!
//! Constraint problems can be posed straight to the solver layer:
//!
//! ```
//! use xdata::solver::{Atom, Formula, Mode, Problem, RelOp, SolveOutcome, Term};
//!
//! let mut p = Problem::new();
//! let r = p.add_array("r", 1, 2); // one tuple with two fields
//! let (x, y) = (Term::field(r, 0, 0), Term::field(r, 0, 1));
//! p.assert(Formula::Atom(Atom::new(x, RelOp::Lt, y)));
//! p.assert(Formula::Atom(Atom::new(y, RelOp::Le, Term::Const(10))));
//! match p.solve(Mode::Unfold).0 {
//!     SolveOutcome::Sat(m) => assert!(m.get(r, 0, 0) < m.get(r, 0, 1)),
//!     other => panic!("expected a model, got {other:?}"),
//! }
//! ```

use std::fmt;

pub use xdata_catalog as catalog;
pub use xdata_client as client;
pub use xdata_core as core;
pub use xdata_engine as engine;
pub use xdata_obs as obs;
pub use xdata_relalg as relalg;
pub use xdata_serve as serve;
pub use xdata_solver as solver;
pub use xdata_sql as sql;

use xdata_catalog::{Dataset, DomainCatalog, Schema};
use xdata_core::{generate_cancellable, BatchGradeReport, FaultPlan, GenOptions, TestSuite};
use xdata_engine::kill::{kill_report_cancel, KillReport};
use xdata_engine::JoinStrategy;
use xdata_par::CancelToken;
use xdata_relalg::mutation::{mutation_space, MutationOptions};
use xdata_relalg::{normalize, MutationSpace, NormQuery};

/// Everything produced for one query.
#[derive(Debug, Clone)]
pub struct Run {
    pub query: NormQuery,
    pub suite: TestSuite,
}

impl Run {
    /// Enumerate the mutation space of the query.
    pub fn mutants(&self, opts: MutationOptions) -> MutationSpace {
        mutation_space(&self.query, opts)
    }
}

/// Top-level error.
#[derive(Debug)]
pub enum XDataError {
    Parse(xdata_sql::ParseError),
    RelAlg(xdata_relalg::RelAlgError),
    Gen(xdata_core::GenError),
    Engine(xdata_engine::EngineError),
}

impl fmt::Display for XDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XDataError::Parse(e) => write!(f, "{e}"),
            XDataError::RelAlg(e) => write!(f, "{e}"),
            XDataError::Gen(e) => write!(f, "{e}"),
            XDataError::Engine(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for XDataError {}

impl From<xdata_sql::ParseError> for XDataError {
    fn from(e: xdata_sql::ParseError) -> Self {
        XDataError::Parse(e)
    }
}
impl From<xdata_relalg::RelAlgError> for XDataError {
    fn from(e: xdata_relalg::RelAlgError) -> Self {
        XDataError::RelAlg(e)
    }
}
impl From<xdata_core::GenError> for XDataError {
    fn from(e: xdata_core::GenError) -> Self {
        XDataError::Gen(e)
    }
}
impl From<xdata_engine::EngineError> for XDataError {
    fn from(e: xdata_engine::EngineError) -> Self {
        XDataError::Engine(e)
    }
}
impl From<xdata_core::GradeError> for XDataError {
    fn from(e: xdata_core::GradeError) -> Self {
        match e {
            xdata_core::GradeError::Parse(e) => XDataError::Parse(e),
            xdata_core::GradeError::RelAlg(e) => XDataError::RelAlg(e),
            xdata_core::GradeError::Gen(e) => XDataError::Gen(e),
            xdata_core::GradeError::Engine(e) => XDataError::Engine(e),
        }
    }
}

/// The main entry point: a schema plus generation options.
#[derive(Debug, Clone)]
pub struct XData {
    schema: Schema,
    domains: DomainCatalog,
    options: GenOptions,
    strategy: JoinStrategy,
}

impl XData {
    /// Create a generator for `schema` with default domains and options.
    pub fn new(schema: Schema) -> Self {
        let domains = DomainCatalog::defaults(&schema);
        XData { schema, domains, options: GenOptions::default(), strategy: JoinStrategy::default() }
    }

    /// Parse a schema from `CREATE TABLE` statements.
    pub fn from_sql_schema(ddl: &str) -> Result<Self, XDataError> {
        Ok(Self::new(xdata_sql::parse_schema(ddl)?))
    }

    /// Draw generated values (and, where consistent, whole tuples) from an
    /// existing database (§VI-A).
    pub fn with_input_db(mut self, input: Dataset) -> Self {
        self.domains = DomainCatalog::from_dataset(&self.schema, &input);
        self.options.input_db = Some(input);
        self
    }

    /// Select the quantifier-handling mode (§VI-B).
    pub fn with_mode(mut self, mode: xdata_solver::Mode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Worker threads for generation and kill checking: `1` is sequential,
    /// `0` means one per available core. Output is identical for every
    /// value.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = jobs;
        self
    }

    /// Override attribute domains.
    pub fn with_domains(mut self, domains: DomainCatalog) -> Self {
        self.domains = domains;
        self
    }

    /// Wall-clock budget in milliseconds for the whole pipeline. When it
    /// expires, generation finishes *partially* (unfinished targets become
    /// [`core::SkipReason::Timeout`] skips) and [`XData::evaluate`] marks
    /// still-unverdicted mutants unevaluated rather than blocking.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.options.deadline_ms = Some(ms);
        self
    }

    /// Wall-clock budget in milliseconds per solve target; a target that
    /// outlives it is skipped with [`core::SkipReason::Timeout`] while the
    /// rest of the suite proceeds.
    pub fn with_target_deadline_ms(mut self, ms: u64) -> Self {
        self.options.per_target_deadline_ms = Some(ms);
        self
    }

    /// Decision budget per solve call (exhaustion ⇒
    /// [`core::SkipReason::Budget`] skip).
    pub fn with_decision_limit(mut self, limit: u64) -> Self {
        self.options.decision_limit = limit;
        self
    }

    /// Select the ground search core ([`solver::SearchCore::Cdcl`] is the
    /// default; [`solver::SearchCore::Dpll`] is the chronological
    /// baseline).
    pub fn with_search_core(mut self, core: xdata_solver::SearchCore) -> Self {
        self.options.core = core;
        self
    }

    /// Toggle incremental solving sessions (on by default): eligible
    /// targets share one warm CDCL engine per constraint-skeleton shape,
    /// solving under per-target assumptions instead of from scratch. See
    /// [`core::GenOptions::incremental`] for the eligibility rules.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.options.incremental = incremental;
        self
    }

    /// Install a deterministic fault-injection plan (the chaos harness).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.options.faults = faults;
        self
    }

    /// Select the physical join algorithm for grading executions
    /// ([`engine::JoinStrategy::Hash`] is the default;
    /// [`engine::JoinStrategy::NestedLoop`] is the differential baseline —
    /// both produce byte-identical results).
    pub fn with_join_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn options(&self) -> &GenOptions {
        &self.options
    }

    /// Parse, normalize and generate the test suite for `sql`.
    pub fn generate_for(&self, sql: &str) -> Result<Run, XDataError> {
        let cancel = CancelToken::for_deadline_ms(self.options.deadline_ms);
        self.generate_cancellable(sql, &cancel)
    }

    fn generate_cancellable(&self, sql: &str, cancel: &CancelToken) -> Result<Run, XDataError> {
        let ast = xdata_sql::parse_query(sql)?;
        let query = normalize(&ast, &self.schema)?;
        let suite =
            generate_cancellable(&query, &self.schema, &self.domains, &self.options, cancel)?;
        Ok(Run { query, suite })
    }

    /// Run the full evaluation loop of §VI-C: generate the suite, enumerate
    /// the mutation space, and report which datasets kill which mutants.
    ///
    /// One cancellation token spans the *whole* pipeline: the
    /// [`XData::with_deadline_ms`] budget covers generation *and* kill
    /// checking. Once it expires, unfinished generation targets become
    /// [`core::SkipReason::Timeout`] skips and mutants without a verdict
    /// yet land in [`KillReport::unevaluated`] — verdicts already computed
    /// are kept. Per-target deadlines
    /// ([`XData::with_target_deadline_ms`]) only ever skip individual
    /// targets; the kill phase still runs in full on the datasets that
    /// survive.
    pub fn evaluate(
        &self,
        sql: &str,
        mopts: MutationOptions,
    ) -> Result<(Run, MutationSpace, KillReport), XDataError> {
        let cancel = CancelToken::for_deadline_ms(self.options.deadline_ms);
        let run = self.generate_cancellable(sql, &cancel)?;
        let space = run.mutants(mopts);
        let report = kill_report_cancel(
            &run.query,
            &space,
            &run.suite.data(),
            &self.schema,
            self.options.jobs,
            &cancel,
        )?;
        Ok((run, space, report))
    }

    /// Grade a candidate query against a reference query — the workflow of
    /// the XData grading tool this paper led to: generate the test suite
    /// from the *reference* query, run both queries on every dataset, and
    /// report the first dataset where they differ.
    pub fn grade(&self, reference_sql: &str, candidate_sql: &str) -> Result<Grade, XDataError> {
        let run = self.generate_for(reference_sql)?;
        let candidate_ast = xdata_sql::parse_query(candidate_sql)?;
        let candidate = normalize(&candidate_ast, &self.schema)?;
        for (i, d) in run.suite.datasets.iter().enumerate() {
            let expected = xdata_engine::execute_query(&run.query, &d.dataset, &self.schema)?;
            let got = xdata_engine::execute_query(&candidate, &d.dataset, &self.schema)?;
            if expected != got {
                return Ok(Grade::Different {
                    dataset_index: i,
                    dataset: d.dataset.clone(),
                    expected,
                    got,
                });
            }
        }
        Ok(Grade::AgreesOnSuite { datasets: run.suite.datasets.len() })
    }

    /// Grade a whole batch of candidate queries against one reference —
    /// the at-scale form of [`XData::grade`]. The reference suite is
    /// generated **once**; candidates equivalent after normalization
    /// (commuted FROM lists, flipped predicates, renamed bindings)
    /// collapse into equivalence classes that execute once; the remaining
    /// class×dataset grid fans over the worker pool
    /// ([`XData::with_jobs`]). Per-candidate parse errors become
    /// [`core::CandidateOutcome::Invalid`] verdicts instead of failing the
    /// batch, and a [`XData::with_deadline_ms`] expiry marks unfinished
    /// candidates [`core::CandidateOutcome::Unevaluated`].
    ///
    /// The report (and [`core::BatchGradeReport::render`]) is
    /// byte-identical for every `jobs` value.
    pub fn grade_batch(
        &self,
        reference_sql: &str,
        candidates: &[String],
    ) -> Result<BatchGradeReport, XDataError> {
        Ok(xdata_core::grade_batch(
            reference_sql,
            candidates,
            &self.schema,
            &self.domains,
            &self.options,
            self.strategy,
        )?)
    }
}

/// Result of [`XData::grade`].
#[derive(Debug, Clone)]
pub enum Grade {
    /// The candidate agreed with the reference on every generated dataset.
    /// Within the paper's mutation space this means the candidate is either
    /// correct or differs in a way no single mutation models.
    AgreesOnSuite { datasets: usize },
    /// A witness dataset on which the two queries disagree — show it to the
    /// student.
    Different {
        dataset_index: usize,
        dataset: Dataset,
        expected: xdata_engine::ResultSet,
        got: xdata_engine::ResultSet,
    },
}

impl Grade {
    pub fn passed(&self) -> bool {
        matches!(self, Grade::AgreesOnSuite { .. })
    }
}
