//! Relational schemata with primary- and foreign-key constraints.
//!
//! Per assumption A1 of the paper, primary and foreign keys are the only
//! integrity constraints. §V-B's preprocessing requires the *transitive
//! closure* of foreign-key relationships (if `A.x → B.x` and `B.x → C.x`
//! then also `A.x → C.x`), which [`Schema::fk_closure`] computes; Algorithm 2
//! needs, for a given key column, the set of columns that reference it
//! directly or indirectly ([`Schema::referencing_columns`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::CatalogError;
use crate::types::SqlType;

/// A column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub ty: SqlType,
    /// Whether NULLs are allowed. Foreign-key columns are non-nullable by
    /// default (assumption A2); §V-H's relaxation is expressed by setting
    /// this to `true` explicitly.
    pub nullable: bool,
}

impl Attribute {
    pub fn new(name: impl Into<String>, ty: SqlType) -> Self {
        Attribute { name: name.into(), ty, nullable: false }
    }

    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// A base relation (table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    pub name: String,
    pub attributes: Vec<Attribute>,
    /// Positions of the primary-key columns (empty = no primary key).
    pub primary_key: Vec<usize>,
}

impl Relation {
    /// Build a relation; `primary_key` lists key column *names*.
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        primary_key: &[&str],
    ) -> Result<Self, CatalogError> {
        let name = name.into();
        let mut seen = BTreeSet::new();
        for a in &attributes {
            if !seen.insert(a.name.clone()) {
                return Err(CatalogError::DuplicateAttribute {
                    relation: name,
                    attribute: a.name.clone(),
                });
            }
        }
        let mut pk = Vec::with_capacity(primary_key.len());
        for k in primary_key {
            match attributes.iter().position(|a| a.name == *k) {
                Some(p) => pk.push(p),
                None => return Err(CatalogError::BadPrimaryKey { relation: name }),
            }
        }
        Ok(Relation { name, attributes, primary_key: pk })
    }

    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of attribute `name`, if any.
    pub fn attr_pos(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    pub fn attr(&self, pos: usize) -> &Attribute {
        &self.attributes[pos]
    }

    /// Whether the column positions `cols` are exactly the primary key
    /// (order-insensitive).
    pub fn is_primary_key(&self, cols: &[usize]) -> bool {
        !self.primary_key.is_empty()
            && cols.len() == self.primary_key.len()
            && self.primary_key.iter().all(|k| cols.contains(k))
    }
}

/// A foreign-key constraint: `from.from_cols` references `to.to_cols`
/// (which must be the primary key of `to`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ForeignKey {
    pub from: String,
    pub from_cols: Vec<usize>,
    pub to: String,
    pub to_cols: Vec<usize>,
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:?}) -> {}({:?})", self.from, self.from_cols, self.to, self.to_cols)
    }
}

/// A column identified by relation name and position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnRef {
    pub relation: String,
    pub column: usize,
}

impl ColumnRef {
    pub fn new(relation: impl Into<String>, column: usize) -> Self {
        ColumnRef { relation: relation.into(), column }
    }
}

/// A database schema: relations plus foreign keys.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: BTreeMap<String, Relation>,
    foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    pub fn new() -> Self {
        Schema::default()
    }

    pub fn add_relation(&mut self, rel: Relation) -> Result<(), CatalogError> {
        if self.relations.contains_key(&rel.name) {
            return Err(CatalogError::DuplicateRelation(rel.name));
        }
        self.relations.insert(rel.name.clone(), rel);
        Ok(())
    }

    /// Add a foreign key by column names, validating arity, target (must be
    /// the referenced relation's primary key) and type compatibility.
    pub fn add_foreign_key(
        &mut self,
        from: &str,
        from_cols: &[&str],
        to: &str,
        to_cols: &[&str],
    ) -> Result<(), CatalogError> {
        let from_rel = self
            .relations
            .get(from)
            .ok_or_else(|| CatalogError::UnknownRelation(from.into()))?;
        let to_rel = self
            .relations
            .get(to)
            .ok_or_else(|| CatalogError::UnknownRelation(to.into()))?;
        if from_cols.len() != to_cols.len() {
            return Err(CatalogError::ForeignKeyArity {
                from: from.into(),
                to: to.into(),
                from_cols: from_cols.len(),
                to_cols: to_cols.len(),
            });
        }
        let mut f_pos = Vec::new();
        for c in from_cols {
            f_pos.push(from_rel.attr_pos(c).ok_or_else(|| CatalogError::UnknownAttribute {
                relation: from.into(),
                attribute: (*c).into(),
            })?);
        }
        let mut t_pos = Vec::new();
        for c in to_cols {
            t_pos.push(to_rel.attr_pos(c).ok_or_else(|| CatalogError::UnknownAttribute {
                relation: to.into(),
                attribute: (*c).into(),
            })?);
        }
        if !to_rel.is_primary_key(&t_pos) {
            return Err(CatalogError::ForeignKeyTarget { from: from.into(), to: to.into() });
        }
        for (fp, tp) in f_pos.iter().zip(&t_pos) {
            let ft = from_rel.attr(*fp).ty;
            let tt = to_rel.attr(*tp).ty;
            if !ft.comparable_with(tt) {
                return Err(CatalogError::ForeignKeyTypeMismatch {
                    from: from.into(),
                    from_col: from_rel.attr(*fp).name.clone(),
                    to: to.into(),
                    to_col: to_rel.attr(*tp).name.clone(),
                });
            }
        }
        self.foreign_keys.push(ForeignKey {
            from: from.into(),
            from_cols: f_pos,
            to: to.into(),
            to_cols: t_pos,
        });
        Ok(())
    }

    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    pub fn relation_or_err(&self, name: &str) -> Result<&Relation, CatalogError> {
        self.relation(name).ok_or_else(|| CatalogError::UnknownRelation(name.into()))
    }

    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Remove all foreign keys (used by the evaluation's FK-count sweep).
    pub fn clear_foreign_keys(&mut self) {
        self.foreign_keys.clear();
    }

    /// Keep only the first `n` foreign keys (evaluation sweep, Table I).
    pub fn truncate_foreign_keys(&mut self, n: usize) {
        self.foreign_keys.truncate(n);
    }

    /// Transitive closure of single-column foreign-key relationships at
    /// column granularity (§V-B preprocessing step 3). Multi-column keys
    /// close over aligned column pairs.
    ///
    /// Returns edges `(referencing column, referenced column)`.
    pub fn fk_closure(&self) -> BTreeSet<(ColumnRef, ColumnRef)> {
        let mut edges: BTreeSet<(ColumnRef, ColumnRef)> = BTreeSet::new();
        for fk in &self.foreign_keys {
            for (f, t) in fk.from_cols.iter().zip(&fk.to_cols) {
                edges.insert((ColumnRef::new(&fk.from, *f), ColumnRef::new(&fk.to, *t)));
            }
        }
        // Floyd–Warshall-style closure over column edges.
        loop {
            let mut added = Vec::new();
            for (a, b) in &edges {
                for (c, d) in &edges {
                    if b == c {
                        let e = (a.clone(), d.clone());
                        if !edges.contains(&e) {
                            added.push(e);
                        }
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            edges.extend(added);
        }
        edges
    }

    /// All columns that reference `target` directly **or indirectly** —
    /// the set `S` of Algorithm 2 (minus `target` itself).
    pub fn referencing_columns(&self, target: &ColumnRef) -> BTreeSet<ColumnRef> {
        self.fk_closure()
            .into_iter()
            .filter(|(_, to)| to == target)
            .map(|(from, _)| from)
            .collect()
    }

    /// Whether column `a` references column `b` directly or indirectly.
    pub fn references(&self, a: &ColumnRef, b: &ColumnRef) -> bool {
        self.fk_closure().contains(&(a.clone(), b.clone()))
    }

    /// Like [`Schema::references`], but only follows foreign keys whose
    /// referencing columns are **non-nullable**. Nullable foreign keys
    /// (§V-H's relaxation of assumption A2) do not force joint
    /// nullification in Algorithm 2: the referencing column can simply
    /// take NULL instead.
    pub fn references_strict(&self, a: &ColumnRef, b: &ColumnRef) -> bool {
        let strict_edges: BTreeSet<(ColumnRef, ColumnRef)> = {
            let mut edges = BTreeSet::new();
            for fk in &self.foreign_keys {
                let from_rel = match self.relation(&fk.from) {
                    Some(r) => r,
                    None => continue,
                };
                let all_non_nullable =
                    fk.from_cols.iter().all(|c| !from_rel.attr(*c).nullable);
                if !all_non_nullable {
                    continue;
                }
                for (f, t) in fk.from_cols.iter().zip(&fk.to_cols) {
                    edges.insert((ColumnRef::new(&fk.from, *f), ColumnRef::new(&fk.to, *t)));
                }
            }
            // Transitive closure over strict edges only.
            loop {
                let mut added = Vec::new();
                for (x, y) in &edges {
                    for (u, v) in &edges {
                        if y == u {
                            let e = (x.clone(), v.clone());
                            if !edges.contains(&e) {
                                added.push(e);
                            }
                        }
                    }
                }
                if added.is_empty() {
                    break;
                }
                edges.extend(added);
            }
            edges
        };
        strict_edges.contains(&(a.clone(), b.clone()))
    }

    /// Relations reachable from `roots` by following foreign keys out of
    /// them (transitively). Generated datasets must populate these too so
    /// the instance satisfies all integrity constraints (§V-B).
    pub fn fk_reachable(&self, roots: &BTreeSet<String>) -> BTreeSet<String> {
        let mut out = roots.clone();
        let mut frontier: Vec<String> = roots.iter().cloned().collect();
        while let Some(r) = frontier.pop() {
            for fk in &self.foreign_keys {
                if fk.from == r && !out.contains(&fk.to) {
                    out.insert(fk.to.clone());
                    frontier.push(fk.to.clone());
                }
            }
        }
        out
    }

    /// Foreign keys whose referencing relation is `rel`.
    pub fn fks_from<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a ForeignKey> + 'a {
        self.foreign_keys.iter().filter(move |fk| fk.from == rel)
    }

    /// Foreign keys whose referenced relation is `rel`.
    pub fn fks_to<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a ForeignKey> + 'a {
        self.foreign_keys.iter().filter(move |fk| fk.to == rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_schema() -> Schema {
        let mut s = Schema::new();
        for name in ["a", "b", "c"] {
            s.add_relation(
                Relation::new(
                    name,
                    vec![Attribute::new("x", SqlType::Int), Attribute::new("y", SqlType::Int)],
                    &["x"],
                )
                .unwrap(),
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = abc_schema();
        let r = Relation::new("a", vec![Attribute::new("x", SqlType::Int)], &["x"]).unwrap();
        assert_eq!(s.add_relation(r), Err(CatalogError::DuplicateRelation("a".into())));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let r = Relation::new(
            "r",
            vec![Attribute::new("x", SqlType::Int), Attribute::new("x", SqlType::Int)],
            &[],
        );
        assert!(matches!(r, Err(CatalogError::DuplicateAttribute { .. })));
    }

    #[test]
    fn fk_must_reference_primary_key() {
        let mut s = abc_schema();
        assert!(matches!(
            s.add_foreign_key("a", &["x"], "b", &["y"]),
            Err(CatalogError::ForeignKeyTarget { .. })
        ));
        assert!(s.add_foreign_key("a", &["x"], "b", &["x"]).is_ok());
    }

    #[test]
    fn fk_arity_checked() {
        let mut s = abc_schema();
        assert!(matches!(
            s.add_foreign_key("a", &["x", "y"], "b", &["x"]),
            Err(CatalogError::ForeignKeyArity { .. })
        ));
    }

    #[test]
    fn fk_unknown_names_checked() {
        let mut s = abc_schema();
        assert!(matches!(
            s.add_foreign_key("a", &["z"], "b", &["x"]),
            Err(CatalogError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            s.add_foreign_key("zz", &["x"], "b", &["x"]),
            Err(CatalogError::UnknownRelation(_))
        ));
    }

    #[test]
    fn fk_closure_is_transitive() {
        let mut s = abc_schema();
        s.add_foreign_key("a", &["x"], "b", &["x"]).unwrap();
        s.add_foreign_key("b", &["x"], "c", &["x"]).unwrap();
        let closure = s.fk_closure();
        assert!(closure.contains(&(ColumnRef::new("a", 0), ColumnRef::new("c", 0))));
        assert_eq!(closure.len(), 3); // a->b, b->c, a->c
    }

    #[test]
    fn referencing_columns_include_indirect() {
        let mut s = abc_schema();
        s.add_foreign_key("a", &["x"], "b", &["x"]).unwrap();
        s.add_foreign_key("b", &["x"], "c", &["x"]).unwrap();
        let refs = s.referencing_columns(&ColumnRef::new("c", 0));
        assert!(refs.contains(&ColumnRef::new("a", 0)));
        assert!(refs.contains(&ColumnRef::new("b", 0)));
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn fk_reachable_walks_out_edges() {
        let mut s = abc_schema();
        s.add_foreign_key("a", &["x"], "b", &["x"]).unwrap();
        s.add_foreign_key("b", &["x"], "c", &["x"]).unwrap();
        let roots: BTreeSet<String> = ["a".to_string()].into_iter().collect();
        let reach = s.fk_reachable(&roots);
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn truncate_foreign_keys_for_sweep() {
        let mut s = abc_schema();
        s.add_foreign_key("a", &["x"], "b", &["x"]).unwrap();
        s.add_foreign_key("b", &["x"], "c", &["x"]).unwrap();
        s.truncate_foreign_keys(1);
        assert_eq!(s.foreign_keys().len(), 1);
        s.clear_foreign_keys();
        assert!(s.foreign_keys().is_empty());
    }
}
