//! # xdata-catalog
//!
//! Schema and value model for the X-Data test-data generation system, a
//! reproduction of *"Generating Test Data for Killing SQL Mutants: A
//! Constraint-based Approach"* (Shah et al.).
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`Value`] — SQL values with `NULL` and three-valued-logic comparison
//!   semantics ([`Truth`]).
//! * [`SqlType`] — the column types supported by the paper's query class.
//! * [`Schema`], [`Relation`], [`ForeignKey`] — relational schemata with
//!   primary- and foreign-key constraints (the only constraints the paper
//!   assumes, A1), plus the transitive foreign-key closure of §V-B.
//! * [`Domain`] — per-attribute value domains used both to keep generated
//!   data "small and intuitive" (§I) and to implement the input-database
//!   mode of §VI-A.
//! * [`Dataset`] — a generated test case: a small database instance.
//! * [`university`] — the (slightly modified) University schema of
//!   Silberschatz, Korth & Sudarshan used throughout the paper's evaluation.

pub mod dataset;
pub mod domain;
pub mod error;
pub mod rng;
pub mod schema;
pub mod types;
pub mod university;
pub mod value;

pub use dataset::{Dataset, Tuple};
pub use domain::{Domain, DomainCatalog};
pub use error::CatalogError;
pub use rng::SplitMix64;
pub use schema::{Attribute, ForeignKey, Relation, Schema};
pub use types::SqlType;
pub use value::{Truth, Value};
