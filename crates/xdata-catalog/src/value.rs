//! SQL values with `NULL` and three-valued logic.
//!
//! The engine that checks whether a mutant is killed (crate `xdata-engine`)
//! must evaluate outer joins faithfully, and outer joins produce `NULL`s, so
//! the value model carries SQL's three-valued comparison semantics even
//! though *queries* never test for `NULL` explicitly (assumption A6).

use std::cmp::Ordering;
use std::fmt;

use crate::types::SqlType;

/// A single SQL value.
///
/// `Double` values are compared via [`f64::total_cmp`], which gives `Value`
/// a total order usable in `BTreeMap`s and sorting; NaN never occurs in
/// generated data (the solver only produces finite values).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (of any type).
    Null,
    Int(i64),
    Double(f64),
    Str(String),
}

/// Result of a SQL comparison under three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    /// Comparison involving NULL.
    Unknown,
}

impl Truth {
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// SQL WHERE-clause semantics: a row qualifies only when the predicate
    /// is definitely true.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        Truth::from_bool(b)
    }
}

/// Kleene negation: `Unknown` stays `Unknown`.
impl std::ops::Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

impl Value {
    /// The static type of this value, or `None` for NULL (typeless).
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(SqlType::Int),
            Value::Double(_) => Some(SqlType::Double),
            Value::Str(_) => Some(SqlType::Varchar),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of this value (Int widened to f64) used by arithmetic
    /// and `SUM`/`AVG`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) if d.fract() == 0.0 => Some(*d as i64),
            _ => None,
        }
    }

    /// SQL three-valued comparison. NULL compared with anything (including
    /// NULL) is `Unknown`; cross-type numeric comparison widens to f64;
    /// comparing a string with a number is a type error handled upstream and
    /// conservatively returns `Unknown` here.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }

    /// Three-valued equality.
    pub fn sql_eq(&self, other: &Value) -> Truth {
        match self.sql_cmp(other) {
            None => Truth::Unknown,
            Some(ord) => Truth::from_bool(ord == Ordering::Equal),
        }
    }

    /// Grouping/`DISTINCT` equality: unlike [`Value::sql_eq`], NULL equals
    /// NULL (SQL treats NULLs as one group in GROUP BY and DISTINCT).
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Total order used for deterministic output and grouping: NULL sorts
    /// first, then numerics (widened), then strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Double(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                // Mixed Int/Double: compare widened, tie-break on variant so
                // Int(1) and Double(1.0) are distinguishable in a total order.
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                x.total_cmp(&y).then_with(|| {
                    let va = matches!(a, Value::Double(_)) as u8;
                    let vb = matches!(b, Value::Double(_)) as u8;
                    va.cmp(&vb)
                })
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                d.to_bits().hash(state);
                2u8.hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), Truth::Unknown);
        assert_eq!(Value::Null.sql_eq(&Value::Null), Truth::Unknown);
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
    }

    #[test]
    fn three_valued_and_or() {
        use Truth::*;
        assert_eq!(Unknown.and(False), False);
        assert_eq!(Unknown.and(True), Unknown);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn string_number_comparison_is_unknown() {
        assert_eq!(Value::Str("a".into()).sql_eq(&Value::Int(1)), Truth::Unknown);
    }

    #[test]
    fn group_eq_treats_nulls_equal() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [Value::Str("a".into()), Value::Int(3), Value::Null];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(3));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Str("CS".into()).to_string(), "'CS'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn where_semantics_only_true_qualifies() {
        assert!(Truth::True.is_true());
        assert!(!Truth::Unknown.is_true());
        assert!(!Truth::False.is_true());
    }
}
