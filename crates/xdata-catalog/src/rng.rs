//! A tiny deterministic PRNG (SplitMix64) for the randomized test suites
//! and bench workload jitter — keeps the workspace free of external crates
//! so it builds with no network access.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) passes BigCrush, needs eight lines of code,
//! and — unlike the `rand` crate's default generators — gives identical
//! streams on every platform and toolchain, which matters for reproducible
//! seeded test failures.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction: the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`). Uses the widening-multiply trick; the
    /// modulo bias is < 2⁻⁶⁴·n, irrelevant at test scale.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform in the inclusive integer range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 as u128 + 1;
        lo + ((self.next_u64() as u128 * span) >> 64) as i64
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A uniformly random subset of `items`, preserving input order
    /// (each element kept independently with probability 1/2).
    pub fn subset<T: Clone>(&mut self, items: &[T]) -> Vec<T> {
        items.iter().filter(|_| self.bool()).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // algorithm (checked against the C reference implementation).
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64(), "stream advances");
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = r.below(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut r = SplitMix64::new(99);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..500 {
            let x = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&x));
            lo_seen |= x == -3;
            hi_seen |= x == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!(0..100).any(|_| r.chance(0, 10)));
        assert!((0..100).all(|_| r.chance(10, 10)));
    }
}
