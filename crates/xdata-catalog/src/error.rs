//! Error type for schema construction and validation.

use std::fmt;

/// Errors raised while building or validating a [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Two relations with the same name were added.
    DuplicateRelation(String),
    /// A relation declares two attributes with the same name.
    DuplicateAttribute { relation: String, attribute: String },
    /// A constraint or query referenced a relation that does not exist.
    UnknownRelation(String),
    /// A constraint or query referenced an attribute that does not exist.
    UnknownAttribute { relation: String, attribute: String },
    /// A foreign key's column list length does not match the referenced key.
    ForeignKeyArity {
        from: String,
        to: String,
        from_cols: usize,
        to_cols: usize,
    },
    /// A foreign key references columns that are not the primary key of the
    /// referenced relation (the paper assumes FKs reference primary keys).
    ForeignKeyTarget { from: String, to: String },
    /// A foreign key column's type differs from the referenced column's.
    ForeignKeyTypeMismatch {
        from: String,
        from_col: String,
        to: String,
        to_col: String,
    },
    /// Primary key refers to a non-existent attribute position.
    BadPrimaryKey { relation: String },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateRelation(r) => write!(f, "duplicate relation `{r}`"),
            CatalogError::DuplicateAttribute { relation, attribute } => {
                write!(f, "duplicate attribute `{attribute}` in relation `{relation}`")
            }
            CatalogError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            CatalogError::UnknownAttribute { relation, attribute } => {
                write!(f, "unknown attribute `{relation}.{attribute}`")
            }
            CatalogError::ForeignKeyArity { from, to, from_cols, to_cols } => write!(
                f,
                "foreign key {from} -> {to}: {from_cols} columns reference {to_cols} columns"
            ),
            CatalogError::ForeignKeyTarget { from, to } => write!(
                f,
                "foreign key {from} -> {to} must reference the primary key of `{to}`"
            ),
            CatalogError::ForeignKeyTypeMismatch { from, from_col, to, to_col } => write!(
                f,
                "foreign key column {from}.{from_col} type differs from {to}.{to_col}"
            ),
            CatalogError::BadPrimaryKey { relation } => {
                write!(f, "primary key of `{relation}` references a non-existent column")
            }
        }
    }
}

impl std::error::Error for CatalogError {}
