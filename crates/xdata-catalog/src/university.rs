//! The University schema used throughout the paper's evaluation.
//!
//! "The schema used was a slightly modified version of the University schema
//! of [Silberschatz, Korth & Sudarshan]" (§VI-C). As in the paper we modify
//! it slightly: identifiers are integers (the solver's native type), names
//! and departments are strings with shared dictionaries, and the foreign-key
//! set is ordered so the evaluation can sweep "the number of foreign key
//! constraints from 0 up to the number of constraints originally present"
//! (§VI-C.1) via [`crate::Schema::truncate_foreign_keys`].

use crate::dataset::Dataset;
use crate::error::CatalogError;
use crate::schema::{Attribute, Relation, Schema};
use crate::types::SqlType;
use crate::value::Value;

/// Build the full University schema with all foreign keys.
///
/// Relations: `department`, `instructor`, `course`, `teaches`, `student`,
/// `takes`, `advisor`, `section`.
pub fn schema() -> Schema {
    try_schema().expect("university schema is statically well-formed")
}

/// Build the University schema keeping only the first `n` foreign keys
/// (Table I's FK sweep). `n` larger than the FK count keeps them all.
pub fn schema_with_fk_count(n: usize) -> Schema {
    let mut s = schema();
    s.truncate_foreign_keys(n);
    s
}

fn try_schema() -> Result<Schema, CatalogError> {
    use SqlType::*;
    let mut s = Schema::new();
    s.add_relation(Relation::new(
        "department",
        vec![
            Attribute::new("dept_id", Int),
            Attribute::new("dept_name", Varchar),
            Attribute::new("building", Varchar),
            Attribute::new("budget", Int),
        ],
        &["dept_id"],
    )?)?;
    s.add_relation(Relation::new(
        "instructor",
        vec![
            Attribute::new("id", Int),
            Attribute::new("name", Varchar),
            Attribute::new("dept_id", Int),
            Attribute::new("salary", Int),
        ],
        &["id"],
    )?)?;
    s.add_relation(Relation::new(
        "course",
        vec![
            Attribute::new("course_id", Int),
            Attribute::new("title", Varchar),
            Attribute::new("dept_id", Int),
            Attribute::new("credits", Int),
        ],
        &["course_id"],
    )?)?;
    s.add_relation(Relation::new(
        "teaches",
        vec![
            Attribute::new("id", Int),
            Attribute::new("course_id", Int),
            Attribute::new("sec_id", Int),
            Attribute::new("year", Int),
        ],
        &["id", "course_id", "sec_id", "year"],
    )?)?;
    s.add_relation(Relation::new(
        "student",
        vec![
            Attribute::new("sid", Int),
            Attribute::new("name", Varchar),
            Attribute::new("dept_id", Int),
            Attribute::new("tot_cred", Int),
        ],
        &["sid"],
    )?)?;
    s.add_relation(Relation::new(
        "takes",
        vec![
            Attribute::new("sid", Int),
            Attribute::new("course_id", Int),
            Attribute::new("sec_id", Int),
            Attribute::new("year", Int),
            Attribute::new("grade", Int),
        ],
        &["sid", "course_id", "sec_id", "year"],
    )?)?;
    s.add_relation(Relation::new(
        "advisor",
        vec![Attribute::new("s_id", Int), Attribute::new("i_id", Int)],
        &["s_id"],
    )?)?;
    s.add_relation(Relation::new(
        "section",
        vec![
            Attribute::new("course_id", Int),
            Attribute::new("sec_id", Int),
            Attribute::new("year", Int),
            Attribute::new("building", Varchar),
        ],
        &["course_id", "sec_id", "year"],
    )?)?;

    // Foreign keys, ordered roughly by how central they are to the
    // evaluation's join chains so `truncate_foreign_keys(n)` produces the
    // paper's 0..=all sweep sensibly.
    s.add_foreign_key("teaches", &["id"], "instructor", &["id"])?;
    s.add_foreign_key("teaches", &["course_id"], "course", &["course_id"])?;
    s.add_foreign_key("takes", &["course_id"], "course", &["course_id"])?;
    s.add_foreign_key("takes", &["sid"], "student", &["sid"])?;
    s.add_foreign_key("instructor", &["dept_id"], "department", &["dept_id"])?;
    s.add_foreign_key("student", &["dept_id"], "department", &["dept_id"])?;
    s.add_foreign_key("course", &["dept_id"], "department", &["dept_id"])?;
    s.add_foreign_key("advisor", &["s_id"], "student", &["sid"])?;
    s.add_foreign_key("advisor", &["i_id"], "instructor", &["id"])?;
    s.add_foreign_key("section", &["course_id"], "course", &["course_id"])?;
    Ok(s)
}

/// A small sample database in the spirit of the textbook's example data;
/// `tuples_per_relation` controls the size (the §VI-C.3 experiment uses 5
/// and 9).
pub fn sample_data(tuples_per_relation: usize) -> Dataset {
    let n = tuples_per_relation;
    let mut d = Dataset::with_label(format!("university sample ({n} tuples/relation)"));
    let depts = ["CS", "Biology", "Physics", "History", "Music", "EE", "Math", "Finance", "Art"];
    let buildings = ["Taylor", "Watson", "Painter", "Packard", "Garfield"];
    let names = [
        "Srinivasan", "Wu", "Mozart", "Einstein", "ElSaid", "Gold", "Katz", "Califieri", "Singh",
    ];
    for i in 0..n.min(depts.len()) {
        d.push(
            "department",
            vec![
                Value::Int(i as i64 + 1),
                Value::Str(depts[i].into()),
                Value::Str(buildings[i % buildings.len()].into()),
                Value::Int(50_000 + 10_000 * i as i64),
            ],
        );
    }
    let ndep = n.min(depts.len()) as i64;
    for i in 0..n {
        let i = i as i64;
        d.push(
            "instructor",
            vec![
                Value::Int(10 + i),
                Value::Str(names[i as usize % names.len()].into()),
                Value::Int(1 + (i % ndep)),
                Value::Int(60_000 + 5_000 * i),
            ],
        );
        d.push(
            "course",
            vec![
                Value::Int(100 + i),
                Value::Str(format!("Course-{i}")),
                Value::Int(1 + (i % ndep)),
                Value::Int(3 + (i % 2)),
            ],
        );
        d.push(
            "teaches",
            vec![Value::Int(10 + i), Value::Int(100 + i), Value::Int(1), Value::Int(2009)],
        );
        d.push(
            "student",
            vec![
                Value::Int(1000 + i),
                Value::Str(names[(i as usize + 3) % names.len()].into()),
                Value::Int(1 + (i % ndep)),
                Value::Int(30 + i),
            ],
        );
        d.push(
            "takes",
            vec![
                Value::Int(1000 + i),
                Value::Int(100 + i),
                Value::Int(1),
                Value::Int(2009),
                Value::Int(70 + (i % 30)),
            ],
        );
        d.push("advisor", vec![Value::Int(1000 + i), Value::Int(10 + i)]);
        d.push(
            "section",
            vec![
                Value::Int(100 + i),
                Value::Int(1),
                Value::Int(2009),
                Value::Str(buildings[i as usize % buildings.len()].into()),
            ],
        );
    }
    d
}

/// Names of the relations forming the evaluation's canonical join chain:
/// index `k` (2..=7) gives the first `k` relations, joined pairwise.
pub fn join_chain(k: usize) -> Vec<&'static str> {
    const CHAIN: [&str; 7] =
        ["instructor", "teaches", "course", "takes", "student", "advisor", "department"];
    CHAIN[..k.min(7)].to_vec()
}

/// The equi-join condition linking consecutive relations of [`join_chain`],
/// as `(left_rel, left_attr, right_rel, right_attr)`.
pub fn join_chain_condition(i: usize) -> (&'static str, &'static str, &'static str, &'static str) {
    const CONDS: [(&str, &str, &str, &str); 6] = [
        ("instructor", "id", "teaches", "id"),
        ("teaches", "course_id", "course", "course_id"),
        ("course", "course_id", "takes", "course_id"),
        ("takes", "sid", "student", "sid"),
        ("student", "sid", "advisor", "s_id"),
        ("student", "dept_id", "department", "dept_id"),
    ];
    CONDS[i]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_with_all_fks() {
        let s = schema();
        assert_eq!(s.relations().count(), 8);
        assert_eq!(s.foreign_keys().len(), 10);
    }

    #[test]
    fn fk_sweep_truncates() {
        assert_eq!(schema_with_fk_count(0).foreign_keys().len(), 0);
        assert_eq!(schema_with_fk_count(4).foreign_keys().len(), 4);
        assert_eq!(schema_with_fk_count(100).foreign_keys().len(), 10);
    }

    #[test]
    fn sample_data_is_legal_instance() {
        let s = schema();
        let d = sample_data(5);
        let errs = d.integrity_violations(&s);
        assert!(errs.is_empty(), "violations: {errs:?}");
    }

    #[test]
    fn sample_data_size_scales() {
        assert!(sample_data(9).total_tuples() > sample_data(5).total_tuples());
    }

    #[test]
    fn join_chain_lengths() {
        assert_eq!(join_chain(2), vec!["instructor", "teaches"]);
        assert_eq!(join_chain(7).len(), 7);
    }

    #[test]
    fn chain_conditions_reference_real_attributes() {
        let s = schema();
        for i in 0..6 {
            let (lr, la, rr, ra) = join_chain_condition(i);
            assert!(s.relation(lr).unwrap().attr_pos(la).is_some(), "{lr}.{la}");
            assert!(s.relation(rr).unwrap().attr_pos(ra).is_some(), "{rr}.{ra}");
        }
    }
}
