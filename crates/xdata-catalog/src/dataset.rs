//! Datasets: the test cases X-Data generates.
//!
//! A *test case* is "simply a (legal) database instance" (§I). Datasets are
//! deliberately tiny — a handful of tuples — because a human must inspect
//! each one and decide what the intended query output is.

use std::collections::BTreeMap;
use std::fmt;

use crate::schema::Schema;
use crate::value::Value;

/// One row of a relation.
pub type Tuple = Vec<Value>;

/// A database instance: relation name → tuples (bag semantics; duplicates
/// only survive when the relation has no primary key).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dataset {
    relations: BTreeMap<String, Vec<Tuple>>,
    /// Optional human-readable label, e.g. which mutant group this dataset
    /// was generated to kill ("nullify teaches.id").
    pub label: String,
}

impl Dataset {
    pub fn new() -> Self {
        Dataset::default()
    }

    pub fn with_label(label: impl Into<String>) -> Self {
        Dataset { label: label.into(), ..Dataset::default() }
    }

    /// Append one tuple to `relation` (creating it if absent).
    pub fn push(&mut self, relation: &str, tuple: Tuple) {
        self.relations.entry(relation.to_string()).or_default().push(tuple);
    }

    /// Ensure `relation` exists (possibly empty).
    pub fn ensure_relation(&mut self, relation: &str) {
        self.relations.entry(relation.to_string()).or_default();
    }

    pub fn relation(&self, name: &str) -> Option<&[Tuple]> {
        self.relations.get(name).map(Vec::as_slice)
    }

    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Tuple])> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Total number of tuples across all relations — the paper's "small"
    /// metric.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.values().all(Vec::is_empty)
    }

    /// Drop duplicate tuples in relations that have a primary key. The
    /// solver "may of course make these tuples equal, and we eliminate
    /// duplicates before creating a dataset in the database if the relation
    /// has primary key constraints" (§V-B).
    pub fn dedup_primary_keys(&mut self, schema: &Schema) {
        for (name, tuples) in &mut self.relations {
            let has_pk =
                schema.relation(name).map(|r| !r.primary_key.is_empty()).unwrap_or(false);
            if has_pk {
                tuples.sort();
                tuples.dedup();
            }
        }
    }

    /// Check primary-key uniqueness and foreign-key referential integrity
    /// against `schema`; returns a list of human-readable violations
    /// (empty = legal instance).
    pub fn integrity_violations(&self, schema: &Schema) -> Vec<String> {
        let mut errs = Vec::new();
        for (name, tuples) in &self.relations {
            let Some(rel) = schema.relation(name) else {
                errs.push(format!("relation `{name}` not in schema"));
                continue;
            };
            for t in tuples {
                if t.len() != rel.arity() {
                    errs.push(format!(
                        "tuple arity {} does not match relation `{name}` arity {}",
                        t.len(),
                        rel.arity()
                    ));
                }
            }
            if !rel.primary_key.is_empty() {
                let mut keys: Vec<Vec<&Value>> = tuples
                    .iter()
                    .map(|t| rel.primary_key.iter().map(|p| &t[*p]).collect())
                    .collect();
                keys.sort();
                for w in keys.windows(2) {
                    if w[0] == w[1] {
                        errs.push(format!(
                            "duplicate primary key {:?} in `{name}`",
                            w[0].iter().map(|v| v.to_string()).collect::<Vec<_>>()
                        ));
                    }
                }
            }
            for (pos, attr) in rel.attributes.iter().enumerate() {
                if !attr.nullable {
                    for t in tuples {
                        if pos < t.len() && t[pos].is_null() {
                            errs.push(format!(
                                "NULL in non-nullable column `{name}.{}`",
                                attr.name
                            ));
                        }
                    }
                }
            }
        }
        for fk in schema.foreign_keys() {
            let from = self.relations.get(&fk.from).cloned().unwrap_or_default();
            let to = self.relations.get(&fk.to).cloned().unwrap_or_default();
            for t in &from {
                let key: Vec<&Value> = fk.from_cols.iter().map(|c| &t[*c]).collect();
                if key.iter().any(|v| v.is_null()) {
                    continue; // nullable FK: NULL key imposes no reference
                }
                let matched = to.iter().any(|u| {
                    fk.to_cols.iter().zip(&key).all(|(c, k)| u[*c].group_eq(k))
                });
                if !matched {
                    errs.push(format!(
                        "foreign key violation: {}{:?} has no match in {}",
                        fk.from,
                        key.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                        fk.to
                    ));
                }
            }
        }
        errs
    }
}

impl Dataset {
    /// Render as `INSERT INTO ... VALUES ...` statements, so generated test
    /// cases can be loaded into a real DBMS (the deployment path of the
    /// XData grading tool). Round-trips through `xdata_sql::parse_script`.
    pub fn to_insert_sql(&self) -> String {
        let mut out = String::new();
        for (name, tuples) in &self.relations {
            if tuples.is_empty() {
                continue;
            }
            out.push_str(&format!("INSERT INTO {name} VALUES\n"));
            for (i, t) in tuples.iter().enumerate() {
                let cells: Vec<String> = t
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
                        other => other.to_string(),
                    })
                    .collect();
                out.push_str(&format!(
                    "  ({}){}\n",
                    cells.join(", "),
                    if i + 1 == tuples.len() { ";" } else { "," }
                ));
            }
        }
        out
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.label.is_empty() {
            writeln!(f, "-- dataset: {}", self.label)?;
        }
        for (name, tuples) in &self.relations {
            writeln!(f, "{name}:")?;
            if tuples.is_empty() {
                writeln!(f, "  (empty)")?;
            }
            for t in tuples {
                let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
                writeln!(f, "  ({})", row.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Relation};
    use crate::types::SqlType;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation(
            Relation::new(
                "instructor",
                vec![Attribute::new("id", SqlType::Int), Attribute::new("name", SqlType::Varchar)],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        s.add_relation(
            Relation::new(
                "teaches",
                vec![Attribute::new("id", SqlType::Int), Attribute::new("cid", SqlType::Int)],
                &["id", "cid"],
            )
            .unwrap(),
        )
        .unwrap();
        s.add_foreign_key("teaches", &["id"], "instructor", &["id"]).unwrap();
        s
    }

    #[test]
    fn push_and_count() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("a".into())]);
        d.push("teaches", vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(d.total_tuples(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn dedup_respects_primary_keys() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("a".into())]);
        d.push("instructor", vec![Value::Int(1), Value::Str("a".into())]);
        d.dedup_primary_keys(&schema());
        assert_eq!(d.relation("instructor").unwrap().len(), 1);
    }

    #[test]
    fn integrity_detects_fk_violation() {
        let mut d = Dataset::new();
        d.push("teaches", vec![Value::Int(5), Value::Int(10)]);
        let errs = d.integrity_violations(&schema());
        assert!(errs.iter().any(|e| e.contains("foreign key violation")));
    }

    #[test]
    fn integrity_detects_pk_violation() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("a".into())]);
        d.push("instructor", vec![Value::Int(1), Value::Str("b".into())]);
        let errs = d.integrity_violations(&schema());
        assert!(errs.iter().any(|e| e.contains("duplicate primary key")));
    }

    #[test]
    fn legal_instance_has_no_violations() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("a".into())]);
        d.push("teaches", vec![Value::Int(1), Value::Int(10)]);
        assert!(d.integrity_violations(&schema()).is_empty());
    }

    #[test]
    fn null_in_non_nullable_detected() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Null, Value::Str("a".into())]);
        let errs = d.integrity_violations(&schema());
        assert!(errs.iter().any(|e| e.contains("non-nullable")));
    }

    #[test]
    fn insert_sql_renders_rows_and_escapes() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("O'Hara".into())]);
        d.push("instructor", vec![Value::Int(2), Value::Str("Wu".into())]);
        let sql = d.to_insert_sql();
        assert!(sql.contains("INSERT INTO instructor VALUES"));
        assert!(sql.contains("(1, 'O''Hara'),"));
        assert!(sql.contains("(2, 'Wu');"));
        // Empty relations produce no statement.
        let mut e = Dataset::new();
        e.ensure_relation("teaches");
        assert!(e.to_insert_sql().is_empty());
    }

    #[test]
    fn display_renders_rows() {
        let mut d = Dataset::with_label("kill join mutant");
        d.push("instructor", vec![Value::Int(1), Value::Str("a".into())]);
        let s = d.to_string();
        assert!(s.contains("kill join mutant"));
        assert!(s.contains("instructor:"));
        assert!(s.contains("(1, 'a')"));
    }
}
