//! SQL column types for the paper's query class.
//!
//! Assumption A4 restricts queries to simple arithmetic over attribute
//! values, so the type lattice is deliberately small: integers, doubles and
//! variable-length strings. Dates in realistic schemas are modelled as
//! integers (days since an epoch), which preserves every comparison the
//! query class can express.

use std::fmt;

/// A SQL column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SqlType {
    /// 64-bit signed integer (`INT`, `BIGINT`, dates-as-days, ...).
    Int,
    /// 64-bit IEEE float (`DOUBLE`, `NUMERIC`, `DECIMAL`, ...).
    Double,
    /// Variable-length string (`VARCHAR`, `TEXT`, `CHAR`, ...).
    Varchar,
}

impl SqlType {
    /// Whether values of this type are numeric (participate in arithmetic
    /// and `SUM`/`AVG` aggregation).
    pub fn is_numeric(self) -> bool {
        matches!(self, SqlType::Int | SqlType::Double)
    }

    /// Whether two types are comparable with `=,<,>,<=,>=,<>` without an
    /// explicit cast. Numeric types are mutually comparable; strings only
    /// compare with strings.
    pub fn comparable_with(self, other: SqlType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }

    /// Canonical SQL keyword for this type.
    pub fn sql_name(self) -> &'static str {
        match self {
            SqlType::Int => "INT",
            SqlType::Double => "DOUBLE",
            SqlType::Varchar => "VARCHAR",
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_types_are_numeric() {
        assert!(SqlType::Int.is_numeric());
        assert!(SqlType::Double.is_numeric());
        assert!(!SqlType::Varchar.is_numeric());
    }

    #[test]
    fn comparability_is_symmetric() {
        for a in [SqlType::Int, SqlType::Double, SqlType::Varchar] {
            for b in [SqlType::Int, SqlType::Double, SqlType::Varchar] {
                assert_eq!(a.comparable_with(b), b.comparable_with(a));
            }
        }
    }

    #[test]
    fn int_compares_with_double_but_not_varchar() {
        assert!(SqlType::Int.comparable_with(SqlType::Double));
        assert!(!SqlType::Int.comparable_with(SqlType::Varchar));
    }

    #[test]
    fn display_matches_sql_name() {
        assert_eq!(SqlType::Varchar.to_string(), "VARCHAR");
        assert_eq!(SqlType::Int.to_string(), "INT");
    }
}
