//! Per-attribute value domains.
//!
//! The paper's `genDBConstraints()` "adds domain constraints, to ensure that
//! values for an attribute are generated from the domain of that attribute;
//! we can for example specify the domain to be an integer, or enumerate data
//! values to be used for that domain" (§V-B). By default the evaluation
//! "constrains attributes to take domain values that are present in an
//! input database" (§VI-C) — that is what [`DomainCatalog::from_dataset`]
//! builds.
//!
//! Internally the solver works over integers; string-typed attributes get an
//! enumerated domain whose values are integer *codes*, decoded back to
//! strings when a dataset is materialized. Dictionaries are shared across
//! attributes with the same *name* (e.g. `instructor.dept_name` and
//! `department.dept_name`), so equi-joins and foreign keys over strings are
//! preserved by the integer coding.

use std::collections::BTreeMap;

use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::types::SqlType;
use crate::value::Value;

/// The domain of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Any integer in `[lo, hi]`. The default for numeric attributes; the
    /// bounds keep generated values small and readable.
    IntRange { lo: i64, hi: i64 },
    /// An enumerated set of concrete values (all of one type). Generated
    /// values must be one of these. This is how input-database value reuse
    /// (§VI-A) and string attributes are expressed.
    Enumerated(Vec<Value>),
}

impl Domain {
    /// Default integer domain: small non-negative values, per the paper's
    /// goal of small and intuitive test cases.
    pub fn default_int() -> Domain {
        Domain::IntRange { lo: 0, hi: 1_000 }
    }

    /// Number of distinct values, if finite and enumerable cheaply.
    pub fn size(&self) -> Option<usize> {
        match self {
            Domain::IntRange { lo, hi } => usize::try_from(hi - lo + 1).ok(),
            Domain::Enumerated(vs) => Some(vs.len()),
        }
    }

    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::IntRange { lo, hi } => match v {
                Value::Int(i) => *lo <= *i && *i <= *hi,
                Value::Double(d) => *lo as f64 <= *d && *d <= *hi as f64,
                _ => false,
            },
            Domain::Enumerated(vs) => vs.iter().any(|x| x.group_eq(v)),
        }
    }
}

/// Domains for every attribute of a schema, keyed by
/// `(relation name, column position)`.
#[derive(Debug, Clone, Default)]
pub struct DomainCatalog {
    domains: BTreeMap<(String, usize), Domain>,
    /// Indirection from attribute to its dictionary: attributes with the
    /// same dictionary key share codes.
    dict_key: BTreeMap<(String, usize), String>,
    /// Dictionary of human-readable string values per dictionary key; the
    /// i-th entry decodes code `i`.
    dictionaries: BTreeMap<String, Vec<String>>,
}

/// Fallback dictionary used for string attributes with no supplied values;
/// mirrors the paper's "small and intuitive" datasets.
const DEFAULT_STRINGS: [&str; 12] = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
    "kilo", "lima",
];

impl DomainCatalog {
    /// Build default domains for `schema`: numeric attributes get
    /// [`Domain::default_int`], string attributes get a generic dictionary
    /// shared across same-named attributes.
    pub fn defaults(schema: &Schema) -> Self {
        let mut cat = DomainCatalog::default();
        for rel in schema.relations() {
            for (pos, attr) in rel.attributes.iter().enumerate() {
                let key = (rel.name.clone(), pos);
                match attr.ty {
                    SqlType::Int | SqlType::Double => {
                        cat.domains.insert(key, Domain::default_int());
                    }
                    SqlType::Varchar => {
                        let dkey = attr.name.clone();
                        let dict: Vec<String> = DEFAULT_STRINGS
                            .iter()
                            .map(|s| format!("{}_{}", attr.name, s))
                            .collect();
                        let n = dict.len() as i64;
                        cat.dictionaries.entry(dkey.clone()).or_insert(dict);
                        cat.dict_key.insert(key.clone(), dkey);
                        cat.domains
                            .insert(key, Domain::Enumerated((0..n).map(Value::Int).collect()));
                    }
                }
            }
        }
        cat
    }

    /// Build domains whose values are exactly those present in `dataset`
    /// (the paper's default evaluation setting, §VI-C). Attributes with no
    /// values in the dataset keep their schema defaults.
    pub fn from_dataset(schema: &Schema, dataset: &Dataset) -> Self {
        let mut cat = Self::defaults(schema);
        // First pass: merge string values into shared dictionaries.
        let mut new_dicts: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for rel in schema.relations() {
            let Some(tuples) = dataset.relation(&rel.name) else { continue };
            for (pos, attr) in rel.attributes.iter().enumerate() {
                if attr.ty != SqlType::Varchar {
                    continue;
                }
                let dkey = cat
                    .dict_key
                    .get(&(rel.name.clone(), pos))
                    .cloned()
                    .unwrap_or_else(|| attr.name.clone());
                let entry = new_dicts.entry(dkey).or_default();
                for t in tuples {
                    if let Value::Str(s) = &t[pos] {
                        if !entry.contains(s) {
                            entry.push(s.clone());
                        }
                    }
                }
            }
        }
        for (dkey, mut dict) in new_dicts {
            if dict.is_empty() {
                continue;
            }
            dict.sort();
            cat.dictionaries.insert(dkey, dict);
        }
        // Second pass: per-attribute domains restricted to observed values.
        for rel in schema.relations() {
            let Some(tuples) = dataset.relation(&rel.name) else { continue };
            if tuples.is_empty() {
                continue;
            }
            for (pos, attr) in rel.attributes.iter().enumerate() {
                let key = (rel.name.clone(), pos);
                match attr.ty {
                    SqlType::Int | SqlType::Double => {
                        let mut vals: Vec<Value> = tuples
                            .iter()
                            .map(|t| t[pos].clone())
                            .filter(|v| !v.is_null())
                            .collect();
                        vals.sort();
                        vals.dedup();
                        if !vals.is_empty() {
                            cat.domains.insert(key, Domain::Enumerated(vals));
                        }
                    }
                    SqlType::Varchar => {
                        let mut codes: Vec<Value> = tuples
                            .iter()
                            .filter_map(|t| match &t[pos] {
                                Value::Str(s) => {
                                    cat.encode_string(&rel.name, pos, s).map(Value::Int)
                                }
                                _ => None,
                            })
                            .collect();
                        codes.sort();
                        codes.dedup();
                        if !codes.is_empty() {
                            cat.domains.insert(key, Domain::Enumerated(codes));
                        }
                    }
                }
            }
        }
        cat
    }

    pub fn set(&mut self, relation: &str, column: usize, domain: Domain) {
        self.domains.insert((relation.into(), column), domain);
    }

    /// Install a dictionary for a string attribute; other attributes sharing
    /// this attribute's dictionary key see the same values.
    pub fn set_dictionary(&mut self, relation: &str, column: usize, dict: Vec<String>) {
        let dkey = self
            .dict_key
            .get(&(relation.to_string(), column))
            .cloned()
            .unwrap_or_else(|| format!("{relation}.{column}"));
        let n = dict.len() as i64;
        self.dictionaries.insert(dkey.clone(), dict);
        self.dict_key.insert((relation.into(), column), dkey);
        self.domains.insert(
            (relation.into(), column),
            Domain::Enumerated((0..n).map(Value::Int).collect()),
        );
    }

    pub fn get(&self, relation: &str, column: usize) -> Option<&Domain> {
        self.domains.get(&(relation.to_string(), column))
    }

    fn dict_for(&self, relation: &str, column: usize) -> Option<&Vec<String>> {
        let dkey = self.dict_key.get(&(relation.to_string(), column))?;
        self.dictionaries.get(dkey)
    }

    /// Decode a solver integer for a string attribute back into a string;
    /// codes beyond the dictionary get a numeric suffix so decoding is total
    /// and injective.
    pub fn decode_string(&self, relation: &str, column: usize, code: i64) -> String {
        match self.dict_for(relation, column) {
            Some(dict) if !dict.is_empty() => {
                if code >= 0 && (code as usize) < dict.len() {
                    dict[code as usize].clone()
                } else {
                    let idx = code.rem_euclid(dict.len() as i64) as usize;
                    format!("{}#{}", dict[idx], code)
                }
            }
            _ => format!("str{code}"),
        }
    }

    /// Encode a string into its solver integer code, if it is in the
    /// dictionary.
    pub fn encode_string(&self, relation: &str, column: usize, s: &str) -> Option<i64> {
        self.dict_for(relation, column)?.iter().position(|d| d == s).map(|p| p as i64)
    }

    /// The full dictionary of a string attribute, in code order (empty when
    /// the attribute has no dictionary). Code `i` decodes to `dict[i]`, so
    /// callers can compute code sets from string predicates (e.g. which
    /// codes match a `LIKE` pattern).
    pub fn dictionary(&self, relation: &str, column: usize) -> &[String] {
        self.dict_for(relation, column).map(|d| d.as_slice()).unwrap_or(&[])
    }

    /// Merge the dictionaries of two string attributes so they share codes.
    /// Needed when a query equi-joins string attributes with *different*
    /// names (different default dictionaries): without a shared coding,
    /// integer equality in the solver would not correspond to string
    /// equality in the materialized dataset.
    ///
    /// Codes of `a`'s dictionary are preserved; codes of `b`'s dictionary
    /// are remapped (its enumerated domains are rewritten accordingly).
    pub fn merge_dictionaries(
        &mut self,
        rel_a: &str,
        col_a: usize,
        rel_b: &str,
        col_b: usize,
    ) {
        let key_a = (rel_a.to_string(), col_a);
        let key_b = (rel_b.to_string(), col_b);
        let ka = self.dict_key.get(&key_a).cloned().unwrap_or_else(|| format!("{rel_a}.{col_a}"));
        let kb = self.dict_key.get(&key_b).cloned().unwrap_or_else(|| format!("{rel_b}.{col_b}"));
        self.dict_key.insert(key_a, ka.clone());
        self.dict_key.insert(key_b, kb.clone());
        if ka == kb {
            return;
        }
        let da = self.dictionaries.remove(&ka).unwrap_or_default();
        let db = self.dictionaries.remove(&kb).unwrap_or_default();
        let da_len = da.len() as i64;
        let mut merged = da;
        // Remap table: old b-code -> new code in the merged dictionary.
        let mut remap: Vec<i64> = Vec::with_capacity(db.len());
        for s in db {
            let pos = match merged.iter().position(|x| *x == s) {
                Some(p) => p,
                None => {
                    merged.push(s);
                    merged.len() - 1
                }
            };
            remap.push(pos as i64);
        }
        let total = merged.len() as i64;
        self.dictionaries.insert(ka.clone(), merged);
        // Repoint kb-attributes to ka, remapping their enumerated domains.
        let kb_attrs: Vec<(String, usize)> = self
            .dict_key
            .iter()
            .filter(|(_, v)| **v == kb)
            .map(|(k, _)| k.clone())
            .collect();
        for attr in kb_attrs {
            self.dict_key.insert(attr.clone(), ka.clone());
            if let Some(Domain::Enumerated(vs)) = self.domains.get(&attr) {
                let mapped: Vec<Value> = vs
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) if *i >= 0 && (*i as usize) < remap.len() => {
                            Value::Int(remap[*i as usize])
                        }
                        other => other.clone(),
                    })
                    .collect();
                self.domains.insert(attr, Domain::Enumerated(mapped));
            }
        }
        // ka-attributes with full-dictionary domains widen to the merge.
        let ka_attrs: Vec<(String, usize)> = self
            .dict_key
            .iter()
            .filter(|(_, v)| **v == ka)
            .map(|(k, _)| k.clone())
            .collect();
        for attr in ka_attrs {
            let full_before_merge = match self.domains.get(&attr) {
                // "Full dictionary" = exactly the codes 0..da_len, in order.
                Some(Domain::Enumerated(vs)) => {
                    vs.len() as i64 == da_len
                        && vs.iter().enumerate().all(|(i, v)| *v == Value::Int(i as i64))
                }
                _ => true,
            };
            if full_before_merge {
                self.domains
                    .insert(attr, Domain::Enumerated((0..total).map(Value::Int).collect()));
            }
            // Otherwise: restricted domain (e.g. from an input database) —
            // keep the restriction; ka-codes are stable across the merge.
        }
    }

    /// Encode a string, appending it to the attribute's dictionary (and
    /// widening the attribute's enumerated domain) if absent. Used to make
    /// query string literals codable before constraint generation.
    pub fn ensure_string(&mut self, relation: &str, column: usize, s: &str) -> i64 {
        if let Some(code) = self.encode_string(relation, column, s) {
            return code;
        }
        let dkey = self
            .dict_key
            .get(&(relation.to_string(), column))
            .cloned()
            .unwrap_or_else(|| format!("{relation}.{column}"));
        self.dict_key.insert((relation.into(), column), dkey.clone());
        let dict = self.dictionaries.entry(dkey).or_default();
        dict.push(s.to_string());
        let code = dict.len() as i64 - 1;
        match self.domains.get_mut(&(relation.to_string(), column)) {
            Some(Domain::Enumerated(vs)) => vs.push(Value::Int(code)),
            _ => {
                self.domains.insert(
                    (relation.into(), column),
                    Domain::Enumerated((0..=code).map(Value::Int).collect()),
                );
            }
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Relation};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation(
            Relation::new(
                "r",
                vec![Attribute::new("id", SqlType::Int), Attribute::new("name", SqlType::Varchar)],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        s.add_relation(
            Relation::new(
                "s",
                vec![Attribute::new("k", SqlType::Int), Attribute::new("name", SqlType::Varchar)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn defaults_cover_all_attributes() {
        let cat = DomainCatalog::defaults(&schema());
        assert!(cat.get("r", 0).is_some());
        assert!(cat.get("r", 1).is_some());
        assert!(cat.get("s", 1).is_some());
    }

    #[test]
    fn same_named_attributes_share_dictionary() {
        let cat = DomainCatalog::defaults(&schema());
        // r.name and s.name must decode identically for string equi-joins.
        assert_eq!(cat.decode_string("r", 1, 3), cat.decode_string("s", 1, 3));
    }

    #[test]
    fn string_attributes_get_enumerated_codes() {
        let cat = DomainCatalog::defaults(&schema());
        match cat.get("r", 1).unwrap() {
            Domain::Enumerated(vs) => assert!(!vs.is_empty()),
            d => panic!("expected enumerated, got {d:?}"),
        }
        assert_ne!(cat.decode_string("r", 1, 0), cat.decode_string("r", 1, 1));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut cat = DomainCatalog::defaults(&schema());
        cat.set_dictionary("r", 1, vec!["CS".into(), "Biology".into()]);
        assert_eq!(cat.encode_string("r", 1, "Biology"), Some(1));
        assert_eq!(cat.decode_string("r", 1, 1), "Biology");
        assert_eq!(cat.encode_string("r", 1, "Physics"), None);
        // Shared via dictionary key "name":
        assert_eq!(cat.encode_string("s", 1, "CS"), Some(0));
    }

    #[test]
    fn from_dataset_restricts_int_domain() {
        let schema = schema();
        let mut ds = Dataset::new();
        ds.push("r", vec![Value::Int(7), Value::Str("CS".into())]);
        ds.push("r", vec![Value::Int(9), Value::Str("EE".into())]);
        let cat = DomainCatalog::from_dataset(&schema, &ds);
        match cat.get("r", 0).unwrap() {
            Domain::Enumerated(vs) => assert_eq!(vs, &vec![Value::Int(7), Value::Int(9)]),
            d => panic!("unexpected {d:?}"),
        }
        let code = cat.encode_string("r", 1, "EE").unwrap();
        assert_eq!(cat.decode_string("r", 1, code), "EE");
    }

    #[test]
    fn domain_contains() {
        let d = Domain::IntRange { lo: 0, hi: 10 };
        assert!(d.contains(&Value::Int(5)));
        assert!(!d.contains(&Value::Int(11)));
        assert!(!d.contains(&Value::Str("x".into())));
        let e = Domain::Enumerated(vec![Value::Int(1), Value::Int(2)]);
        assert!(e.contains(&Value::Int(2)));
        assert!(!e.contains(&Value::Int(3)));
    }

    #[test]
    fn merge_dictionaries_unifies_codes() {
        let mut cat = DomainCatalog::default();
        cat.set_dictionary("a", 0, vec!["x".into(), "y".into()]);
        cat.set_dictionary("b", 0, vec!["y".into(), "z".into()]);
        cat.merge_dictionaries("a", 0, "b", 0);
        // Same string → same code on both sides now.
        let ya = cat.encode_string("a", 0, "y").unwrap();
        let yb = cat.encode_string("b", 0, "y").unwrap();
        assert_eq!(ya, yb);
        // All three strings representable from either attribute.
        for s in ["x", "y", "z"] {
            assert_eq!(cat.encode_string("a", 0, s), cat.encode_string("b", 0, s), "{s}");
            assert!(cat.encode_string("a", 0, s).is_some(), "{s}");
        }
        // Decoding agrees.
        let zc = cat.encode_string("b", 0, "z").unwrap();
        assert_eq!(cat.decode_string("a", 0, zc), "z");
        // Idempotent.
        let before = cat.encode_string("a", 0, "z");
        cat.merge_dictionaries("a", 0, "b", 0);
        assert_eq!(cat.encode_string("a", 0, "z"), before);
    }

    #[test]
    fn merge_remaps_restricted_domains() {
        let mut cat = DomainCatalog::default();
        cat.set_dictionary("a", 0, vec!["x".into(), "y".into()]);
        cat.set_dictionary("b", 0, vec!["z".into(), "y".into()]);
        // Restrict b's domain to {code of "y"} = {1} pre-merge.
        cat.set("b", 0, Domain::Enumerated(vec![Value::Int(1)]));
        cat.merge_dictionaries("a", 0, "b", 0);
        // Post-merge "y" has a's code 1... and b's restricted domain must
        // point at the *new* code for "y".
        let y = cat.encode_string("b", 0, "y").unwrap();
        match cat.get("b", 0).unwrap() {
            Domain::Enumerated(vs) => assert_eq!(vs, &vec![Value::Int(y)]),
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn decode_is_total_beyond_dictionary() {
        let mut cat = DomainCatalog::defaults(&schema());
        cat.set_dictionary("r", 1, vec!["a".into(), "b".into()]);
        let wide = cat.decode_string("r", 1, 5);
        assert!(wide.contains('#'));
    }
}
