//! Reimplementation of the earlier approach of reference \[14\] (the ICDE
//! 2010 short paper), used as the comparison baseline in §VI-C.1.
//!
//! The old algorithm worked from an input database only: it found tuples
//! witnessing the original query's join result and emitted, per relation
//! occurrence, a dataset in which that relation is emptied while the other
//! relations keep their witness tuples (the "empty relation in E" trick of
//! §IV-B). It did **not** synthesize values with a constraint solver, did
//! not handle foreign keys, and therefore "was not always able to kill all
//! non-equivalent mutants, even without foreign keys" (§VI-C.1) — e.g. it
//! has no comparison-boundary or aggregate-duplicate datasets.

use xdata_catalog::{Dataset, Schema, Truth, Tuple, Value};
use xdata_relalg::{NormQuery, Operand, Pred};
use xdata_sql::CompareOp;

use crate::suite::{GeneratedDataset, TestSuite};

/// Generate the baseline test suite from an input database. Returns an
/// empty suite when the input database contains no witness for the query
/// result — the failure mode the paper describes.
pub fn baseline_generate(query: &NormQuery, schema: &Schema, input: &Dataset) -> TestSuite {
    let mut suite = TestSuite::default();
    let Some(witness) = find_witness(query, schema, input) else {
        return suite;
    };
    // Original-query dataset: the witness tuples themselves.
    let mut original = Dataset::with_label("baseline: original query witness");
    for (occ, t) in witness.iter().enumerate() {
        original.push(&query.occurrences[occ].base, t.clone());
    }
    original.dedup_primary_keys(schema);
    suite.datasets.push(GeneratedDataset {
        dataset: original,
        label: "baseline: original query witness".into(),
        stats: Default::default(),
    });
    // Per occurrence: empty that relation, keep the rest.
    for skip in 0..query.occurrences.len() {
        let label = format!("baseline: empty {}", query.occurrences[skip].name);
        let mut ds = Dataset::with_label(label.clone());
        ds.ensure_relation(&query.occurrences[skip].base);
        for (occ, t) in witness.iter().enumerate() {
            if occ != skip {
                ds.push(&query.occurrences[occ].base, t.clone());
            }
        }
        ds.dedup_primary_keys(schema);
        suite.datasets.push(GeneratedDataset { dataset: ds, label, stats: Default::default() });
    }
    suite
}

/// Find one tuple per occurrence from `input` satisfying all equivalence
/// classes and predicates (backtracking with early pruning).
fn find_witness(query: &NormQuery, schema: &Schema, input: &Dataset) -> Option<Vec<Tuple>> {
    let n = query.occurrences.len();
    let pools: Vec<&[Tuple]> = query
        .occurrences
        .iter()
        .map(|o| input.relation(&o.base).unwrap_or(&[]))
        .collect();
    if pools.iter().any(|p| p.is_empty()) {
        return None;
    }
    let _ = schema;
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    if search(query, &pools, &mut chosen) {
        Some(chosen.iter().enumerate().map(|(occ, &i)| pools[occ][i].clone()).collect())
    } else {
        None
    }
}

fn search(query: &NormQuery, pools: &[&[Tuple]], chosen: &mut Vec<usize>) -> bool {
    let occ = chosen.len();
    if occ == pools.len() {
        return true;
    }
    for i in 0..pools[occ].len() {
        chosen.push(i);
        if consistent(query, pools, chosen) && search(query, pools, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Check all conditions whose occurrences are all ≤ the chosen prefix.
fn consistent(query: &NormQuery, pools: &[&[Tuple]], chosen: &[usize]) -> bool {
    let have = chosen.len();
    let value = |occ: usize, col: usize| -> &Value { &pools[occ][chosen[occ]][col] };
    for ec in &query.eq_classes {
        let present: Vec<_> = ec.iter().filter(|a| a.occ < have).collect();
        for w in present.windows(2) {
            let a = value(w[0].occ, w[0].col);
            let b = value(w[1].occ, w[1].col);
            if a.sql_eq(b) != Truth::True {
                return false;
            }
        }
    }
    for p in &query.preds {
        if p.occurrences().iter().any(|&o| o >= have) {
            continue;
        }
        if !eval_pred(p, pools, chosen) {
            return false;
        }
    }
    true
}

fn eval_pred(p: &Pred, pools: &[&[Tuple]], chosen: &[usize]) -> bool {
    let operand = |o: &Operand| -> Value {
        match o {
            Operand::Const(v) => v.clone(),
            Operand::Attr { attr, offset } => {
                let v = &pools[attr.occ][chosen[attr.occ]][attr.col];
                if *offset == 0 {
                    v.clone()
                } else {
                    match v {
                        Value::Int(i) => Value::Int(i + offset),
                        Value::Double(d) => Value::Double(d + *offset as f64),
                        _ => Value::Null,
                    }
                }
            }
        }
    };
    let l = operand(&p.lhs);
    let r = operand(&p.rhs);
    match l.sql_cmp(&r) {
        None => false,
        Some(ord) => match p.op {
            CompareOp::Eq => ord == std::cmp::Ordering::Equal,
            CompareOp::Ne => ord != std::cmp::Ordering::Equal,
            CompareOp::Lt => ord == std::cmp::Ordering::Less,
            CompareOp::Le => ord != std::cmp::Ordering::Greater,
            CompareOp::Gt => ord == std::cmp::Ordering::Greater,
            CompareOp::Ge => ord != std::cmp::Ordering::Less,
        },
    }
}
