//! # xdata-core
//!
//! The primary contribution of *"Generating Test Data for Killing SQL
//! Mutants: A Constraint-based Approach"* (Shah, Sudarshan, Kajbaje,
//! Patidar, Gupta, Vira): given a query and a schema, generate a test
//! suite — a set of small datasets — that kills every non-equivalent mutant
//! in the paper's mutation space, using a number of datasets **linear** in
//! the query size even though the mutant space is exponential.
//!
//! The pipeline follows Algorithm 1 of the paper:
//!
//! 1. preprocess (equivalence classes, foreign-key closure — done by
//!    `xdata-relalg` and `xdata-catalog`);
//! 2. [`generate()`](generate::generate) a dataset satisfying the original query, so the tester
//!    sees a non-empty result and empty-result mutants die;
//! 3. `killEquivalenceClasses` (Algorithm 2) — for each element of each
//!    equivalence class, a dataset *nullifying* that attribute (together
//!    with all foreign keys referencing it) against the rest of the class;
//! 4. `killOtherPredicates` (Algorithm 3) — for each non-equijoin predicate
//!    and each participating relation, a dataset where no tuple of that
//!    relation satisfies the predicate;
//! 5. `killComparisonOperators` — three datasets (`=`, `<`, `>`) per
//!    comparison conjunct;
//! 6. `killAggregates` (Algorithm 4) — per aggregate, a dataset with three
//!    tuple sets (two duplicated values plus one distinct) per group.
//!
//! Constraint sets that come back **unsatisfiable are not errors**: they
//! identify equivalent mutant groups (§V-A), and the suite records them.
//!
//! The [`kill`] module wraps `xdata-engine` to evaluate a suite against the
//! full mutation space, reproducing the paper's evaluation loop; the
//! [`baseline`] module reimplements the earlier approach of reference \[14\]
//! (datasets drawn from an input database only, no constraint-solver
//! synthesis) for the §VI-C comparison.

pub mod baseline;
pub mod builder;
pub mod error;
pub mod generate;
pub mod grade;
pub mod having;
pub mod materialize;
pub mod minimize;
pub mod suite;
pub mod warm;

pub use error::GenError;
pub use generate::{generate, generate_cancellable, generate_warm};
pub use grade::{
    grade_batch, grade_batch_cancellable, grade_batch_warm, BatchGradeReport, CandidateOutcome,
    CandidateVerdict, GradeError,
};
pub use minimize::minimize_suite;
pub use suite::{
    FaultPlan, GenOptions, GeneratedDataset, SkipReason, SkippedTarget, SuiteStats, TestSuite,
};
pub use warm::WarmCache;
pub use xdata_par::CancelToken;

/// Re-export of the evaluation loop (suite × mutation space → kill matrix).
pub mod kill {
    pub use xdata_engine::kill::{
        execute_mutant, kill_report, kill_report_cancel, kill_report_jobs, kills, KillReport,
    };
}
