//! Constraint construction: the `cvcMap`/`genDBConstraints` machinery of
//! §V-A/§V-B, targeting `xdata-solver` instead of CVC3.
//!
//! One [`ConstraintBuilder`] builds the constraint problem for **one**
//! dataset:
//!
//! * one tuple array per participating base relation (query relations plus
//!   everything transitively reachable through foreign keys, §V-B);
//! * per relation, slots for each occurrence (×3 tuple-set copies for
//!   aggregate datasets) plus *repair* slots so a referenced key can be
//!   nullified while referencing tuples still find a (different) match;
//! * primary keys as functional-dependency (chase) constraints — footnote 3
//!   of the paper;
//! * foreign keys as bounded `∀∃` constraints (quantified, so the §VI-B
//!   unfolding experiment is meaningful);
//! * domain constraints for every attribute;
//! * optional input-database constraints (§VI-A).

use std::collections::{BTreeMap, BTreeSet};

use xdata_catalog::{Dataset, Domain, DomainCatalog, Schema, SqlType, Value};
use xdata_relalg::{AttrRef, NormQuery, Operand, Pred, SubCond, SubPred, SubqueryKind};
use xdata_sql::CompareOp;
use xdata_solver::{membership_formula, ArrayId, Atom, Formula, LikePattern, Problem, RelOp, Term};

use crate::error::GenError;

/// Upper bound on repair slots per relation: keeps constraint problems
/// small even for deep foreign-key chains; enough for every query shape in
/// the paper's evaluation.
pub const MAX_REPAIR_SLOTS: u32 = 6;

/// Repair-capacity ladder for iterative deepening: most targets are
/// satisfiable with at most one repair tuple per relation, so the generator
/// tries small tuple arrays first and widens only on UNSAT. Only an UNSAT
/// at the full capacity is reported as "equivalent mutant".
pub const REPAIR_LADDER: [u32; 3] = [1, 3, MAX_REPAIR_SLOTS];

/// Integer code standing for SQL NULL in the solver (§V-H nullable foreign
/// keys). Outside every attribute domain, so it can never be produced by
/// accident; materialization decodes it back to [`Value::Null`].
pub const NULL_SENTINEL: i64 = -1_000_000;

/// Cloneable so a fully-built base skeleton (arrays + database
/// constraints) can be cached per `(copies, repair_cap)` and cloned out to
/// each solve target instead of being rebuilt from scratch per target.
#[derive(Clone)]
pub struct ConstraintBuilder<'a> {
    pub schema: &'a Schema,
    pub query: &'a NormQuery,
    pub domains: &'a DomainCatalog,
    /// Tuple-set copies per occurrence (1 normally, 3 for Algorithm 4).
    pub copies: u32,
    pub problem: Problem,
    arrays: BTreeMap<String, ArrayId>,
    /// occurrence → first slot index (copies are consecutive).
    occ_slot: Vec<u32>,
    /// relation → (first repair slot, slot count).
    slot_info: BTreeMap<String, (u32, u32)>,
    /// Relations whose tuples are pinned to an input database; their
    /// enumerated domain constraints are redundant (the tuple-level
    /// constraint subsumes them) and skipped.
    input_pinned: BTreeSet<String>,
    /// `(relation, column)` pairs whose domain admits [`NULL_SENTINEL`]:
    /// nullable foreign-key columns (§V-H, where the sentinel also exempts
    /// the tuple from the FK reference requirement), plus nullable
    /// NULL-checked attributes and nullable linked `IN`-subquery columns
    /// (so NULL-targeted datasets are expressible).
    nullable_fk_cols: BTreeSet<(String, usize)>,
    /// Subquery predicate → first reserved witness slot in its base
    /// relation's array (`copies` membership/existence witnesses, then one
    /// NULL-membership slot).
    sub_witness: Vec<u32>,
}

impl<'a> ConstraintBuilder<'a> {
    /// Build with the default (maximum) repair capacity.
    pub fn new(
        schema: &'a Schema,
        query: &'a NormQuery,
        domains: &'a DomainCatalog,
        copies: u32,
    ) -> Result<Self, GenError> {
        Self::with_repair_cap(schema, query, domains, copies, MAX_REPAIR_SLOTS)
    }

    /// Build with an explicit repair-slot cap (iterative deepening rung).
    pub fn with_repair_cap(
        schema: &'a Schema,
        query: &'a NormQuery,
        domains: &'a DomainCatalog,
        copies: u32,
        repair_cap: u32,
    ) -> Result<Self, GenError> {
        let mut problem = Problem::new();
        // Participating relations: occurrence bases, subquery bases, plus
        // FK-reachable.
        let bases: BTreeSet<String> = query
            .occurrences
            .iter()
            .map(|o| o.base.clone())
            .chain(query.subs.iter().map(|s| s.base.clone()))
            .collect();
        let participating = schema.fk_reachable(&bases);

        // Slot counts: occurrence slots, then subquery witness slots, then
        // repair slots sized by the referencing relations (fixpoint over
        // the FK graph, capped).
        let mut occ_count: BTreeMap<&str, u32> = BTreeMap::new();
        for o in &query.occurrences {
            *occ_count.entry(o.base.as_str()).or_insert(0) += 1;
        }
        // Each subquery predicate reserves *ground* witness slots in its
        // base relation: one membership/existence witness per tuple-set
        // copy plus one NULL-membership slot. Ground (not
        // quantifier-chosen) because materialization keeps exactly the
        // occupied prefix — a witness picked by the solver among repair
        // slots could be dropped.
        let mut wit_count: BTreeMap<&str, u32> = BTreeMap::new();
        for s in &query.subs {
            *wit_count.entry(s.base.as_str()).or_insert(0) += copies + 1;
        }
        let occupied = |r: &str| -> u32 {
            occ_count.get(r).copied().unwrap_or(0) * copies
                + wit_count.get(r).copied().unwrap_or(0)
        };
        let mut slots: BTreeMap<String, u32> =
            participating.iter().map(|r| (r.clone(), occupied(r))).collect();
        // Worst case every referencing tuple needs its own referenced
        // tuple, so repair capacity is the *sum* over incoming FKs of the
        // referencing relation's slot count (capped — see MAX_REPAIR_SLOTS).
        for _ in 0..participating.len() {
            let snapshot = slots.clone();
            for to in &participating {
                let need: u32 = schema
                    .fks_to(to)
                    .filter(|fk| participating.contains(&fk.from))
                    .map(|fk| snapshot.get(&fk.from).copied().unwrap_or(0))
                    .sum();
                let base_occ = occupied(to);
                let entry = slots.get_mut(to).expect("participating");
                *entry = (*entry).max(base_occ + need.min(repair_cap));
            }
        }

        let mut arrays = BTreeMap::new();
        let mut slot_info = BTreeMap::new();
        for rel_name in &participating {
            let rel = schema
                .relation(rel_name)
                .ok_or_else(|| GenError::Internal(format!("relation `{rel_name}` vanished")))?;
            let total = (*slots.get(rel_name).expect("sized")).max(1);
            let occ_slots = occupied(rel_name);
            let id = problem.add_array(rel_name.clone(), total, rel.arity() as u32);
            arrays.insert(rel_name.clone(), id);
            slot_info.insert(rel_name.clone(), (occ_slots, total));
        }

        // Occurrence → slot assignment (per base, in occurrence order).
        let mut next: BTreeMap<&str, u32> = BTreeMap::new();
        let mut occ_slot = Vec::with_capacity(query.occurrences.len());
        for o in &query.occurrences {
            let n = next.entry(o.base.as_str()).or_insert(0);
            occ_slot.push(*n);
            *n += copies;
        }
        // Subquery witness slots follow all occurrence slots of their base
        // relation, in subquery order.
        let mut wit_next: BTreeMap<&str, u32> = BTreeMap::new();
        let mut sub_witness = Vec::with_capacity(query.subs.len());
        for s in &query.subs {
            let occ_slots = occ_count.get(s.base.as_str()).copied().unwrap_or(0) * copies;
            let n = wit_next.entry(s.base.as_str()).or_insert(0);
            sub_witness.push(occ_slots + *n);
            *n += copies + 1;
        }

        let mut nullable_fk_cols = BTreeSet::new();
        for fk in schema.foreign_keys() {
            if let Some(rel) = schema.relation(&fk.from) {
                for c in &fk.from_cols {
                    if rel.attr(*c).nullable {
                        nullable_fk_cols.insert((fk.from.clone(), *c));
                    }
                }
            }
        }
        // NULL-targeted positions the query reasons about get the sentinel
        // admitted into their domain too: nullable NULL-checked attributes
        // and nullable linked `IN`-subquery columns.
        for n in &query.null_checks {
            let base = &query.occurrences[n.attr.occ].base;
            if let Some(rel) = schema.relation(base) {
                if n.attr.col < rel.arity() && rel.attr(n.attr.col).nullable {
                    nullable_fk_cols.insert((base.clone(), n.attr.col));
                }
            }
        }
        for s in &query.subs {
            if let Some((_, col)) = &s.link {
                if let Some(rel) = schema.relation(&s.base) {
                    if *col < rel.arity() && rel.attr(*col).nullable {
                        nullable_fk_cols.insert((s.base.clone(), *col));
                    }
                }
            }
        }

        Ok(ConstraintBuilder {
            schema,
            query,
            domains,
            copies,
            problem,
            arrays,
            occ_slot,
            slot_info,
            input_pinned: BTreeSet::new(),
            nullable_fk_cols,
            sub_witness,
        })
    }

    /// The tuple array of base relation `rel`.
    pub fn array(&self, rel: &str) -> ArrayId {
        self.arrays[rel]
    }

    pub fn participating(&self) -> impl Iterator<Item = (&str, ArrayId)> {
        self.arrays.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Slot of `occ`'s tuple for copy `c` — the paper's `currentIndex` map.
    pub fn slot(&self, occ: usize, copy: u32) -> u32 {
        debug_assert!(copy < self.copies);
        self.occ_slot[occ] + copy
    }

    /// `cvcMap`: the solver term for an occurrence attribute (copy `c`).
    pub fn cvc_map(&self, a: AttrRef, copy: u32) -> Term {
        let base = &self.query.occurrences[a.occ].base;
        Term::field(self.arrays[base], self.slot(a.occ, copy), a.col as u32)
    }

    /// Encode a predicate operand.
    fn operand_term(&self, o: &Operand, other: &Operand, copy: u32) -> Result<Term, GenError> {
        match o {
            Operand::Attr { attr, offset } => Ok(self.cvc_map(*attr, copy).plus(*offset)),
            Operand::Const(v) => self.const_term(v, other),
        }
    }

    /// Encode a constant; string literals are coded through the dictionary
    /// of the attribute on the other side of the comparison.
    fn const_term(&self, v: &Value, other: &Operand) -> Result<Term, GenError> {
        match v {
            Value::Int(i) => Ok(Term::Const(*i)),
            Value::Double(d) => Ok(Term::Const(*d as i64)),
            Value::Str(s) => {
                let attr = other
                    .attr_ref()
                    .ok_or_else(|| GenError::UncodedString(s.clone()))?;
                let occ = &self.query.occurrences[attr.occ];
                self.domains
                    .encode_string(&occ.base, attr.col, s)
                    .map(Term::Const)
                    .ok_or_else(|| GenError::UncodedString(s.clone()))
            }
            Value::Null => Err(GenError::Internal("NULL literal in predicate (A6)".into())),
        }
    }

    fn relop(op: CompareOp) -> RelOp {
        match op {
            CompareOp::Eq => RelOp::Eq,
            CompareOp::Ne => RelOp::Ne,
            CompareOp::Lt => RelOp::Lt,
            CompareOp::Le => RelOp::Le,
            CompareOp::Gt => RelOp::Gt,
            CompareOp::Ge => RelOp::Ge,
        }
    }

    /// `cvcMap(Pred)`: the predicate as a ground formula over copy `c`,
    /// optionally with a different comparison operator (for the
    /// comparison-mutant datasets).
    pub fn pred_formula(&self, p: &Pred, copy: u32) -> Result<Formula, GenError> {
        self.pred_formula_with_op(p, p.op, copy)
    }

    pub fn pred_formula_with_op(
        &self,
        p: &Pred,
        op: CompareOp,
        copy: u32,
    ) -> Result<Formula, GenError> {
        let l = self.operand_term(&p.lhs, &p.rhs, copy)?;
        let r = self.operand_term(&p.rhs, &p.lhs, copy)?;
        Ok(Formula::Atom(Atom::new(l, Self::relop(op), r)))
    }

    /// `generateEqConds`: chain equalities over an equivalence class.
    pub fn eq_conds(&self, members: &[AttrRef], copy: u32) -> Formula {
        Formula::and(members.windows(2).map(|w| {
            Formula::Atom(Atom::new(
                self.cvc_map(w[0], copy),
                RelOp::Eq,
                self.cvc_map(w[1], copy),
            ))
        }))
    }

    /// `NOT EXISTS i : base(target)[i].col = value` — nullify `target`'s
    /// base relation on the given value (§V-C).
    pub fn not_exists_value(&mut self, target: AttrRef, value: Term) -> Formula {
        let base = &self.query.occurrences[target.occ].base;
        let arr = self.arrays[base];
        let q = self.problem.fresh_qvar();
        Formula::not_exists(
            q,
            arr,
            Formula::Atom(Atom::new(Term::qfield(arr, q, target.col as u32), RelOp::Eq, value)),
        )
    }

    /// `genNotExists(p, r)`: no tuple of occurrence `r`'s base relation
    /// satisfies `p` when `r`'s attributes range over the whole array and
    /// the other occurrences keep their assigned tuples (§V-D).
    pub fn gen_not_exists(&mut self, p: &Pred, r: usize, copy: u32) -> Result<Formula, GenError> {
        let base = &self.query.occurrences[r].base;
        let arr = self.arrays[base];
        let q = self.problem.fresh_qvar();
        let term_of = |o: &Operand, other: &Operand, b: &mut Self| -> Result<Term, GenError> {
            match o {
                Operand::Attr { attr, offset } if attr.occ == r => {
                    Ok(Term::qfield(arr, q, attr.col as u32).plus(*offset))
                }
                _ => b.operand_term(o, other, copy),
            }
        };
        let l = term_of(&p.lhs, &p.rhs, self)?;
        let rt = term_of(&p.rhs, &p.lhs, self)?;
        Ok(Formula::not_exists(
            q,
            arr,
            Formula::Atom(Atom::new(l, Self::relop(p.op), rt)),
        ))
    }

    // ----- extended query classes: subqueries, LIKE, NULL checks --------

    /// Witness slot of subquery predicate `si` for copy `copy`.
    pub fn sub_witness_slot(&self, si: usize, copy: u32) -> u32 {
        debug_assert!(copy < self.copies);
        self.sub_witness[si] + copy
    }

    /// The spare NULL-membership slot of subquery predicate `si`.
    pub fn sub_null_slot(&self, si: usize) -> u32 {
        self.sub_witness[si] + self.copies
    }

    /// Guard `t ≠ NULL_SENTINEL`, emitted only for columns whose domain
    /// admits the sentinel (everywhere else it would be vacuous).
    fn not_null_guard(&self, rel: &str, col: usize, t: Term) -> Option<Formula> {
        self.nullable_fk_cols
            .contains(&(rel.to_string(), col))
            .then(|| Formula::atom(t, RelOp::Ne, Term::Const(NULL_SENTINEL)))
    }

    /// The rhs of a subquery condition as a solver term; string literals
    /// are coded through the subquery column's dictionary.
    fn sub_rhs_term(&self, sub: &SubPred, c: &SubCond, copy: u32) -> Result<Term, GenError> {
        match &c.rhs {
            Operand::Attr { attr, offset } => Ok(self.cvc_map(*attr, copy).plus(*offset)),
            Operand::Const(v) => self.encode_value(&sub.base, c.col, v).map(Term::Const),
        }
    }

    /// The engine counts a subquery tuple only when its conditions are
    /// *definitely* true (3VL), so the body conjoins every condition with
    /// NULL-sentinel guards on each nullable column involved — keeping
    /// solver truth aligned with engine truth.
    fn sub_conds_body(
        &self,
        sub: &SubPred,
        col_term: &dyn Fn(usize) -> Term,
        copy: u32,
    ) -> Result<Formula, GenError> {
        let mut parts = Vec::new();
        for c in &sub.conds {
            let l = col_term(c.col);
            let r = self.sub_rhs_term(sub, c, copy)?;
            parts.push(Formula::atom(l, Self::relop(c.op), r));
            if let Some(g) = self.not_null_guard(&sub.base, c.col, l) {
                parts.push(g);
            }
            if let Operand::Attr { attr, .. } = &c.rhs {
                let base = &self.query.occurrences[attr.occ].base;
                let raw = self.cvc_map(*attr, copy);
                if let Some(g) = self.not_null_guard(base, attr.col, raw) {
                    parts.push(g);
                }
            }
        }
        Ok(Formula::and(parts))
    }

    /// The linked outer operand of an `IN` subquery as a term, plus a NULL
    /// guard on its raw attribute when nullable (a NULL probe value makes
    /// neither `IN` nor `NOT IN` definitely true).
    fn sub_link_term(
        &self,
        sub: &SubPred,
        col: usize,
        copy: u32,
    ) -> Result<(Term, Option<Formula>), GenError> {
        let (link, _) = sub.link.as_ref().expect("linked subquery");
        match link {
            Operand::Attr { attr, offset } => {
                let raw = self.cvc_map(*attr, copy);
                let base = &self.query.occurrences[attr.occ].base;
                let g = self.not_null_guard(base, attr.col, raw);
                Ok((raw.plus(*offset), g))
            }
            Operand::Const(v) => Ok((Term::Const(self.encode_value(&sub.base, col, v)?), None)),
        }
    }

    /// Assert subquery predicate `si` under connective `(kind, negated)`
    /// for copy `copy` — possibly *not* the query's own connective (the
    /// flipped and distinguishing targets perturb it).
    ///
    /// Positive forms ground their witness at the predicate's reserved
    /// slot; negative forms quantify over the whole array (witness and
    /// repair slots included, so stray tuples cannot re-satisfy the
    /// condition). `NOT IN` additionally excludes a NULL in the linked
    /// column among condition-true tuples — the SQL trap where a single
    /// NULL member turns `NOT IN` into UNKNOWN for every probe.
    pub fn assert_subpred(
        &mut self,
        si: usize,
        kind: SubqueryKind,
        negated: bool,
        copy: u32,
    ) -> Result<(), GenError> {
        let query = self.query;
        let sub = &query.subs[si];
        let arr = self.arrays[&sub.base];
        match (kind, sub.link.as_ref()) {
            (SubqueryKind::In, Some((_, col))) => {
                let col = *col;
                if !negated {
                    let (x, x_guard) = self.sub_link_term(sub, col, copy)?;
                    let w = self.sub_witness_slot(si, copy);
                    let body =
                        self.sub_conds_body(sub, &|c| Term::field(arr, w, c as u32), copy)?;
                    let wcol = Term::field(arr, w, col as u32);
                    self.problem.assert(body);
                    self.problem.assert(Formula::atom(wcol, RelOp::Eq, x));
                    if let Some(g) = self.not_null_guard(&sub.base, col, wcol) {
                        self.problem.assert(g);
                    }
                    if let Some(g) = x_guard {
                        self.problem.assert(g);
                    }
                } else {
                    self.assert_no_member(si, copy, true)?;
                }
            }
            // EXISTS — and the degenerate unlinked IN, which the engine
            // also evaluates existentially.
            _ => {
                if !negated {
                    let w = self.sub_witness_slot(si, copy);
                    let body =
                        self.sub_conds_body(sub, &|c| Term::field(arr, w, c as u32), copy)?;
                    self.problem.assert(body);
                } else {
                    let q = self.problem.fresh_qvar();
                    let body =
                        self.sub_conds_body(sub, &|c| Term::qfield(arr, q, c as u32), copy)?;
                    self.problem.assert(Formula::not_exists(q, arr, body));
                }
            }
        }
        Ok(())
    }

    /// No condition-true subquery row matches the linked value. With
    /// `exclude_null_members` this is the full `NOT IN` truth condition
    /// (a NULL member alone makes `NOT IN` UNKNOWN, never TRUE); without
    /// it, NULL members stay admissible — the negated-`IN` NULL witness
    /// uses that weaker form so the trap row can coexist with a probe
    /// that matches nothing.
    pub fn assert_no_member(
        &mut self,
        si: usize,
        copy: u32,
        exclude_null_members: bool,
    ) -> Result<(), GenError> {
        let query = self.query;
        let sub = &query.subs[si];
        let arr = self.arrays[&sub.base];
        let Some((_, col)) = sub.link.as_ref() else { return Ok(()) };
        let col = *col;
        let (x, x_guard) = self.sub_link_term(sub, col, copy)?;
        let q = self.problem.fresh_qvar();
        let body = self.sub_conds_body(sub, &|c| Term::qfield(arr, q, c as u32), copy)?;
        let qcol = Term::qfield(arr, q, col as u32);
        let mut hit = vec![Formula::atom(qcol, RelOp::Eq, x)];
        if exclude_null_members && self.nullable_fk_cols.contains(&(sub.base.clone(), col)) {
            hit.push(Formula::atom(qcol, RelOp::Eq, Term::Const(NULL_SENTINEL)));
        }
        self.problem.assert(Formula::not_exists(q, arr, Formula::and([body, Formula::or(hit)])));
        if let Some(g) = x_guard {
            self.problem.assert(g);
        }
        Ok(())
    }

    /// Ground the reserved NULL-membership row of `IN`-subquery `si`: it
    /// satisfies the subquery conditions and carries NULL in the linked
    /// column. Combined with a positive `IN` assertion the dataset
    /// exhibits the `NOT IN` NULL trap — flipping the connective returns
    /// no rows at all instead of the complement.
    pub fn assert_sub_null_row(&mut self, si: usize, copy: u32) -> Result<(), GenError> {
        let query = self.query;
        let sub = &query.subs[si];
        let Some((_, col)) = &sub.link else { return Ok(()) };
        let col = *col;
        let arr = self.arrays[&sub.base];
        let w = self.sub_null_slot(si);
        let body = self.sub_conds_body(sub, &|c| Term::field(arr, w, c as u32), copy)?;
        self.problem.assert(body);
        self.problem.assert(Formula::atom(
            Term::field(arr, w, col as u32),
            RelOp::Eq,
            Term::Const(NULL_SENTINEL),
        ));
        Ok(())
    }

    /// Pin the spare NULL-membership slot of subquery `si` to a non-NULL
    /// linked column. Every target except the NULL-membership witness
    /// itself asserts this, so that witness dataset is the only one in
    /// the suite carrying a NULL member — the trap demonstration stays
    /// unambiguous instead of leaking a stray NULL row everywhere.
    pub fn suppress_null_spare(&mut self, si: usize) {
        let query = self.query;
        let sub = &query.subs[si];
        let Some((_, col)) = &sub.link else { return };
        let col = *col;
        if !self.nullable_fk_cols.contains(&(sub.base.clone(), col)) {
            return;
        }
        let arr = self.arrays[&sub.base];
        let t = Term::field(arr, self.sub_null_slot(si), col as u32);
        self.problem.assert(Formula::atom(t, RelOp::Ne, Term::Const(NULL_SENTINEL)));
    }

    /// The dictionary code set of `attr`'s column matching a LIKE pattern.
    pub fn like_codes(&self, attr: AttrRef, pattern: &str) -> Vec<i64> {
        let base = &self.query.occurrences[attr.occ].base;
        LikePattern::parse(pattern).matching_codes(self.domains.dictionary(base, attr.col))
    }

    /// Constrain `attr` to lie inside (`negated = false`) or outside the
    /// given code set, with a NULL guard when the column admits the
    /// sentinel (`NULL LIKE p` is UNKNOWN either way — the engine filters
    /// such rows out, so a NULL assignment would miss the target).
    pub fn assert_membership(&mut self, attr: AttrRef, codes: &[i64], negated: bool, copy: u32) {
        let query = self.query;
        let t = self.cvc_map(attr, copy);
        let base = &query.occurrences[attr.occ].base;
        let f = membership_formula(t, codes, negated);
        self.problem.assert(f);
        if let Some(g) = self.not_null_guard(base, attr.col, t) {
            self.problem.assert(g);
        }
    }

    /// Assert `attr IS NULL` (`negated = false`) or `attr IS NOT NULL`.
    /// On a non-nullable column the IS-NULL form contradicts the domain —
    /// that UNSAT correctly classifies the flipped check as equivalent.
    pub fn assert_null_check(&mut self, attr: AttrRef, negated: bool, copy: u32) {
        let t = self.cvc_map(attr, copy);
        let op = if negated { RelOp::Ne } else { RelOp::Eq };
        self.problem.assert(Formula::atom(t, op, Term::Const(NULL_SENTINEL)));
    }

    /// `genDBConstraints`: primary keys (as functional dependencies),
    /// foreign keys (bounded `∀∃`), and attribute domains (§V-B).
    pub fn gen_db_constraints(&mut self) {
        let mut constraints: Vec<Formula> = Vec::new();
        // Primary keys: the functional dependency (chase) constraint as a
        // bounded ∀∀ — `∀i ∀j : R[i].key = R[j].key ⇒ R[i] = R[j]` — kept
        // quantified like the paper's CVC3 constraints so the §VI-B
        // unfolding experiment covers it ("Similar unfolding can be done
        // for primary key constraints").
        let pk_rels: Vec<(String, xdata_solver::ArrayId)> = self
            .arrays
            .iter()
            .filter(|(r, _)| {
                !self.schema.relation(r).expect("participating relation").primary_key.is_empty()
            })
            .map(|(r, a)| (r.clone(), *a))
            .collect();
        for (rel_name, arr) in pk_rels {
            let rel = self.schema.relation(&rel_name).expect("participating relation");
            let qi = self.problem.fresh_qvar();
            let qj = self.problem.fresh_qvar();
            let key_eq = Formula::and(rel.primary_key.iter().map(|k| {
                Formula::Atom(Atom::new(
                    Term::qfield(arr, qi, *k as u32),
                    RelOp::Eq,
                    Term::qfield(arr, qj, *k as u32),
                ))
            }));
            let all_eq = Formula::and((0..rel.arity()).map(|c| {
                Formula::Atom(Atom::new(
                    Term::qfield(arr, qi, c as u32),
                    RelOp::Eq,
                    Term::qfield(arr, qj, c as u32),
                ))
            }));
            constraints.push(Formula::forall(
                qi,
                arr,
                Formula::forall(qj, arr, Formula::or([Formula::not(key_eq), all_eq])),
            ));
        }
        // Symmetry breaking: repair slots of a relation are interchangeable
        // (they exist only to receive FK witnesses), so order them by their
        // first key column. Without this the DPLL search explores
        // factorially many permutations of identical repair assignments.
        for (rel_name, &arr) in &self.arrays {
            let rel = self.schema.relation(rel_name).expect("participating relation");
            let (occupied, total) = self.slot_info[rel_name];
            let order_col = rel.primary_key.first().copied().unwrap_or(0) as u32;
            for i in occupied..total.saturating_sub(1) {
                constraints.push(Formula::Atom(Atom::new(
                    Term::field(arr, i, order_col),
                    RelOp::Le,
                    Term::field(arr, i + 1, order_col),
                )));
            }
        }
        // Foreign keys: ∀ i ∈ R ∃ j ∈ S : R[i].fk = S[j].pk — kept
        // quantified so both solving modes exercise §VI-B.
        let fks: Vec<_> = self
            .schema
            .foreign_keys()
            .iter()
            .filter(|fk| self.arrays.contains_key(&fk.from) && self.arrays.contains_key(&fk.to))
            .cloned()
            .collect();
        for fk in fks {
            let rarr = self.arrays[&fk.from];
            let sarr = self.arrays[&fk.to];
            let qi = self.problem.fresh_qvar();
            let qj = self.problem.fresh_qvar();
            let body = Formula::and(fk.from_cols.iter().zip(&fk.to_cols).map(|(fc, tc)| {
                Formula::Atom(Atom::new(
                    Term::qfield(rarr, qi, *fc as u32),
                    RelOp::Eq,
                    Term::qfield(sarr, qj, *tc as u32),
                ))
            }));
            // §V-H: a nullable FK column may take NULL instead of
            // referencing (SQL MATCH SIMPLE: any NULL column exempts the
            // tuple).
            let null_escape = Formula::or(fk.from_cols.iter().filter_map(|fc| {
                if self.nullable_fk_cols.contains(&(fk.from.clone(), *fc)) {
                    Some(Formula::Atom(Atom::new(
                        Term::qfield(rarr, qi, *fc as u32),
                        RelOp::Eq,
                        Term::Const(NULL_SENTINEL),
                    )))
                } else {
                    None
                }
            }));
            constraints.push(Formula::forall(
                qi,
                rarr,
                Formula::or([null_escape, Formula::exists(qj, sarr, body)]),
            ));
        }
        // Domains for every slot and attribute.
        for (rel_name, &arr) in &self.arrays {
            let rel = self.schema.relation(rel_name).expect("participating relation");
            let (_, total) = self.slot_info[rel_name];
            let pinned = self.input_pinned.contains(rel_name);
            for slot in 0..total {
                for (col, _attr) in rel.attributes.iter().enumerate() {
                    if let Some(dom) = self.domains.get(rel_name, col) {
                        if pinned && matches!(dom, Domain::Enumerated(_)) {
                            // Subsumed by the input-tuple constraint.
                            continue;
                        }
                        let t = Term::field(arr, slot, col as u32);
                        let base = domain_formula(dom, t);
                        let f = if self.nullable_fk_cols.contains(&(rel_name.clone(), col)) {
                            Formula::or([
                                Formula::Atom(Atom::new(t, RelOp::Eq, Term::Const(NULL_SENTINEL))),
                                base,
                            ])
                        } else {
                            base
                        };
                        constraints.push(f);
                    }
                }
            }
        }
        for c in constraints {
            self.problem.assert(c);
        }
    }

    /// §VI-A: force each generated tuple to equal one of the tuples of the
    /// input database (for relations present there).
    pub fn gen_input_db_constraints(&mut self, input: &Dataset) -> Result<(), GenError> {
        // `∀i : R[i] ∈ input tuples of R` — quantified, like the paper's
        // "constraints to pick a subset from the input database" which
        // §VI-B unfolds alongside the key constraints.
        let rels: Vec<(String, xdata_solver::ArrayId)> =
            self.arrays.iter().map(|(r, a)| (r.clone(), *a)).collect();
        for (rel_name, arr) in rels {
            let Some(tuples) = input.relation(&rel_name) else { continue };
            if tuples.is_empty() {
                continue;
            }
            let qi = self.problem.fresh_qvar();
            let choices: Result<Vec<Formula>, GenError> = tuples
                .iter()
                .map(|t| {
                    let cols: Result<Vec<Formula>, GenError> = t
                        .iter()
                        .enumerate()
                        .map(|(col, v)| {
                            let coded = self.encode_value(&rel_name, col, v)?;
                            Ok(Formula::Atom(Atom::new(
                                Term::qfield(arr, qi, col as u32),
                                RelOp::Eq,
                                Term::Const(coded),
                            )))
                        })
                        .collect();
                    Ok(Formula::and(cols?))
                })
                .collect();
            let f = Formula::forall(qi, arr, Formula::or(choices?));
            self.problem.assert(f);
            self.input_pinned.insert(rel_name);
        }
        Ok(())
    }

    /// Integer coding of a concrete value for `rel.col`.
    pub fn encode_value(&self, rel: &str, col: usize, v: &Value) -> Result<i64, GenError> {
        match v {
            Value::Int(i) => Ok(*i),
            Value::Double(d) => Ok(*d as i64),
            Value::Str(s) => self
                .domains
                .encode_string(rel, col, s)
                .ok_or_else(|| GenError::UncodedString(s.clone())),
            Value::Null => Err(GenError::Internal("NULL in input database tuple".into())),
        }
    }

    /// Slot metadata for materialization: `(occupied occurrence slots,
    /// total slots)` of a relation.
    pub fn slots_of(&self, rel: &str) -> (u32, u32) {
        self.slot_info[rel]
    }

    /// The aggregated attribute's term in copy `c` (Algorithm 4 helper).
    pub fn agg_term(&self, a: AttrRef, copy: u32) -> Term {
        self.cvc_map(a, copy)
    }

    /// Attribute type lookup for an occurrence attribute.
    pub fn attr_type(&self, a: AttrRef) -> SqlType {
        let base = &self.query.occurrences[a.occ].base;
        self.schema.relation(base).expect("occurrence base").attr(a.col).ty
    }
}

fn domain_formula(dom: &Domain, t: Term) -> Formula {
    match dom {
        Domain::IntRange { lo, hi } => Formula::and([
            Formula::Atom(Atom::new(t, RelOp::Ge, Term::Const(*lo))),
            Formula::Atom(Atom::new(t, RelOp::Le, Term::Const(*hi))),
        ]),
        Domain::Enumerated(vals) => Formula::or(vals.iter().filter_map(|v| match v {
            Value::Int(i) => Some(Formula::Atom(Atom::new(t, RelOp::Eq, Term::Const(*i)))),
            Value::Double(d) if d.fract() == 0.0 => {
                Some(Formula::Atom(Atom::new(t, RelOp::Eq, Term::Const(*d as i64))))
            }
            _ => None,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_catalog::university;
    use xdata_relalg::normalize;
    use xdata_solver::{Mode, SolveOutcome};
    use xdata_sql::parse_query;

    fn setup(sql: &str, fks: usize) -> (Schema, NormQuery, DomainCatalog) {
        let schema = university::schema_with_fk_count(fks);
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        (schema, q, domains)
    }

    #[test]
    fn arrays_cover_fk_reachable_relations() {
        let (schema, q, domains) =
            setup("SELECT * FROM teaches t WHERE t.year = 2009", 2); // FKs into instructor+course
        let b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        let rels: Vec<&str> = b.participating().map(|(r, _)| r).collect();
        assert!(rels.contains(&"teaches"));
        assert!(rels.contains(&"instructor"), "pulled in via FK");
        assert!(rels.contains(&"course"), "pulled in via FK");
    }

    #[test]
    fn repeated_occurrences_share_array() {
        let (schema, q, domains) = setup(
            "SELECT * FROM instructor a, instructor b WHERE a.dept_id = b.dept_id",
            0,
        );
        let b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        assert_eq!(b.array("instructor"), b.array("instructor"));
        assert_ne!(b.slot(0, 0), b.slot(1, 0));
    }

    #[test]
    fn copies_get_consecutive_slots() {
        let (schema, q, domains) = setup("SELECT COUNT(salary) FROM instructor", 0);
        let b = ConstraintBuilder::new(&schema, &q, &domains, 3).unwrap();
        assert_eq!(b.slot(0, 0), 0);
        assert_eq!(b.slot(0, 1), 1);
        assert_eq!(b.slot(0, 2), 2);
    }

    #[test]
    fn db_constraints_satisfiable() {
        let (schema, q, domains) =
            setup("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 1);
        let mut b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        b.gen_db_constraints();
        // Query conditions too.
        let ec = q.eq_classes[0].clone();
        let f = b.eq_conds(&ec, 0);
        b.problem.assert(f);
        let (out, _) = b.problem.solve_checked(Mode::Unfold);
        assert!(out.is_sat());
    }

    #[test]
    fn pk_fd_constraint_enforced() {
        // Two occurrences of instructor forced to share the PK must agree
        // on every attribute.
        let (schema, q, domains) = setup(
            "SELECT * FROM instructor a, instructor b WHERE a.id = b.id",
            0,
        );
        let mut b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        b.gen_db_constraints();
        let ec = q.eq_classes[0].clone();
        let f = b.eq_conds(&ec, 0);
        b.problem.assert(f);
        // Force the two name columns to differ: contradiction with the FD.
        let t0 = b.cvc_map(AttrRef::new(0, 1), 0);
        let t1 = b.cvc_map(AttrRef::new(1, 1), 0);
        b.problem.assert(Formula::Atom(Atom::new(t0, RelOp::Ne, t1)));
        let (out, _) = b.problem.solve(Mode::Unfold);
        assert!(matches!(out, SolveOutcome::Unsat));
    }

    #[test]
    fn fk_with_nullification_is_unsat() {
        // Nullify instructor.id against teaches.id while the FK
        // teaches.id → instructor.id holds: Example 2's equivalent mutant.
        let (schema, q, domains) =
            setup("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 1);
        let mut b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        b.gen_db_constraints();
        // instructor.id is occ 0 col 0; teaches occurrence is occ 1.
        let teaches_id = b.cvc_map(AttrRef::new(1, 0), 0);
        let f = b.not_exists_value(AttrRef::new(0, 0), teaches_id);
        b.problem.assert(f);
        let (out, _) = b.problem.solve(Mode::Unfold);
        assert!(matches!(out, SolveOutcome::Unsat));
    }

    #[test]
    fn nullification_without_fk_is_sat() {
        let (schema, q, domains) =
            setup("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 0);
        let mut b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        b.gen_db_constraints();
        let teaches_id = b.cvc_map(AttrRef::new(1, 0), 0);
        let f = b.not_exists_value(AttrRef::new(0, 0), teaches_id);
        b.problem.assert(f);
        let (out, _) = b.problem.solve_checked(Mode::Unfold);
        assert!(out.is_sat());
    }

    #[test]
    fn string_literal_encodes_through_dictionary() {
        let (schema, q, mut domains) =
            setup("SELECT * FROM instructor WHERE name = 'Wu'", 0);
        domains.set_dictionary("instructor", 1, vec!["Wu".into(), "Mozart".into()]);
        let b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        let f = b.pred_formula(&q.preds[0], 0).unwrap();
        assert!(f.to_string().contains("= 0"), "{f}");
    }

    #[test]
    fn missing_string_literal_is_error() {
        let (schema, q, domains) =
            setup("SELECT * FROM instructor WHERE name = 'NotInDictionary'", 0);
        let b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        assert!(matches!(
            b.pred_formula(&q.preds[0], 0),
            Err(GenError::UncodedString(_))
        ));
    }

    #[test]
    fn input_db_constraints_pin_values() {
        let (schema, q, domains) = setup("SELECT * FROM advisor", 0);
        let mut input = Dataset::new();
        input.push("advisor", vec![Value::Int(7), Value::Int(13)]);
        let mut b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        b.gen_db_constraints();
        b.gen_input_db_constraints(&input).unwrap();
        let (out, _) = b.problem.solve(Mode::Unfold);
        match out {
            SolveOutcome::Sat(m) => {
                let arr = b.array("advisor");
                assert_eq!(m.get(arr, 0, 0), 7);
                assert_eq!(m.get(arr, 0, 1), 13);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn gen_not_exists_replaces_only_target_occurrence() {
        let (schema, q, domains) = setup(
            "SELECT * FROM teaches b, course c WHERE b.course_id = c.course_id + 10",
            0,
        );
        let mut b = ConstraintBuilder::new(&schema, &q, &domains, 1).unwrap();
        let p = q.preds[0].clone();
        // Nullify course (occ 1): teaches keeps its slot reference.
        let f = b.gen_not_exists(&p, 1, 0).unwrap();
        let s = f.to_string();
        assert!(s.contains("NOT"), "{s}");
        assert!(s.contains("q0"), "quantified index present: {s}");
    }
}
