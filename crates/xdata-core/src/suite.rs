//! Test-suite types and generation options.

use std::fmt;

use xdata_catalog::Dataset;
use xdata_solver::{Mode, SearchCore, SolverStats};

/// Options controlling generation.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Quantifier handling (§VI-B): `Unfold` is the paper's fast
    /// configuration, `Lazy` the "without unfolding" one.
    pub mode: Mode,
    /// Force generated tuples to be drawn from this input database (§VI-A).
    /// On inconsistency the generator retries without the restriction, as
    /// the paper describes.
    pub input_db: Option<Dataset>,
    /// Generate the three `=`, `<`, `>` datasets for attribute-vs-attribute
    /// comparisons too (a generalization of the paper's `A.x op val` case).
    pub compare_attr_pairs: bool,
    /// Worker threads for the solve phase: `1` (the default) is fully
    /// sequential, `0` means one per available core. Every value produces
    /// the identical suite — solve targets are independent and collected
    /// in plan order.
    pub jobs: usize,
    /// Decision budget per solve call. A target whose solve exhausts the
    /// budget is reported as skipped with [`SkipReason::Budget`] — never
    /// silently dropped. The default is high enough that the paper's
    /// workloads never hit it.
    pub decision_limit: u64,
    /// Ground search core: conflict-driven (the default) or the original
    /// chronological DPLL, kept as a baseline for `solver_sweep`.
    pub core: SearchCore,
    /// Solve targets through one incremental CDCL session per constraint
    /// skeleton shape (the default): the skeleton is lowered once, each
    /// target runs under per-target assumptions, and learned clauses,
    /// branching activities and saved phases carry over between targets.
    /// Only effective with [`SearchCore::Cdcl`] in [`Mode::Unfold`] and no
    /// [`GenOptions::input_db`]; other configurations solve each target
    /// from scratch. Set `false` to force fresh solves (the
    /// `--search-core cdcl` baseline).
    pub incremental: bool,
    /// Wall-clock budget in milliseconds for the whole generation run.
    /// When it expires the suite completes *partially*: targets not yet
    /// finished are reported as [`SkipReason::Timeout`], never silently
    /// dropped. `None` (the default) means no suite deadline.
    pub deadline_ms: Option<u64>,
    /// Wall-clock budget in milliseconds for each individual target. A
    /// target whose solve outlives it becomes a [`SkipReason::Timeout`]
    /// skip while the rest of the suite proceeds normally. `None` (the
    /// default) means no per-target deadline.
    pub per_target_deadline_ms: Option<u64>,
    /// Deterministic fault injection for the chaos harness (empty by
    /// default — zero cost in production). See [`FaultPlan`].
    pub faults: FaultPlan,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            mode: Mode::Unfold,
            input_db: None,
            compare_attr_pairs: true,
            jobs: 1,
            decision_limit: xdata_solver::DEFAULT_DECISION_LIMIT,
            core: SearchCore::default(),
            incremental: true,
            deadline_ms: None,
            per_target_deadline_ms: None,
            faults: FaultPlan::default(),
        }
    }
}

/// Deterministic fault injection, matched against target labels.
///
/// The chaos harness's entry point: each list holds substrings matched
/// against every plan item's label (`"aggregate"`, `"comparison 0"`, …).
/// A matching target deterministically misbehaves in the named way,
/// regardless of thread schedule — which is what lets the chaos tests
/// assert byte-identical partial suites across `--jobs` values:
///
/// * [`FaultPlan::panic_targets`] — the solve panics mid-flight; the
///   generator isolates it into a [`SkipReason::Fault`] skip.
/// * [`FaultPlan::unknown_targets`] — the solve reports a blown decision
///   budget ([`SkipReason::Budget`]) without doing any work.
/// * [`FaultPlan::expire_targets`] — the target's deadline "expires"
///   synthetically (the token is cancelled without any wall-clock wait),
///   producing a [`SkipReason::Timeout`] skip.
///
/// An empty plan (the default) injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Targets whose solve panics.
    pub panic_targets: Vec<String>,
    /// Targets whose solve exits `Unknown` (budget-style giving up).
    pub unknown_targets: Vec<String>,
    /// Targets whose cancellation token trips synthetically at solve entry.
    pub expire_targets: Vec<String>,
}

impl FaultPlan {
    /// Whether any fault is configured at all (fast path for production).
    pub fn is_empty(&self) -> bool {
        self.panic_targets.is_empty()
            && self.unknown_targets.is_empty()
            && self.expire_targets.is_empty()
    }

    fn matches(list: &[String], label: &str) -> bool {
        list.iter().any(|pat| label.contains(pat.as_str()))
    }

    /// Should `label`'s solve panic?
    pub fn should_panic(&self, label: &str) -> bool {
        Self::matches(&self.panic_targets, label)
    }

    /// Should `label`'s solve exit `Unknown`?
    pub fn should_unknown(&self, label: &str) -> bool {
        Self::matches(&self.unknown_targets, label)
    }

    /// Should `label`'s deadline expire synthetically?
    pub fn should_expire(&self, label: &str) -> bool {
        Self::matches(&self.expire_targets, label)
    }
}

/// One generated test case.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    pub dataset: Dataset,
    /// What this dataset targets, e.g. `nullify teaches.id (eq-class 0)`.
    pub label: String,
    /// Solver statistics for this dataset's constraint set.
    pub stats: SolverStats,
}

/// A targeted constraint set that was unsatisfiable — the signature of an
/// equivalent mutant group (§V-A).
#[derive(Debug, Clone)]
pub struct SkippedTarget {
    pub label: String,
    pub reason: SkipReason,
}

/// Why a target produced no dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// Constraints inconsistent: the targeted mutants are equivalent to the
    /// original query.
    Equivalent,
    /// The nullification set `P` was empty in Algorithm 2 (special-cased
    /// equivalence).
    EmptyP,
    /// The solver exhausted [`GenOptions::decision_limit`] without a
    /// verdict. Unlike the two equivalence reasons this says nothing about
    /// the mutants — the target needs a bigger budget, not a shrug.
    Budget {
        /// Decisions spent before giving up (summed over the repair ladder).
        decisions: u64,
    },
    /// The wall-clock deadline ([`GenOptions::deadline_ms`] or
    /// [`GenOptions::per_target_deadline_ms`]) expired before the target's
    /// solve finished. Like [`SkipReason::Budget`] this says nothing about
    /// the mutants — rerun with a bigger time budget.
    Timeout,
    /// The target's solve panicked (a solver bug, or injected by the chaos
    /// [`FaultPlan`]). The panic was isolated to this one target; the rest
    /// of the suite is unaffected.
    Fault {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl SkipReason {
    /// Whether this skip is a *degradation* — the pipeline gave up for
    /// resource or robustness reasons ([`SkipReason::Budget`],
    /// [`SkipReason::Timeout`], [`SkipReason::Fault`]) — as opposed to a
    /// genuine equivalence verdict ([`SkipReason::Equivalent`],
    /// [`SkipReason::EmptyP`]). A suite with any degradation skip is
    /// *partial*: its surviving mutants are unresolved, not proven
    /// equivalent.
    pub fn is_degradation(&self) -> bool {
        matches!(
            self,
            SkipReason::Budget { .. } | SkipReason::Timeout | SkipReason::Fault { .. }
        )
    }
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::Equivalent => write!(f, "constraints unsatisfiable (equivalent mutants)"),
            SkipReason::EmptyP => write!(f, "empty retained set P (equivalent mutants)"),
            SkipReason::Budget { decisions } => {
                write!(f, "solver gave up after {decisions} decisions (budget exhausted)")
            }
            SkipReason::Timeout => write!(f, "deadline expired before a verdict (timeout)"),
            SkipReason::Fault { message } => write!(f, "solve panicked: {message}"),
        }
    }
}

/// Aggregated statistics for a generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteStats {
    pub datasets: usize,
    pub skipped: usize,
    pub solver_decisions: u64,
    pub solver_conflicts: u64,
    pub ground_solves: u64,
    pub instantiations: u64,
}

/// The generated test suite.
#[derive(Debug, Clone, Default)]
pub struct TestSuite {
    pub datasets: Vec<GeneratedDataset>,
    pub skipped: Vec<SkippedTarget>,
}

impl TestSuite {
    pub fn stats(&self) -> SuiteStats {
        let mut s = SuiteStats {
            datasets: self.datasets.len(),
            skipped: self.skipped.len(),
            ..SuiteStats::default()
        };
        for d in &self.datasets {
            s.solver_decisions += d.stats.decisions;
            s.solver_conflicts += d.stats.conflicts;
            s.ground_solves += d.stats.ground_solves;
            s.instantiations += d.stats.instantiations;
        }
        s
    }

    /// Just the datasets, borrowed (for feeding the kill checker).
    pub fn data(&self) -> Vec<&Dataset> {
        self.datasets.iter().map(|d| &d.dataset).collect()
    }

    /// Largest dataset in the suite (tuples) — the paper's "small and
    /// intuitive" claim is about this number.
    pub fn max_dataset_size(&self) -> usize {
        self.datasets.iter().map(|d| d.dataset.total_tuples()).max().unwrap_or(0)
    }

    /// Whether any target was skipped for a degradation reason (budget,
    /// timeout, fault). A partial suite's kill verdicts are still sound for
    /// the datasets it *does* contain, but a surviving mutant is
    /// *unresolved*, not proven equivalent — the skipped targets might have
    /// killed it.
    pub fn is_partial(&self) -> bool {
        self.skipped.iter().any(|s| s.reason.is_degradation())
    }
}

impl fmt::Display for TestSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "test suite: {} datasets, {} equivalent-mutant groups skipped",
            self.datasets.len(), self.skipped.len())?;
        for (i, d) in self.datasets.iter().enumerate() {
            writeln!(f, "--- dataset {i}: {}", d.label)?;
            write!(f, "{}", d.dataset)?;
        }
        for s in &self.skipped {
            writeln!(f, "--- skipped: {} — {}", s.label, s.reason)?;
        }
        Ok(())
    }
}
