//! Test-suite types and generation options.

use std::fmt;

use xdata_catalog::Dataset;
use xdata_solver::{Mode, SearchCore, SolverStats};

/// Options controlling generation.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Quantifier handling (§VI-B): `Unfold` is the paper's fast
    /// configuration, `Lazy` the "without unfolding" one.
    pub mode: Mode,
    /// Force generated tuples to be drawn from this input database (§VI-A).
    /// On inconsistency the generator retries without the restriction, as
    /// the paper describes.
    pub input_db: Option<Dataset>,
    /// Generate the three `=`, `<`, `>` datasets for attribute-vs-attribute
    /// comparisons too (a generalization of the paper's `A.x op val` case).
    pub compare_attr_pairs: bool,
    /// Worker threads for the solve phase: `1` (the default) is fully
    /// sequential, `0` means one per available core. Every value produces
    /// the identical suite — solve targets are independent and collected
    /// in plan order.
    pub jobs: usize,
    /// Decision budget per solve call. A target whose solve exhausts the
    /// budget is reported as skipped with [`SkipReason::Budget`] — never
    /// silently dropped. The default is high enough that the paper's
    /// workloads never hit it.
    pub decision_limit: u64,
    /// Ground search core: conflict-driven (the default) or the original
    /// chronological DPLL, kept as a baseline for `solver_sweep`.
    pub core: SearchCore,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            mode: Mode::Unfold,
            input_db: None,
            compare_attr_pairs: true,
            jobs: 1,
            decision_limit: xdata_solver::DEFAULT_DECISION_LIMIT,
            core: SearchCore::default(),
        }
    }
}

/// One generated test case.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    pub dataset: Dataset,
    /// What this dataset targets, e.g. `nullify teaches.id (eq-class 0)`.
    pub label: String,
    /// Solver statistics for this dataset's constraint set.
    pub stats: SolverStats,
}

/// A targeted constraint set that was unsatisfiable — the signature of an
/// equivalent mutant group (§V-A).
#[derive(Debug, Clone)]
pub struct SkippedTarget {
    pub label: String,
    pub reason: SkipReason,
}

/// Why a target produced no dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// Constraints inconsistent: the targeted mutants are equivalent to the
    /// original query.
    Equivalent,
    /// The nullification set `P` was empty in Algorithm 2 (special-cased
    /// equivalence).
    EmptyP,
    /// The solver exhausted [`GenOptions::decision_limit`] without a
    /// verdict. Unlike the two equivalence reasons this says nothing about
    /// the mutants — the target needs a bigger budget, not a shrug.
    Budget {
        /// Decisions spent before giving up (summed over the repair ladder).
        decisions: u64,
    },
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::Equivalent => write!(f, "constraints unsatisfiable (equivalent mutants)"),
            SkipReason::EmptyP => write!(f, "empty retained set P (equivalent mutants)"),
            SkipReason::Budget { decisions } => {
                write!(f, "solver gave up after {decisions} decisions (budget exhausted)")
            }
        }
    }
}

/// Aggregated statistics for a generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteStats {
    pub datasets: usize,
    pub skipped: usize,
    pub solver_decisions: u64,
    pub solver_conflicts: u64,
    pub ground_solves: u64,
    pub instantiations: u64,
}

/// The generated test suite.
#[derive(Debug, Clone, Default)]
pub struct TestSuite {
    pub datasets: Vec<GeneratedDataset>,
    pub skipped: Vec<SkippedTarget>,
}

impl TestSuite {
    pub fn stats(&self) -> SuiteStats {
        let mut s = SuiteStats {
            datasets: self.datasets.len(),
            skipped: self.skipped.len(),
            ..SuiteStats::default()
        };
        for d in &self.datasets {
            s.solver_decisions += d.stats.decisions;
            s.solver_conflicts += d.stats.conflicts;
            s.ground_solves += d.stats.ground_solves;
            s.instantiations += d.stats.instantiations;
        }
        s
    }

    /// Just the datasets, borrowed (for feeding the kill checker).
    pub fn data(&self) -> Vec<&Dataset> {
        self.datasets.iter().map(|d| &d.dataset).collect()
    }

    /// Largest dataset in the suite (tuples) — the paper's "small and
    /// intuitive" claim is about this number.
    pub fn max_dataset_size(&self) -> usize {
        self.datasets.iter().map(|d| d.dataset.total_tuples()).max().unwrap_or(0)
    }
}

impl fmt::Display for TestSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "test suite: {} datasets, {} equivalent-mutant groups skipped",
            self.datasets.len(), self.skipped.len())?;
        for (i, d) in self.datasets.iter().enumerate() {
            writeln!(f, "--- dataset {i}: {}", d.label)?;
            write!(f, "{}", d.dataset)?;
        }
        for s in &self.skipped {
            writeln!(f, "--- skipped: {} — {}", s.label, s.reason)?;
        }
        Ok(())
    }
}
