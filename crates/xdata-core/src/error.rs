//! Generation errors.

use std::fmt;

/// Errors raised by the test-data generator. Note that an *unsatisfiable*
/// constraint set is not an error (it flags an equivalent mutant group);
/// these are genuine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The solver gave up (resource limit) — distinct from Unsat.
    SolverUnknown(String),
    /// A string literal in the query could not be coded into the domain
    /// dictionary (internal error — preparation extends dictionaries).
    UncodedString(String),
    /// Schema/query mismatch that slipped past normalization.
    Internal(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::SolverUnknown(what) => {
                write!(f, "solver resource limit exceeded while generating `{what}`")
            }
            GenError::UncodedString(s) => write!(f, "string literal `{s}` missing from dictionary"),
            GenError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for GenError {}
