//! Constraint generation for HAVING clauses (constrained aggregation) —
//! the extension the paper defers to future work (§II, §VII).
//!
//! The constraint language is integer difference logic, so aggregation
//! results cannot be expressed symbolically; instead we *construct* groups
//! whose aggregates take the needed values:
//!
//! * `COUNT` conjuncts fix the group size `k` (number of tuple-set copies);
//!   copies are made pairwise distinct and the group is isolated S3-style.
//! * `MIN`/`MAX` conjuncts pin one copy's value at the boundary and bound
//!   the rest.
//! * `SUM`/`AVG` conjuncts pin all copies to a common value `v` chosen so
//!   `k·v` (resp. `v`) satisfies the comparison.
//!
//! For join queries cross-copy matches can add extra group rows, so — like
//! the paper's own Algorithm 4 for joins under aggregation — this is
//! best-effort there and exact for single-relation groups.

use xdata_relalg::{AttrRef, HavingPred};
use xdata_sql::{AggOp, CompareOp};
use xdata_solver::{Atom, Formula, RelOp, Term};

use crate::builder::ConstraintBuilder;
use crate::error::GenError;

/// Largest group size we will construct for a COUNT conjunct.
pub const MAX_GROUP_SIZE: u32 = 5;

/// Candidate group sizes in preference order: when a conjunct aggregates a
/// *value* (SUM/AVG/MIN/MAX/COUNT(col)), prefer a 2-tuple group so the
/// eight operators take different values on it (a singleton group has
/// SUM = MIN = MAX = AVG, masking aggregate-operator mutants); otherwise
/// smallest-first.
fn size_candidates(having: &[HavingPred]) -> Vec<u32> {
    if having.iter().any(|h| h.arg.is_some()) {
        vec![2, 3, 4, MAX_GROUP_SIZE, 1]
    } else {
        (1..=MAX_GROUP_SIZE).collect()
    }
}

/// Choose the tuple-set copy count `k` so every conjunct is constructible;
/// `None` when no `k ≤ MAX_GROUP_SIZE` works (e.g. `COUNT(*) > 10`).
pub fn group_size_for(having: &[HavingPred]) -> Option<u32> {
    size_candidates(having)
        .into_iter()
        .find(|k| having.iter().all(|h| feasible_with(h, h.cmp, *k)))
}

/// Like [`group_size_for`] but with one conjunct's comparison overridden
/// (the `=`/`<`/`>` kill datasets).
pub fn group_size_with_override(
    having: &[HavingPred],
    idx: usize,
    cmp: CompareOp,
) -> Option<u32> {
    size_candidates(having).into_iter().find(|k| {
        having.iter().enumerate().all(|(i, h)| {
            let c = if i == idx { cmp } else { h.cmp };
            feasible_with(h, c, *k)
        })
    })
}

/// Whether conjunct `h` (with comparison `cmp`) is constructible with group
/// size `k`.
fn feasible_with(h: &HavingPred, cmp: CompareOp, k: u32) -> bool {
    let k = k as i64;
    let c = h.value;
    match h.func.op {
        AggOp::Count => cmp_holds(k, cmp, c),
        AggOp::Sum => match cmp {
            // All copies share value v: SUM = k·v. Equality needs k | c.
            CompareOp::Eq => c % k == 0,
            _ => true, // a suitable v always exists in ℤ (domain may refuse — solver decides)
        },
        AggOp::Avg | AggOp::Min | AggOp::Max => true,
    }
}

fn cmp_holds(a: i64, cmp: CompareOp, b: i64) -> bool {
    match cmp {
        CompareOp::Eq => a == b,
        CompareOp::Ne => a != b,
        CompareOp::Lt => a < b,
        CompareOp::Le => a <= b,
        CompareOp::Gt => a > b,
        CompareOp::Ge => a >= b,
    }
}

/// Assert constraints making all `having` conjuncts hold for the group
/// formed by the `k` copies, with conjunct `override_idx` (if any) using
/// `override_cmp` instead of its own comparison.
pub fn assert_having(
    b: &mut ConstraintBuilder<'_>,
    group_by: &[AttrRef],
    having: &[HavingPred],
    k: u32,
    override_: Option<(usize, CompareOp)>,
) -> Result<(), GenError> {
    // Pairwise-distinct copies so the group really has k members: for every
    // occurrence, each pair of copies differs in some attribute.
    if k > 1 {
        for occ in 0..b.query.occurrences.len() {
            let arity = b
                .schema
                .relation(&b.query.occurrences[occ].base)
                .expect("occurrence base")
                .arity();
            for i in 0..k {
                for j in (i + 1)..k {
                    let diff = Formula::or((0..arity).map(|col| {
                        Formula::Atom(Atom::new(
                            b.cvc_map(AttrRef::new(occ, col), i),
                            RelOp::Ne,
                            b.cvc_map(AttrRef::new(occ, col), j),
                        ))
                    }));
                    b.problem.assert(diff);
                }
            }
        }
    }
    // S3-style isolation: no tuple outside the copies shares the group-by
    // values, so the group contains exactly the k copies.
    for g in group_by {
        let witness = b.cvc_map(*g, 0);
        let base = b.query.occurrences[g.occ].base.clone();
        let arr = b.array(&base);
        let (_, total) = b.slots_of(&base);
        let own: Vec<u32> = (0..k).map(|c| b.slot(g.occ, c)).collect();
        for slot in 0..total {
            if own.contains(&slot) {
                continue;
            }
            b.problem.assert(Formula::Atom(Atom::new(
                Term::field(arr, slot, g.col as u32),
                RelOp::Ne,
                witness,
            )));
        }
    }
    for (i, h) in having.iter().enumerate() {
        let cmp = match override_ {
            Some((idx, c)) if idx == i => c,
            _ => h.cmp,
        };
        assert_conjunct(b, h, cmp, k)?;
    }
    Ok(())
}

fn assert_conjunct(
    b: &mut ConstraintBuilder<'_>,
    h: &HavingPred,
    cmp: CompareOp,
    k: u32,
) -> Result<(), GenError> {
    let c = h.value;
    match h.func.op {
        AggOp::Count => {
            // Group size already chosen; for COUNT(DISTINCT col) make the
            // argument pairwise distinct so the distinct count equals k.
            if let (true, Some(a)) = (h.func.distinct, h.arg) {
                for i in 0..k {
                    for j in (i + 1)..k {
                        b.problem.assert(Formula::Atom(Atom::new(
                            b.cvc_map(a, i),
                            RelOp::Ne,
                            b.cvc_map(a, j),
                        )));
                    }
                }
            }
            Ok(())
        }
        AggOp::Min | AggOp::Max => {
            let a = h.arg.ok_or_else(|| {
                GenError::Internal("MIN/MAX HAVING without argument".into())
            })?;
            // For MIN: pin copy 0 at the boundary, bound the others from
            // below; MAX mirrors with the orders flipped.
            let is_min = h.func.op == AggOp::Min;
            let (pin_op, rest_op) = match cmp {
                CompareOp::Eq | CompareOp::Le | CompareOp::Ge => (RelOp::Eq, bound_rest(is_min)),
                CompareOp::Lt => (RelOp::Lt, bound_rest(is_min)),
                CompareOp::Gt => (RelOp::Gt, bound_rest(is_min)),
                CompareOp::Ne => (RelOp::Gt, bound_rest(is_min)),
            };
            // pin: copy0.A pin_op c — for Le/Ge equality at the boundary
            // satisfies both; for Ne any strict side works (we pick >).
            let pin = match cmp {
                CompareOp::Le | CompareOp::Ge | CompareOp::Eq => RelOp::Eq,
                _ => pin_op,
            };
            b.problem.assert(Formula::Atom(Atom::new(b.cvc_map(a, 0), pin, Term::Const(c))));
            // rest: keep copy0 extremal.
            for i in 1..k {
                b.problem.assert(Formula::Atom(Atom::new(
                    b.cvc_map(a, i),
                    rest_op,
                    b.cvc_map(a, 0),
                )));
            }
            Ok(())
        }
        AggOp::Sum | AggOp::Avg => {
            let a = h.arg.ok_or_else(|| {
                GenError::Internal("SUM/AVG HAVING without argument".into())
            })?;
            let k64 = k as i64;
            // All copies share one value v, so SUM = k·v and AVG = v.
            for i in 1..k {
                b.problem.assert(Formula::Atom(Atom::new(
                    b.cvc_map(a, i),
                    RelOp::Eq,
                    b.cvc_map(a, 0),
                )));
            }
            let v0 = b.cvc_map(a, 0);
            let assert_v = |b: &mut ConstraintBuilder<'_>, op: RelOp, val: i64| {
                b.problem.assert(Formula::Atom(Atom::new(v0, op, Term::Const(val))));
            };
            if h.func.op == AggOp::Avg {
                assert_v(b, cmp_to_relop(cmp), c);
            } else {
                // SUM = k·v cmp c ⇒ bounds on v over the integers.
                match cmp {
                    CompareOp::Eq => assert_v(b, RelOp::Eq, c / k64),
                    CompareOp::Ne => assert_v(b, RelOp::Eq, c.div_euclid(k64) + 1),
                    CompareOp::Gt => assert_v(b, RelOp::Ge, c.div_euclid(k64) + 1),
                    CompareOp::Ge => assert_v(b, RelOp::Ge, (c + k64 - 1).div_euclid(k64)),
                    CompareOp::Lt => assert_v(b, RelOp::Le, (c - 1).div_euclid(k64)),
                    CompareOp::Le => assert_v(b, RelOp::Le, c.div_euclid(k64)),
                }
            }
            Ok(())
        }
    }
}

fn bound_rest(is_min: bool) -> RelOp {
    if is_min {
        RelOp::Ge // other copies ≥ the pinned minimum
    } else {
        RelOp::Le // other copies ≤ the pinned maximum
    }
}

fn cmp_to_relop(cmp: CompareOp) -> RelOp {
    match cmp {
        CompareOp::Eq => RelOp::Eq,
        CompareOp::Ne => RelOp::Ne,
        CompareOp::Lt => RelOp::Lt,
        CompareOp::Le => RelOp::Le,
        CompareOp::Gt => RelOp::Gt,
        CompareOp::Ge => RelOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_relalg::AggFunc;

    fn count_star(cmp: CompareOp, value: i64) -> HavingPred {
        HavingPred {
            func: AggFunc { op: AggOp::Count, distinct: false },
            arg: None,
            cmp,
            value,
        }
    }

    #[test]
    fn group_size_from_count() {
        assert_eq!(group_size_for(&[count_star(CompareOp::Eq, 3)]), Some(3));
        assert_eq!(group_size_for(&[count_star(CompareOp::Gt, 2)]), Some(3));
        assert_eq!(group_size_for(&[count_star(CompareOp::Ge, 2)]), Some(2));
        assert_eq!(group_size_for(&[count_star(CompareOp::Lt, 3)]), Some(1));
        assert_eq!(group_size_for(&[count_star(CompareOp::Ne, 1)]), Some(2));
        // Too large for construction.
        assert_eq!(group_size_for(&[count_star(CompareOp::Gt, 10)]), None);
        // Impossible: COUNT < 1 with a non-empty group.
        assert_eq!(group_size_for(&[count_star(CompareOp::Lt, 1)]), None);
    }

    #[test]
    fn group_size_respects_sum_divisibility() {
        let sum_eq_6 = HavingPred {
            func: AggFunc { op: AggOp::Sum, distinct: false },
            arg: Some(AttrRef::new(0, 0)),
            cmp: CompareOp::Eq,
            value: 6,
        };
        // k=2 preferred (value aggregates want multi-tuple groups; 6 % 2 = 0).
        assert_eq!(group_size_for(std::slice::from_ref(&sum_eq_6)), Some(2));
        // Combined with COUNT(*) = 4: k=4, 6 % 4 != 0 → infeasible.
        assert_eq!(
            group_size_for(&[sum_eq_6, count_star(CompareOp::Eq, 4)]),
            None
        );
    }

    #[test]
    fn override_changes_feasibility() {
        let h = [count_star(CompareOp::Gt, 4)];
        assert_eq!(group_size_for(&h), Some(5));
        // Overriding to `<` makes size 1 enough.
        assert_eq!(group_size_with_override(&h, 0, CompareOp::Lt), Some(1));
    }
}
