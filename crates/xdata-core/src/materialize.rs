//! Model → dataset materialization.
//!
//! Reads the solver model back into concrete tuples, decodes string codes
//! through the domain dictionaries, keeps only the repair tuples actually
//! needed for referential integrity, and eliminates duplicates in relations
//! with primary keys (§V-B).

use std::collections::BTreeSet;

use xdata_catalog::{Dataset, SqlType, Tuple, Value};
use xdata_solver::Model;

use crate::builder::ConstraintBuilder;

struct RelTuples {
    name: String,
    /// Occurrence-slot tuples (always kept).
    required: usize,
    tuples: Vec<Tuple>,
}

/// Build the dataset from a satisfying model.
pub fn materialize(b: &ConstraintBuilder<'_>, model: &Model, label: &str) -> Dataset {
    let mut rels: Vec<RelTuples> = Vec::new();
    for (rel_name, arr) in b.participating() {
        let rel = b.schema.relation(rel_name).expect("participating relation");
        let (occupied, total) = b.slots_of(rel_name);
        let mut tuples = Vec::with_capacity(total as usize);
        for slot in 0..total {
            let mut t: Tuple = Vec::with_capacity(rel.arity());
            for (col, attr) in rel.attributes.iter().enumerate() {
                let raw = model.get(arr, slot, col as u32);
                t.push(if raw == crate::builder::NULL_SENTINEL && attr.nullable {
                    Value::Null // §V-H nullable foreign-key column
                } else {
                    match attr.ty {
                        SqlType::Int => Value::Int(raw),
                        SqlType::Double => Value::Double(raw as f64),
                        SqlType::Varchar => {
                            Value::Str(b.domains.decode_string(rel_name, col, raw))
                        }
                    }
                });
            }
            tuples.push(t);
        }
        rels.push(RelTuples { name: rel_name.to_string(), required: occupied as usize, tuples });
    }

    // Start from the occurrence tuples and close under foreign keys:
    // a repair tuple is kept only when some kept tuple references it.
    let mut kept: Vec<BTreeSet<usize>> =
        rels.iter().map(|r| (0..r.required).collect()).collect();
    let rel_index = |name: &str| rels.iter().position(|r| r.name == name);
    loop {
        let mut added = false;
        for fk in b.schema.foreign_keys() {
            let (Some(fi), Some(ti)) = (rel_index(&fk.from), rel_index(&fk.to)) else {
                continue;
            };
            let from_kept: Vec<usize> = kept[fi].iter().copied().collect();
            for i in from_kept {
                let ft = &rels[fi].tuples[i];
                let key: Vec<Value> = fk.from_cols.iter().map(|c| ft[*c].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                let matches = |t: &Tuple| {
                    fk.to_cols.iter().zip(&key).all(|(c, k)| t[*c].group_eq(k))
                };
                if kept[ti].iter().any(|&j| matches(&rels[ti].tuples[j])) {
                    continue;
                }
                if let Some(j) =
                    (rels[ti].required..rels[ti].tuples.len()).find(|&j| matches(&rels[ti].tuples[j]))
                {
                    kept[ti].insert(j);
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }

    let mut ds = Dataset::with_label(label);
    for (ri, r) in rels.iter().enumerate() {
        ds.ensure_relation(&r.name);
        for &i in &kept[ri] {
            ds.push(&r.name, r.tuples[i].clone());
        }
    }
    ds.dedup_primary_keys(b.schema);
    ds
}
