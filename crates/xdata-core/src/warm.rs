//! Cross-request warm state: the solve memo and incremental-session store,
//! lifted out of a single [`generate`](crate::generate::generate) call so a
//! long-running process (the `xdata serve` daemon) can keep them hot across
//! requests and tenants.
//!
//! A batch CLI invocation builds the memo and the per-shape
//! [`SolveSession`]s, uses them for one suite, and throws them away at
//! process exit. [`WarmCache`] is the same state with a process-long
//! lifetime:
//!
//! * the **solve memo** maps a 128-bit structural problem hash (the PR 4
//!   key: mode, core, budget, array specs, ordered constraints) to its
//!   verdict, model values and solver stats. Entries are owned data, so
//!   they outlive the query/schema/domain borrows of the request that
//!   produced them;
//! * the **session store** keeps warm [`SolveSession`] engines (skeleton
//!   lowered once, learned clauses retained) keyed by the same context
//!   salt plus the `(copies, repair_cap)` skeleton shape.
//!
//! ## Tenant namespaces and the context salt
//!
//! Every key is prefixed with a **context salt** (`context_salt`): a hash
//! of the tenant namespace plus — when incremental sessions are active —
//! the query's structural fingerprint, the decision budget and the fault
//! plan. The salt is what makes cross-request reuse *sound*:
//!
//! * fresh (non-session) solves are pure functions of the problem, so any
//!   two requests of one tenant may share their outcomes — the salt is the
//!   namespace alone, and cross-query hits are allowed;
//! * session solves depend on the session's history (learned clauses carry
//!   over between targets), which is pinned to plan order *per query*. Two
//!   different queries — or the same query under a different budget or
//!   fault plan — would interleave different histories, so their salts
//!   differ and they never share memo entries or sessions.
//!
//! Tenants never share anything: a namespace mismatch changes every key.
//!
//! ## Concurrency: the per-salt run gate
//!
//! Two *concurrent* requests with the same salt would race their turn
//! gates on the shared sessions, interleaving target order and breaking
//! the byte-identical-to-cold contract. `WarmCache::lock_run` serializes
//! whole generation runs per salt (requests with different salts — other
//! tenants, other queries — run fully in parallel); the blocking solve
//! memo already serializes duplicate solves at the key level for
//! session-less runs. The warm determinism contract is therefore exactly
//! the batch one: for runs whose deadlines never fire, a warm request's
//! output is byte-identical to a cold in-process run with the same
//! arguments, whatever ran before it.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use xdata_relalg::fingerprint::structural_hash;
use xdata_relalg::NormQuery;
use xdata_solver::{Mode, Model, Problem, SearchCore, SolveOutcome, SolveSession, SolverStats};

use crate::suite::GenOptions;

/// Lock a mutex tolerating poison: the protected maps are only ever
/// mutated by whole-entry insert/remove, so a panic on another thread
/// cannot leave them in a torn state worth refusing to read.
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cross-target memo over complete solve calls.
///
/// Keyed by a 128-bit structural hash of the problem; the first thread to
/// claim a key marks it [`MemoEntry::Pending`] and computes, concurrent
/// arrivals with the same key block on the condvar until the value lands.
/// This blocking dedup is what keeps `core.solve_memo.hit`/`.miss` — and
/// the reused [`SolverStats`] — schedule-independent: each distinct key
/// misses exactly once however many threads race on it.
#[derive(Default)]
pub(crate) struct SolveMemo {
    pub(crate) map: Mutex<HashMap<(u64, u64), MemoEntry>>,
    pub(crate) done: Condvar,
}

pub(crate) enum MemoEntry {
    Pending,
    Done(MemoValue),
}

#[derive(Clone)]
pub(crate) struct MemoValue {
    pub(crate) outcome: MemoOutcome,
    pub(crate) stats: SolverStats,
}

/// [`SolveOutcome`] with the model flattened to raw values so it can be
/// stored and replayed against any structurally identical problem.
#[derive(Clone)]
pub(crate) enum MemoOutcome {
    Sat(Vec<i64>),
    Unsat,
    Unknown,
}

impl MemoOutcome {
    pub(crate) fn capture(out: &SolveOutcome) -> MemoOutcome {
        match out {
            SolveOutcome::Sat(m) => MemoOutcome::Sat(m.values().to_vec()),
            SolveOutcome::Unsat => MemoOutcome::Unsat,
            SolveOutcome::Unknown => MemoOutcome::Unknown,
            // `solve_memoized` filters Cancelled before capturing: a
            // withdrawn time budget is not a verdict and must not be reused.
            SolveOutcome::Cancelled => unreachable!("Cancelled outcomes are never memoized"),
        }
    }

    pub(crate) fn replay(&self, problem: &Problem) -> SolveOutcome {
        match self {
            MemoOutcome::Sat(values) => {
                SolveOutcome::Sat(Model::from_values(values.clone(), problem.var_table()))
            }
            MemoOutcome::Unsat => SolveOutcome::Unsat,
            MemoOutcome::Unknown => SolveOutcome::Unknown,
        }
    }
}

/// Drop guard owning a [`MemoEntry::Pending`] claim: unless defused with
/// [`std::mem::forget`], dropping it removes the claim and wakes every
/// thread waiting on the key. This is the memo's unwind safety — a panic
/// (or a `Cancelled` early return) in the computing thread releases the
/// key instead of leaving waiters parked forever on the condvar.
pub(crate) struct PendingGuard<'m> {
    pub(crate) memo: &'m SolveMemo,
    pub(crate) key: (u64, u64),
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut map = lock_ignore_poison(&self.memo.map);
        map.remove(&self.key);
        self.memo.done.notify_all();
    }
}

/// Structural 128-bit key of a solve call: two independently seeded 64-bit
/// hashes over (context salt, mode, core, budget, array specs, ordered
/// constraints). The constraint *order* is hashed deliberately — assertion
/// order steers the search, so only byte-identical problems may share an
/// outcome. `salt` is `0` for a batch run and [`context_salt`] for a warm
/// one (tenant namespace + session context).
pub(crate) fn memo_key(problem: &Problem, opts: &GenOptions, limit: u64, salt: u64) -> (u64, u64) {
    use std::collections::hash_map::DefaultHasher;
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    0xA5A5_5A5A_u64.hash(&mut h2);
    for h in [&mut h1, &mut h2] {
        salt.hash(h);
        opts.mode.hash(h);
        opts.core.hash(h);
        limit.hash(h);
        problem.specs().hash(h);
        problem.constraints().hash(h);
    }
    (h1.finish(), h2.finish())
}

/// Whether `opts` routes eligible solves through incremental sessions.
/// Sessions need the CDCL core (assumption solving is a CDCL mechanism),
/// unfold mode (the skeleton must be ground to lower once), and no input
/// database (input constraints precede the skeleton, so no shared prefix
/// exists).
pub(crate) fn sessions_enabled(opts: &GenOptions) -> bool {
    opts.incremental
        && opts.core == SearchCore::Cdcl
        && opts.mode == Mode::Unfold
        && opts.input_db.is_none()
}

/// The warm-state context salt for one `(namespace, query, options)`
/// combination — see the module docs for why each ingredient is there.
pub(crate) fn context_salt(namespace: &str, query: &NormQuery, opts: &GenOptions) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    let mut h = DefaultHasher::new();
    0x5EED_5A17_u64.hash(&mut h);
    namespace.hash(&mut h);
    if sessions_enabled(opts) {
        // Session histories are per-query and per-budget/fault-plan; fresh
        // solves are pure, so the salt stays namespace-only for them and
        // cross-query sharing is allowed.
        1u8.hash(&mut h);
        structural_hash(query).hash(&mut h);
        opts.decision_limit.hash(&mut h);
        opts.faults.panic_targets.hash(&mut h);
        opts.faults.unknown_targets.hash(&mut h);
        opts.faults.expire_targets.hash(&mut h);
    } else {
        0u8.hash(&mut h);
    }
    h.finish()
}

/// Process-long warm state shared across requests and tenants — see the
/// module docs. `Sync` by construction: every map sits behind the same
/// Mutex+Condvar shapes the single-run pipeline already uses.
#[derive(Default)]
pub struct WarmCache {
    pub(crate) memo: SolveMemo,
    /// Warm incremental sessions keyed by (context salt, copies,
    /// repair_cap). Only populated by runs whose salt gate is held, so
    /// plain get/insert cannot race within a salt.
    sessions: Mutex<HashMap<(u64, u32, u32), Arc<SolveSession>>>,
    /// Salts with a generation run currently in flight (the per-salt run
    /// gate).
    running: Mutex<HashSet<u64>>,
    freed: Condvar,
}

impl WarmCache {
    pub fn new() -> WarmCache {
        WarmCache::default()
    }

    /// Resolved solve outcomes currently held (the `serve.warm.memo_entries`
    /// gauge). Pending claims of in-flight solves are not counted.
    pub fn memo_entries(&self) -> usize {
        lock_ignore_poison(&self.memo.map)
            .values()
            .filter(|e| matches!(e, MemoEntry::Done(_)))
            .count()
    }

    /// Warm incremental sessions currently held (the `serve.warm.sessions`
    /// gauge).
    pub fn session_count(&self) -> usize {
        lock_ignore_poison(&self.sessions).len()
    }

    /// Drop every memoized outcome and warm session (e.g. an operator
    /// bouncing a tenant's corpus). In-flight runs are unaffected beyond
    /// losing future hits: pending memo claims stay untouched.
    pub fn clear(&self) {
        lock_ignore_poison(&self.memo.map).retain(|_, e| matches!(e, MemoEntry::Pending));
        lock_ignore_poison(&self.sessions).clear();
    }

    pub(crate) fn session(&self, salt: u64, copies: u32, cap: u32) -> Option<Arc<SolveSession>> {
        lock_ignore_poison(&self.sessions).get(&(salt, copies, cap)).map(Arc::clone)
    }

    pub(crate) fn insert_session(
        &self,
        salt: u64,
        copies: u32,
        cap: u32,
        session: Arc<SolveSession>,
    ) {
        lock_ignore_poison(&self.sessions).insert((salt, copies, cap), session);
    }

    /// Serialize generation runs sharing `salt`: blocks until no other run
    /// with the same salt is in flight, then claims it. Runs with other
    /// salts (other tenants, other queries) proceed in parallel. The guard
    /// releases the salt on every exit path, panics included.
    pub(crate) fn lock_run(&self, salt: u64) -> RunGuard<'_> {
        let mut running = lock_ignore_poison(&self.running);
        while running.contains(&salt) {
            running = self
                .freed
                .wait(running)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        running.insert(salt);
        RunGuard { cache: self, salt }
    }
}

/// Drop guard releasing a [`WarmCache::lock_run`] claim.
pub(crate) struct RunGuard<'w> {
    cache: &'w WarmCache,
    salt: u64,
}

impl Drop for RunGuard<'_> {
    fn drop(&mut self) {
        let mut running = lock_ignore_poison(&self.cache.running);
        running.remove(&self.salt);
        self.cache.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_gate_serializes_same_salt_only() {
        let cache = WarmCache::new();
        let g1 = cache.lock_run(7);
        // A different salt is claimable while 7 is held.
        let g2 = cache.lock_run(8);
        drop(g2);
        drop(g1);
        // Re-claimable after release.
        let _g3 = cache.lock_run(7);
    }

    #[test]
    fn clear_empties_resolved_state() {
        let cache = WarmCache::new();
        lock_ignore_poison(&cache.memo.map).insert(
            (1, 2),
            MemoEntry::Done(MemoValue {
                outcome: MemoOutcome::Unsat,
                stats: SolverStats::default(),
            }),
        );
        lock_ignore_poison(&cache.memo.map).insert((3, 4), MemoEntry::Pending);
        assert_eq!(cache.memo_entries(), 1, "pending claims are not entries");
        cache.clear();
        assert_eq!(cache.memo_entries(), 0);
        // The pending claim survives (its owner will resolve or drop it).
        assert_eq!(lock_ignore_poison(&cache.memo.map).len(), 1);
    }

    #[test]
    fn salt_separates_tenants_and_session_contexts() {
        let schema = xdata_catalog::university::schema();
        let ast = xdata_sql::parse_query(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        )
        .unwrap();
        let q = xdata_relalg::normalize(&ast, &schema).unwrap();
        let opts = GenOptions::default();
        assert!(sessions_enabled(&opts));
        let a = context_salt("tenant-a", &q, &opts);
        let b = context_salt("tenant-b", &q, &opts);
        assert_ne!(a, b, "tenants must never share warm keys");
        assert_eq!(a, context_salt("tenant-a", &q, &opts), "salt is deterministic");
        let mut budget = opts.clone();
        budget.decision_limit = 7;
        assert_ne!(
            a,
            context_salt("tenant-a", &q, &budget),
            "a different budget is a different session history"
        );
        let fresh = GenOptions { incremental: false, ..GenOptions::default() };
        let fa = context_salt("tenant-a", &q, &fresh);
        let ast2 = xdata_sql::parse_query(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 1",
        )
        .unwrap();
        let q2 = xdata_relalg::normalize(&ast2, &schema).unwrap();
        assert_eq!(
            fa,
            context_salt("tenant-a", &q2, &fresh),
            "fresh solves are pure per problem: cross-query sharing is allowed"
        );
    }
}
