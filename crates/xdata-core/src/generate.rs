//! Algorithm 1 and its sub-procedures (§V of the paper), restructured as a
//! two-phase **plan → solve** pipeline.
//!
//! The sequential presentation of Algorithm 1 interleaves target
//! *enumeration* (which datasets to attempt) with target *solving* (the
//! expensive constraint solves). Here a cheap planning pass first
//! enumerates every solve target — the original-query dataset, one
//! nullification per equivalence-class element, one per retained
//! predicate×relation, three comparison datasets per conjunct, aggregate
//! and HAVING group constructions, the duplicate-row dataset — as inert
//! `PlanItem` values. The solve phase then runs the targets through
//! [`xdata_par::try_par_map`]: every target is an independent constraint
//! problem, so they solve concurrently on `GenOptions::jobs` threads while
//! the order-preserving collection keeps the resulting [`TestSuite`]
//! **byte-identical to the sequential output for every thread count**.
//!
//! Targets share one *constraint skeleton* per `(copies, repair_cap)`
//! shape: the schema PK/FK closure, tuple arrays, symmetry breaking and
//! domain constraints of [`ConstraintBuilder`] are built — and, in unfold
//! mode, quantifier-expanded — once, cached, and cloned per target instead
//! of being rebuilt for every target at every repair-ladder rung.
//!
//! On top of the skeleton cache sits a cross-target **solve memo**: solve
//! calls are keyed by a structural hash of the complete problem (array
//! specs, solve mode, decision budget, and the ordered constraint list) and
//! their outcome — model values, verdict and solver stats — is reused for
//! any later target that builds the byte-identical problem. The common case
//! is a comparison target whose forced operator *is* the predicate's
//! original operator: its constraint set reproduces the original-query
//! target's exactly. The memo blocks concurrent duplicates (first arriver
//! computes, the rest wait), so hit/miss counts — and therefore the metrics
//! report — stay deterministic for every `jobs` value.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};

use xdata_catalog::{DomainCatalog, Schema, Value};
use xdata_par::CancelToken;
use xdata_relalg::{AttrRef, LikePred, NormQuery, Operand, SelectSpec, SubqueryKind};
use xdata_sql::CompareOp;
use xdata_solver::{
    Atom, Formula, Mode, Problem, RelOp, SolveOutcome, SolveSession, SolverStats, Term,
};

use crate::builder::ConstraintBuilder;
use crate::error::GenError;
use crate::materialize::materialize;
use crate::suite::{GenOptions, GeneratedDataset, SkipReason, SkippedTarget, TestSuite};
use crate::warm::{
    context_salt, lock_ignore_poison, memo_key, MemoEntry, MemoOutcome, MemoValue, PendingGuard,
    SolveMemo, WarmCache,
};

/// Offset for `session` flow ids in the trace. `target` flows use the plan
/// index, `session` flows the copies-class id; the offset keeps the two
/// families in disjoint id spaces so Chrome/Perfetto never stitches a
/// target arrow to a session arrow.
const SESSION_FLOW_BASE: u64 = 0x5E55_0000_0000;

/// Generate the complete test suite for `query` (Algorithm 1):
/// a dataset for the original query, then datasets killing equivalence-class
/// mutants, other-predicate mutants, comparison mutants and aggregation
/// mutants. The number of datasets is linear in the query size.
///
/// With `opts.jobs > 1` (or `0` for one thread per core) the solve targets
/// run concurrently; the suite is identical to the `jobs = 1` output.
pub fn generate(
    query: &NormQuery,
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
) -> Result<TestSuite, GenError> {
    let cancel = CancelToken::for_deadline_ms(opts.deadline_ms);
    generate_cancellable(query, schema, domains, opts, &cancel)
}

/// [`generate`] under a caller-supplied [`CancelToken`] (typically the
/// suite-level deadline token also spanning the kill evaluation). When the
/// token trips mid-run the suite completes *partially*: targets never
/// started or abandoned mid-solve come back as [`SkipReason::Timeout`]
/// skips, attributed by label — nothing is silently dropped.
pub fn generate_cancellable(
    query: &NormQuery,
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
    cancel: &CancelToken,
) -> Result<TestSuite, GenError> {
    // A batch run owns its memo: warm state begins and ends with the call.
    let memo = SolveMemo::default();
    generate_impl(query, schema, domains, opts, cancel, &memo, None)
}

/// [`generate_cancellable`] against a process-long [`WarmCache`]: solve
/// outcomes and incremental sessions persist in `warm` under `namespace`'s
/// context salt and are replayed by later structurally identical requests
/// (the `xdata serve` fast path). Runs sharing a salt are serialized by the
/// cache's run gate when incremental sessions are active; for runs whose
/// deadlines never fire the output is byte-identical to a cold
/// [`generate_cancellable`] call with the same arguments, whatever warm
/// state preceded it (see [`crate::warm`] for the soundness argument).
pub fn generate_warm(
    query: &NormQuery,
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
    cancel: &CancelToken,
    warm: &WarmCache,
    namespace: &str,
) -> Result<TestSuite, GenError> {
    let salt = context_salt(namespace, query, opts);
    generate_impl(query, schema, domains, opts, cancel, &warm.memo, Some((warm, salt)))
}

fn generate_impl(
    query: &NormQuery,
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
    cancel: &CancelToken,
    memo: &SolveMemo,
    warm: Option<(&WarmCache, u64)>,
) -> Result<TestSuite, GenError> {
    // Two warm runs sharing a context salt would race their turn gates on
    // the shared incremental sessions; serialize whole runs per salt (other
    // tenants and other queries proceed in parallel). Fresh solves are
    // pure, so session-less runs need no gate — the memo's key-level
    // blocking dedup already covers them.
    let _run_guard = match warm {
        Some((w, salt)) if crate::warm::sessions_enabled(opts) => Some(w.lock_run(salt)),
        _ => None,
    };
    let _gen_span = xdata_obs::span("generate");
    // Preprocessing beyond what normalization did: make sure every string
    // literal in the query is dictionary-coded.
    let domains = prepare_domains(query, schema, domains);
    let gen = Gen {
        query,
        schema,
        domains: &domains,
        opts,
        skeletons: Mutex::new(BTreeMap::new()),
        sessions: Mutex::new(BTreeMap::new()),
        gate: TurnGate::default(),
        memo,
        warm,
    };
    let plan = {
        let _plan_span = xdata_obs::span("generate/plan");
        gen.plan()
    };
    xdata_obs::counter("core.targets.planned", plan.len() as u64);
    // Plan-order sequence numbers for the session turn gate: one class per
    // `copies` value, numbering exactly the targets that will touch that
    // class's incremental sessions. `None` (plan-time skips, or sessions
    // disabled) runs ungated.
    let turns: Vec<Option<(u32, usize)>> = {
        let mut next: HashMap<u32, usize> = HashMap::new();
        plan.iter()
            .map(|item| match &item.work {
                Work::Solve(spec) if gen.sessions_enabled() => {
                    let seq = next.entry(spec.copies()).or_insert(0);
                    let s = *seq;
                    *seq += 1;
                    Some((spec.copies(), s))
                }
                _ => None,
            })
            .collect()
    };
    // Trace flows, opened on the coordinator so every start precedes its
    // worker-side finish/steps in time: a `target` arrow per plan item
    // (id = plan index) and a `session` arrow per copies-class chaining
    // the turn order across that class's gated targets.
    if xdata_obs::journal_enabled() {
        let mut classes_started: HashSet<u32> = HashSet::new();
        for (idx, turn) in turns.iter().enumerate() {
            xdata_obs::flow("target", idx as u64, xdata_obs::FlowPhase::Start);
            if let Some((class, _)) = turn {
                if classes_started.insert(*class) {
                    xdata_obs::flow(
                        "session",
                        SESSION_FLOW_BASE + u64::from(*class),
                        xdata_obs::FlowPhase::Start,
                    );
                }
            }
        }
    }
    let outcomes = xdata_par::par_map_cancel(opts.jobs, &plan, cancel, |idx, item| {
        gen.run_item(idx, item, turns[idx], cancel)
    });
    let mut suite = TestSuite::default();
    for (item, outcome) in plan.into_iter().zip(outcomes) {
        match outcome {
            // The suite deadline tripped before this target was claimed.
            None => suite
                .skipped
                .push(SkippedTarget { label: item.label, reason: SkipReason::Timeout }),
            Some(Err(e)) => return Err(e),
            Some(Ok(ItemOutcome::Dataset(d))) => suite.datasets.push(d),
            Some(Ok(ItemOutcome::Skipped(reason))) => {
                suite.skipped.push(SkippedTarget { label: item.label, reason })
            }
        }
    }
    // Suite-level tallies, recorded on the assembling thread from the
    // order-preserved outcomes — deterministic for every `jobs` value.
    xdata_obs::counter("core.targets.solved", suite.datasets.len() as u64);
    xdata_obs::counter("core.targets.skipped", suite.skipped.len() as u64);
    let timed_out =
        suite.skipped.iter().filter(|s| matches!(s.reason, SkipReason::Timeout)).count();
    let faulted =
        suite.skipped.iter().filter(|s| matches!(s.reason, SkipReason::Fault { .. })).count();
    xdata_obs::counter("core.targets.timed_out", timed_out as u64);
    xdata_obs::counter("core.targets.faulted", faulted as u64);
    xdata_obs::counter("core.partial_suites", u64::from(suite.is_partial()));
    for d in &suite.datasets {
        let rows = d.dataset.total_tuples() as u64;
        xdata_obs::counter("core.rows_emitted", rows);
        xdata_obs::observe("core.dataset_rows", rows);
    }
    Ok(suite)
}

/// Extend dictionaries with the query's string literals so they encode,
/// and widen integer-range domains to cover the query's numeric constants
/// (a selection like `salary > 50000` needs values on both sides of the
/// constant, whatever the default range is).
fn prepare_domains(query: &NormQuery, schema: &Schema, domains: &DomainCatalog) -> DomainCatalog {
    use xdata_catalog::Domain;
    let mut d = domains.clone();
    // String attributes linked by equi-joins or compared directly must
    // share one dictionary, or integer equality in the solver would not
    // mean string equality in the dataset.
    let attr_ty = |a: &AttrRef| -> Option<xdata_catalog::SqlType> {
        let base = &query.occurrences[a.occ].base;
        schema.relation(base).map(|r| r.attr(a.col).ty)
    };
    let merge = |d: &mut DomainCatalog, x: &AttrRef, y: &AttrRef| {
        if attr_ty(x) == Some(xdata_catalog::SqlType::Varchar)
            && attr_ty(y) == Some(xdata_catalog::SqlType::Varchar)
        {
            let (bx, by) =
                (query.occurrences[x.occ].base.clone(), query.occurrences[y.occ].base.clone());
            d.merge_dictionaries(&bx, x.col, &by, y.col);
        }
    };
    for ec in &query.eq_classes {
        for w in ec.windows(2) {
            merge(&mut d, &w[0], &w[1]);
        }
    }
    for p in &query.preds {
        if let (Some(x), Some(y)) = (p.lhs.attr_ref(), p.rhs.attr_ref()) {
            merge(&mut d, &x, &y);
        }
    }
    for p in &query.preds {
        for (side, other) in [(&p.lhs, &p.rhs), (&p.rhs, &p.lhs)] {
            let Some(attr) = other.attr_ref() else { continue };
            let base = &query.occurrences[attr.occ].base;
            if schema.relation(base).is_none() {
                continue;
            }
            match side {
                Operand::Const(Value::Str(s)) => {
                    d.ensure_string(base, attr.col, s);
                }
                Operand::Const(Value::Int(k)) => {
                    if let Some(Domain::IntRange { lo, hi }) = d.get(base, attr.col) {
                        let (lo, hi) = (*lo, *hi);
                        // Room on both sides so `<`, `=` and `>` datasets
                        // all exist.
                        let new_lo = lo.min(k - 10);
                        let new_hi = hi.max(k + 10);
                        if new_lo != lo || new_hi != hi {
                            d.set(base, attr.col, Domain::IntRange { lo: new_lo, hi: new_hi });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // LIKE patterns: seed a match witness (`_` → 'x', `%` dropped) so the
    // positive form is satisfiable, and for simple `[%]core[%]` shapes the
    // four family witnesses {core, corex, xcore, xcorex} so every pair of
    // pattern-family mutants has a distinguishing dictionary entry (the
    // symmetric-difference datasets are then non-empty).
    for l in &query.likes {
        let base = &query.occurrences[l.attr.occ].base;
        if schema.relation(base).is_none() {
            continue;
        }
        let witness: String = l
            .pattern
            .chars()
            .filter(|c| *c != '%')
            .map(|c| if c == '_' { 'x' } else { c })
            .collect();
        if !witness.is_empty() {
            d.ensure_string(base, l.attr.col, &witness);
        }
        if let Some((_, _, core)) = LikePred::simple_shape(&l.pattern) {
            for s in [core.clone(), format!("{core}x"), format!("x{core}"), format!("x{core}x")] {
                d.ensure_string(base, l.attr.col, &s);
            }
        }
    }
    // Subquery conditions compare subquery-relation columns (not
    // occurrences) against outer attributes or constants: share
    // dictionaries across string links, encode string literals, widen
    // integer ranges around numeric constants.
    for s in &query.subs {
        let Some(rel) = schema.relation(&s.base) else { continue };
        let mut pairs: Vec<(usize, &Operand)> = s.conds.iter().map(|c| (c.col, &c.rhs)).collect();
        if let Some((op, col)) = &s.link {
            pairs.push((*col, op));
        }
        for (col, rhs) in pairs {
            if col >= rel.arity() {
                continue;
            }
            match rhs {
                Operand::Attr { attr, .. }
                    if rel.attr(col).ty == xdata_catalog::SqlType::Varchar
                        && attr_ty(attr) == Some(xdata_catalog::SqlType::Varchar) =>
                {
                    let ob = query.occurrences[attr.occ].base.clone();
                    d.merge_dictionaries(&s.base, col, &ob, attr.col);
                }
                Operand::Const(Value::Str(lit)) => {
                    d.ensure_string(&s.base, col, lit);
                }
                Operand::Const(Value::Int(k)) => {
                    if let Some(Domain::IntRange { lo, hi }) = d.get(&s.base, col) {
                        let (lo, hi) = (*lo, *hi);
                        let new_lo = lo.min(k - 10);
                        let new_hi = hi.max(k + 10);
                        if new_lo != lo || new_hi != hi {
                            d.set(&s.base, col, Domain::IntRange { lo: new_lo, hi: new_hi });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    d
}

/// One unit of the generation plan: either a target to solve or a
/// plan-time-known skip (recorded so the suite's skip list matches the
/// sequential algorithm exactly).
struct PlanItem {
    label: String,
    work: Work,
}

enum Work {
    /// Known unsolvable at plan time (e.g. Algorithm 2's empty-`P` case).
    Skip(SkipReason),
    Solve(TargetSpec),
}

/// A solve target, fully described by data — no closures — so the plan can
/// cross thread boundaries.
enum TargetSpec {
    /// §V-B: non-empty result for the original query.
    Original,
    /// §V-B with a HAVING clause: a whole qualifying group of size `k`.
    OriginalHaving { k: u32 },
    /// Algorithm 2: nullify `s` against the rest (`p`) of eq-class `ci`.
    EqClass { ci: usize, s: Vec<AttrRef>, p: Vec<AttrRef> },
    /// Algorithm 3: no tuple of occurrence `r` satisfies predicate `pi`.
    OtherPredicate { pi: usize, r: usize },
    /// §V-E: predicate `pi` forced to `op`.
    Comparison { pi: usize, op: CompareOp },
    /// Algorithm 4 for aggregate over `a`; the optional-constraint
    /// relaxation ladder runs inside the solve.
    Aggregate { a: AttrRef, copies: u32 },
    /// HAVING conjunct `hi` forced to `op` with group size `k`.
    HavingCmp { hi: usize, op: CompareOp, k: u32 },
    /// Footnote 2: a duplicate result row (SELECT vs SELECT DISTINCT).
    Duplicate { star: bool, projected: Vec<AttrRef> },
    /// Subquery predicate `si` with its connective's negation flipped.
    SubFlip { si: usize },
    /// Subquery predicate `si` made existentially true but membership-false
    /// (`EXISTS` holds, `IN` definitely does not): separates the `IN` and
    /// `EXISTS` connective families.
    SubDistinguish { si: usize },
    /// Positive `IN` subquery `si` plus a condition-true subquery row with
    /// NULL in the linked column: the `NOT IN` NULL-trap witness.
    SubNullWitness { si: usize },
    /// LIKE predicate `li` steered into the symmetric difference between
    /// its own pattern and family variant `pattern`.
    LikeVariant { li: usize, pattern: String },
    /// NULL check `ni` with its polarity flipped.
    NullCheckFlip { ni: usize },
}

impl TargetSpec {
    /// Tuple-set copies the target's constraint problem needs.
    fn copies(&self) -> u32 {
        match self {
            TargetSpec::Original
            | TargetSpec::EqClass { .. }
            | TargetSpec::OtherPredicate { .. }
            | TargetSpec::Comparison { .. }
            | TargetSpec::SubFlip { .. }
            | TargetSpec::SubDistinguish { .. }
            | TargetSpec::SubNullWitness { .. }
            | TargetSpec::LikeVariant { .. }
            | TargetSpec::NullCheckFlip { .. } => 1,
            TargetSpec::OriginalHaving { k } | TargetSpec::HavingCmp { k, .. } => *k,
            TargetSpec::Aggregate { copies, .. } => *copies,
            TargetSpec::Duplicate { .. } => 2,
        }
    }
}

/// Which extended predicate a target is perturbing (and must therefore not
/// re-assert in original polarity).
#[derive(Clone, Copy, PartialEq, Eq)]
enum ExtSkip {
    None,
    Sub(usize),
    /// Like [`ExtSkip::Sub`], but additionally leaves the subquery's
    /// spare NULL slot unsuppressed — only the NULL-membership witness
    /// target uses this, making it the one dataset with a NULL member.
    SubNull(usize),
    Like(usize),
    Null(usize),
}

/// What one plan item produced.
enum ItemOutcome {
    Dataset(GeneratedDataset),
    Skipped(SkipReason),
}

struct Gen<'a> {
    query: &'a NormQuery,
    schema: &'a Schema,
    domains: &'a DomainCatalog,
    opts: &'a GenOptions,
    /// Base constraint skeletons keyed by `(copies, repair_cap)`: arrays +
    /// database constraints built (and unfolded, in unfold mode) once, then
    /// cloned per target.
    skeletons: Mutex<BTreeMap<(u32, u32), ConstraintBuilder<'a>>>,
    /// Incremental solving sessions keyed like [`Gen::skeletons`]: the
    /// skeleton is lowered into a long-lived CDCL engine once and each
    /// eligible target solves under assumptions, retaining learned clauses
    /// across targets (see [`SolveSession`]). Access is serialized into
    /// plan order by [`Gen::gate`].
    sessions: Mutex<BTreeMap<(u32, u32), Arc<SolveSession>>>,
    /// Plan-order turn gate over session-eligible targets (see [`TurnGate`]).
    gate: TurnGate,
    /// Cross-target solve memo (see [`crate::warm`]): run-local for a batch
    /// call, the process-long [`WarmCache`] memo for a warm one.
    memo: &'a SolveMemo,
    /// Present on warm runs: the cache plus this run's context salt. Salt
    /// `0` with `warm: None` is the batch configuration — the salt is
    /// hashed into every memo key, so batch and warm keys never mix even
    /// in a shared memo.
    warm: Option<(&'a WarmCache, u64)>,
}

/// Serializes session-eligible targets of one skeleton class (`copies`
/// value) into plan order, whatever the thread schedule.
///
/// An incremental session's results depend on the order targets reach it —
/// learned clauses and saved phases carry over — so unordered access would
/// make the suite vary with `--jobs`. The gate pins the order: each
/// eligible target gets a plan-time sequence number within its class and
/// waits its turn. No deadlock is possible because `par_map_cancel` workers
/// claim items through a monotonic cursor: every predecessor of a waiting
/// item is already claimed, and the lowest unfinished sequence of a class
/// is by construction never waiting.
#[derive(Default)]
struct TurnGate {
    state: Mutex<HashMap<u32, usize>>,
    advanced: Condvar,
}

impl TurnGate {
    /// Block until `seq` is `class`'s current turn. Returns `false` —
    /// without claiming the turn — if `cancel` trips while queued; waiters
    /// behind the bailed item poll the token the same way, so the skipped
    /// advance cannot strand them.
    fn wait_for(&self, class: u32, seq: usize, cancel: &CancelToken) -> bool {
        let mut st = lock_ignore_poison(&self.state);
        loop {
            if *st.entry(class).or_insert(0) >= seq {
                return true;
            }
            if cancel.is_cancelled() {
                return false;
            }
            let (g, _) = self
                .advanced
                .wait_timeout(st, std::time::Duration::from_millis(5))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = g;
        }
    }

    fn advance(&self, class: u32) {
        let mut st = lock_ignore_poison(&self.state);
        *st.entry(class).or_insert(0) += 1;
        self.advanced.notify_all();
    }
}

/// Drop guard passing the class turn on every exit from a gated item —
/// normal completion, a timeout skip, or a chaos panic unwinding through.
struct TurnGuard<'g> {
    gate: &'g TurnGate,
    class: u32,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        self.gate.advance(self.class);
    }
}

/// Outcome of one targeted constraint set.
enum Target {
    Dataset(GeneratedDataset),
    Equivalent,
    /// The decision budget ran out before a verdict.
    GaveUp { decisions: u64 },
    /// The cancellation token tripped before a verdict.
    TimedOut,
}

/// Outcome of one solve attempt (one ladder of repair capacities).
enum SolveRes {
    Dataset(GeneratedDataset),
    Unsat,
    GaveUp { decisions: u64 },
    TimedOut,
}

impl<'a> Gen<'a> {
    // ----- Phase 1: planning --------------------------------------------

    /// Enumerate every solve target in the order the sequential algorithm
    /// attempts them; order is what makes parallel assembly reproduce the
    /// sequential suite.
    fn plan(&self) -> Vec<PlanItem> {
        let mut plan = Vec::new();
        self.plan_original(&mut plan);
        self.plan_equivalence_classes(&mut plan);
        self.plan_other_predicates(&mut plan);
        self.plan_comparison_operators(&mut plan);
        self.plan_aggregates(&mut plan);
        self.plan_having_comparisons(&mut plan);
        self.plan_duplicates(&mut plan);
        self.plan_subqueries(&mut plan);
        self.plan_likes(&mut plan);
        self.plan_null_checks(&mut plan);
        plan
    }

    fn plan_original(&self, plan: &mut Vec<PlanItem>) {
        let label = "original query (non-empty result)".to_string();
        let having: &[xdata_relalg::HavingPred] = match &self.query.select {
            SelectSpec::Aggregation { having, .. } => having,
            _ => &[],
        };
        let work = if having.is_empty() {
            Work::Solve(TargetSpec::Original)
        } else {
            match crate::having::group_size_for(having) {
                None => Work::Skip(SkipReason::Equivalent),
                Some(k) => Work::Solve(TargetSpec::OriginalHaving { k }),
            }
        };
        plan.push(PlanItem { label, work });
    }

    /// Algorithm 2 planning: for each element of each equivalence class,
    /// compute the jointly-nullified set `S` (the element plus every
    /// non-nullable FK referencing it, §V-H) and the retained set `P`.
    fn plan_equivalence_classes(&self, plan: &mut Vec<PlanItem>) {
        for (ci, ec) in self.query.eq_classes.iter().enumerate() {
            for &e in ec {
                let e_col = self.column_ref(e);
                let s: Vec<AttrRef> = ec
                    .iter()
                    .copied()
                    .filter(|&m| {
                        m == e || self.schema.references_strict(&self.column_ref(m), &e_col)
                    })
                    .collect();
                let p: Vec<AttrRef> = ec.iter().copied().filter(|m| !s.contains(m)).collect();
                let label = format!(
                    "eq-class {ci}: nullify {} against {}",
                    self.names(&s),
                    self.names(&p)
                );
                let work = if p.is_empty() {
                    Work::Skip(SkipReason::EmptyP)
                } else {
                    Work::Solve(TargetSpec::EqClass { ci, s, p })
                };
                plan.push(PlanItem { label, work });
            }
        }
    }

    fn plan_other_predicates(&self, plan: &mut Vec<PlanItem>) {
        for (pi, p) in self.query.preds.iter().enumerate() {
            for r in p.occurrences() {
                plan.push(PlanItem {
                    label: format!(
                        "pred {pi} (`{p}`): nullify {}",
                        self.query.occurrences[r].name
                    ),
                    work: Work::Solve(TargetSpec::OtherPredicate { pi, r }),
                });
            }
        }
    }

    fn plan_comparison_operators(&self, plan: &mut Vec<PlanItem>) {
        for (pi, p) in self.query.preds.iter().enumerate() {
            let attr_vs_const = matches!(
                (&p.lhs, &p.rhs),
                (Operand::Attr { .. }, Operand::Const(_)) | (Operand::Const(_), Operand::Attr { .. })
            );
            if !attr_vs_const && !self.opts.compare_attr_pairs {
                continue;
            }
            // String comparisons only make sense as =/<>: the `<`/`>`
            // datasets would compare dictionary codes; skip those targets.
            let string_pred = matches!(&p.lhs, Operand::Const(Value::Str(_)))
                || matches!(&p.rhs, Operand::Const(Value::Str(_)));
            let target_ops: &[CompareOp] = if string_pred {
                &[CompareOp::Eq, CompareOp::Ne]
            } else {
                &[CompareOp::Eq, CompareOp::Lt, CompareOp::Gt]
            };
            for &op in target_ops {
                plan.push(PlanItem {
                    label: format!("comparison {pi} (`{p}`): dataset with `{}`", op.sql_symbol()),
                    work: Work::Solve(TargetSpec::Comparison { pi, op }),
                });
            }
        }
    }

    fn plan_aggregates(&self, plan: &mut Vec<PlanItem>) {
        let SelectSpec::Aggregation { aggs, having, .. } = &self.query.select else {
            return;
        };
        // With a HAVING clause the group size may be forced away from the
        // three tuple sets Algorithm 4 wants; construct with the forced
        // size and let the relaxation ladder drop S1/S2 as needed.
        let copies = if having.is_empty() {
            3
        } else {
            match crate::having::group_size_for(having) {
                Some(k) => k.clamp(3, crate::having::MAX_GROUP_SIZE),
                None => return, // HAVING unconstructible: no datasets
            }
        };
        for (ai, agg) in aggs.iter().enumerate() {
            let Some(a) = agg.arg else {
                continue; // COUNT(*): no operator mutants (§II footnote).
            };
            plan.push(PlanItem {
                label: format!("aggregate {ai} ({})", agg.func.display_name()),
                work: Work::Solve(TargetSpec::Aggregate { a, copies }),
            });
        }
    }

    fn plan_having_comparisons(&self, plan: &mut Vec<PlanItem>) {
        let SelectSpec::Aggregation { having, .. } = &self.query.select else {
            return;
        };
        for (hi, h) in having.iter().enumerate() {
            for op in [CompareOp::Eq, CompareOp::Lt, CompareOp::Gt] {
                let label = format!("having {hi} (`{h}`): dataset with `{}`", op.sql_symbol());
                let work = match crate::having::group_size_with_override(having, hi, op) {
                    None => Work::Skip(SkipReason::Equivalent),
                    Some(k) => Work::Solve(TargetSpec::HavingCmp { hi, op, k }),
                };
                plan.push(PlanItem { label, work });
            }
        }
    }

    fn plan_duplicates(&self, plan: &mut Vec<PlanItem>) {
        let projected: Vec<AttrRef> = match &self.query.select {
            SelectSpec::Aggregation { .. } => return, // no duplicate mutant
            SelectSpec::Columns(cols) => cols.clone(),
            SelectSpec::Star => Vec::new(), // sentinel: all attributes
        };
        let star = matches!(self.query.select, SelectSpec::Star);
        if star {
            // A duplicated full row needs a relation that admits duplicate
            // tuples, i.e. one without a primary key.
            let has_keyless = self.query.occurrences.iter().any(|o| {
                self.schema
                    .relation(&o.base)
                    .map(|r| r.primary_key.is_empty())
                    .unwrap_or(false)
            });
            if !has_keyless {
                // Structurally impossible (primary keys forbid duplicate
                // rows under SELECT *): the mutant is equivalent; nothing
                // to record — no constraint set was even attempted.
                return;
            }
        }
        plan.push(PlanItem {
            label: "duplicate row (SELECT vs SELECT DISTINCT)".to_string(),
            work: Work::Solve(TargetSpec::Duplicate { star, projected }),
        });
    }

    /// Extended-class planning, subqueries: every connective gets a
    /// flipped-polarity dataset; linked (membership) predicates also get an
    /// `EXISTS`-true/`IN`-false distinguisher, and positive `IN` over a
    /// nullable linked column gets a NULL-membership witness — together
    /// with the original dataset these kill the whole connective space
    /// (`IN`/`NOT IN`/`EXISTS`/`NOT EXISTS`).
    fn plan_subqueries(&self, plan: &mut Vec<PlanItem>) {
        for (si, s) in self.query.subs.iter().enumerate() {
            let name = s.connective_name();
            plan.push(PlanItem {
                label: format!("subquery {si} (`{name}` over {}): flipped connective", s.alias),
                work: Work::Solve(TargetSpec::SubFlip { si }),
            });
            let Some((_, col)) = &s.link else { continue };
            plan.push(PlanItem {
                label: format!("subquery {si} (`{name}` over {}): IN/EXISTS distinguisher", s.alias),
                work: Work::Solve(TargetSpec::SubDistinguish { si }),
            });
            let nullable = self
                .schema
                .relation(&s.base)
                .map(|r| *col < r.arity() && r.attr(*col).nullable)
                .unwrap_or(false);
            if s.kind == SubqueryKind::In && nullable {
                xdata_obs::counter("core.targets.null_witness", 1);
                plan.push(PlanItem {
                    label: format!(
                        "subquery {si} (`{name}` over {}): NULL membership witness",
                        s.alias
                    ),
                    work: Work::Solve(TargetSpec::SubNullWitness { si }),
                });
            }
        }
    }

    /// Extended-class planning, LIKE: one dataset per family variant of a
    /// simple `[%]core[%]` pattern, steering the attribute into the
    /// symmetric difference of the two patterns' match sets. Patterns with
    /// `_` or interior `%` have no mutant family and plan nothing — exactly
    /// mirroring the mutation generator.
    fn plan_likes(&self, plan: &mut Vec<PlanItem>) {
        for (li, l) in self.query.likes.iter().enumerate() {
            let Some((_, _, core)) = LikePred::simple_shape(&l.pattern) else { continue };
            for (lead, trail) in [(false, false), (true, false), (false, true), (true, true)] {
                let to = format!(
                    "{}{}{}",
                    if lead { "%" } else { "" },
                    core,
                    if trail { "%" } else { "" }
                );
                if to == l.pattern {
                    continue;
                }
                plan.push(PlanItem {
                    label: format!("like {li} (`{}`): distinguish from `{to}`", l.pattern),
                    work: Work::Solve(TargetSpec::LikeVariant { li, pattern: to }),
                });
            }
        }
    }

    /// Extended-class planning, NULL checks: one flipped-polarity dataset
    /// per check. Between the original dataset and the flip, exactly one
    /// pins a NULL at the checked position (counted as a NULL witness).
    fn plan_null_checks(&self, plan: &mut Vec<PlanItem>) {
        for (ni, n) in self.query.null_checks.iter().enumerate() {
            xdata_obs::counter("core.targets.null_witness", 1);
            plan.push(PlanItem {
                label: format!(
                    "null-check {ni} ({} IS {}NULL): flipped polarity",
                    self.names(&[n.attr]),
                    if n.negated { "NOT " } else { "" }
                ),
                work: Work::Solve(TargetSpec::NullCheckFlip { ni }),
            });
        }
    }

    // ----- Phase 2: solving ---------------------------------------------

    /// Execute one plan item. Pure function of the item (given the query,
    /// schema, domains and options), so execution order cannot influence
    /// any result — the determinism guarantee rests here. Degradation is
    /// contained per item: a tripped token becomes a [`SkipReason::Timeout`]
    /// skip, a panicking solve (chaos-injected or a genuine bug) is caught
    /// and becomes [`SkipReason::Fault`] — neither can take down the suite.
    fn run_item(
        &self,
        idx: usize,
        item: &PlanItem,
        turn: Option<(u32, usize)>,
        cancel: &CancelToken,
    ) -> Result<ItemOutcome, GenError> {
        let _solve_span = xdata_obs::span_with("generate/solve", || item.label.clone());
        // Close this plan item's flow arrow on the thread that solved it.
        xdata_obs::flow("target", idx as u64, xdata_obs::FlowPhase::Finish);
        let out = self.run_item_inner(item, turn, cancel);
        if let Ok(ItemOutcome::Skipped(reason)) = &out {
            // The timeline attributes every skip inside the target's own
            // solve span, with the reason spelled out.
            xdata_obs::instant("core.target.skip", || format!("{} — {reason}", item.label));
        }
        out
    }

    fn run_item_inner(
        &self,
        item: &PlanItem,
        turn: Option<(u32, usize)>,
        cancel: &CancelToken,
    ) -> Result<ItemOutcome, GenError> {
        if let Work::Skip(reason) = &item.work {
            return Ok(ItemOutcome::Skipped(reason.clone()));
        }
        // Session-eligible targets take their class's turn in plan order:
        // the incremental session carries learned state between targets, so
        // pinning the access order is what keeps every `--jobs` value
        // byte-identical. Targets of different classes still run in
        // parallel; ungated targets are unaffected.
        let _turn_guard = match turn {
            Some((class, seq)) => {
                // The gate wait gets its own child span so the timeline
                // separates queueing (waiting for the class's turn) from
                // actual solving.
                let granted = {
                    let _gate_span =
                        xdata_obs::span_with("generate/solve/gate", || item.label.clone());
                    self.gate.wait_for(class, seq, cancel)
                };
                if !granted {
                    // The suite token tripped while queued.
                    return Ok(ItemOutcome::Skipped(SkipReason::Timeout));
                }
                xdata_obs::instant("solver.session.turn", || {
                    format!("{} (class {class}, turn {seq})", item.label)
                });
                xdata_obs::flow(
                    "session",
                    SESSION_FLOW_BASE + u64::from(class),
                    xdata_obs::FlowPhase::Step,
                );
                Some(TurnGuard { gate: &self.gate, class })
            }
            None => None,
        };
        // The target token trips when the suite token does *or* when the
        // per-target budget runs out; cancelling it never touches siblings.
        let token = cancel.child_for_deadline_ms(self.opts.per_target_deadline_ms);
        if self.opts.faults.should_expire(&item.label) {
            // Synthetic expiry: deterministic (schedule-independent) and
            // carrying no wall-clock latency sample.
            token.cancel();
        }
        if token.is_cancelled() {
            return Ok(ItemOutcome::Skipped(SkipReason::Timeout));
        }
        if self.opts.faults.should_unknown(&item.label) {
            // A forced Unknown exit takes the same road a blown decision
            // budget takes, without spending any decisions.
            return Ok(ItemOutcome::Skipped(SkipReason::Budget { decisions: 0 }));
        }
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if self.opts.faults.should_panic(&item.label) {
                panic!("chaos: injected panic at `{}`", item.label);
            }
            match &item.work {
                Work::Solve(TargetSpec::Aggregate { a, copies }) => {
                    self.solve_aggregate(&item.label, *a, *copies, &token)
                }
                Work::Solve(spec) => {
                    let target = self.solve_target(spec.copies(), &item.label, &token, &|b| {
                        self.assert_spec(b, spec)
                    })?;
                    Ok(match target {
                        Target::Dataset(d) => ItemOutcome::Dataset(d),
                        Target::Equivalent => ItemOutcome::Skipped(SkipReason::Equivalent),
                        Target::GaveUp { decisions } => {
                            ItemOutcome::Skipped(SkipReason::Budget { decisions })
                        }
                        Target::TimedOut => ItemOutcome::Skipped(SkipReason::Timeout),
                    })
                }
                Work::Skip(_) => unreachable!("handled above"),
            }
        }));
        match attempt {
            Ok(outcome) => outcome,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                Ok(ItemOutcome::Skipped(SkipReason::Fault { message }))
            }
        }
    }

    /// Assert the constraints of a (non-aggregate) target spec.
    fn assert_spec(
        &self,
        b: &mut ConstraintBuilder<'_>,
        spec: &TargetSpec,
    ) -> Result<(), GenError> {
        match spec {
            TargetSpec::Original => self.assert_query_conds(b, 0),
            TargetSpec::OriginalHaving { k } => {
                let SelectSpec::Aggregation { group_by, having, .. } = &self.query.select else {
                    unreachable!("having implies aggregation");
                };
                for c in 0..*k {
                    self.assert_query_conds(b, c)?;
                }
                self.assert_same_group(b, group_by, *k);
                crate::having::assert_having(b, group_by, having, *k, None)
            }
            TargetSpec::EqClass { ci, s, p } => {
                // Members of P match each other.
                let f = b.eq_conds(p, 0);
                b.problem.assert(f);
                // No tuple of any relation in S matches P's value.
                let witness = b.cvc_map(p[0], 0);
                for &m in s {
                    let f = b.not_exists_value(m, witness);
                    b.problem.assert(f);
                }
                // All other equivalence classes hold.
                for (cj, other) in self.query.eq_classes.iter().enumerate() {
                    if cj != *ci {
                        let f = b.eq_conds(other, 0);
                        b.problem.assert(f);
                    }
                }
                // All retained predicates hold.
                for pr in &self.query.preds {
                    let f = b.pred_formula(pr, 0)?;
                    b.problem.assert(f);
                }
                self.assert_extended_conds(b, 0, ExtSkip::None)
            }
            TargetSpec::OtherPredicate { pi, r } => {
                let p = &self.query.preds[*pi];
                let f = b.gen_not_exists(p, *r, 0)?;
                b.problem.assert(f);
                for ec in &self.query.eq_classes {
                    let f = b.eq_conds(ec, 0);
                    b.problem.assert(f);
                }
                for (pj, other) in self.query.preds.iter().enumerate() {
                    if pj != *pi {
                        let f = b.pred_formula(other, 0)?;
                        b.problem.assert(f);
                    }
                }
                self.assert_extended_conds(b, 0, ExtSkip::None)
            }
            TargetSpec::Comparison { pi, op } => {
                // Assert in the exact order of `assert_query_conds` (all
                // eq-classes, then predicates in query order, with only
                // predicate `pi`'s operator swapped): when `op` happens to
                // be the predicate's original operator the constraint
                // sequence is byte-identical to the `Original` target's,
                // and the solve memo reuses that model instead of solving
                // again.
                for ec in &self.query.eq_classes {
                    let f = b.eq_conds(ec, 0);
                    b.problem.assert(f);
                }
                for (pj, other) in self.query.preds.iter().enumerate() {
                    let f = if pj == *pi {
                        b.pred_formula_with_op(other, *op, 0)?
                    } else {
                        b.pred_formula(other, 0)?
                    };
                    b.problem.assert(f);
                }
                self.assert_extended_conds(b, 0, ExtSkip::None)
            }
            TargetSpec::HavingCmp { hi, op, k } => {
                let SelectSpec::Aggregation { group_by, having, .. } = &self.query.select else {
                    unreachable!("having implies aggregation");
                };
                for c in 0..*k {
                    self.assert_query_conds(b, c)?;
                }
                self.assert_same_group(b, group_by, *k);
                crate::having::assert_having(b, group_by, having, *k, Some((*hi, *op)))
            }
            TargetSpec::Duplicate { star, projected } => {
                for c in 0..2 {
                    self.assert_query_conds(b, c)?;
                }
                if *star {
                    // Identical tuples in both copies: keyless relations
                    // will materialize genuine duplicates.
                    for (occ, o) in self.query.occurrences.iter().enumerate() {
                        let arity =
                            self.schema.relation(&o.base).expect("occurrence base").arity();
                        for col in 0..arity {
                            let f = Formula::Atom(Atom::new(
                                b.cvc_map(AttrRef::new(occ, col), 0),
                                RelOp::Eq,
                                b.cvc_map(AttrRef::new(occ, col), 1),
                            ));
                            b.problem.assert(f);
                        }
                    }
                } else {
                    // Equal projections, distinct provenance.
                    for a in projected {
                        let f = Formula::Atom(Atom::new(
                            b.cvc_map(*a, 0),
                            RelOp::Eq,
                            b.cvc_map(*a, 1),
                        ));
                        b.problem.assert(f);
                    }
                    let mut alternatives = Vec::new();
                    for (occ, o) in self.query.occurrences.iter().enumerate() {
                        let arity =
                            self.schema.relation(&o.base).expect("occurrence base").arity();
                        for col in 0..arity {
                            alternatives.push(Formula::Atom(Atom::new(
                                b.cvc_map(AttrRef::new(occ, col), 0),
                                RelOp::Ne,
                                b.cvc_map(AttrRef::new(occ, col), 1),
                            )));
                        }
                    }
                    b.problem.assert(Formula::or(alternatives));
                }
                Ok(())
            }
            TargetSpec::SubFlip { si } => {
                let s = &self.query.subs[*si];
                b.assert_subpred(*si, s.kind, !s.negated, 0)?;
                self.assert_base_conds(b, 0)?;
                self.assert_extended_conds(b, 0, ExtSkip::Sub(*si))
            }
            TargetSpec::SubDistinguish { si } => {
                // EXISTS definitely true, IN definitely false: the ground
                // witness satisfies the subquery conditions while no
                // condition-true tuple (NULLs included) matches the linked
                // value.
                b.assert_subpred(*si, SubqueryKind::Exists, false, 0)?;
                b.assert_subpred(*si, SubqueryKind::In, true, 0)?;
                self.assert_base_conds(b, 0)?;
                self.assert_extended_conds(b, 0, ExtSkip::Sub(*si))
            }
            TargetSpec::SubNullWitness { si } => {
                // A condition-true subquery row carries NULL in the
                // linked column. For `IN`, membership additionally holds:
                // the original stays TRUE while every negative connective
                // collapses to UNKNOWN. For `NOT IN`, no member matches
                // the probe (NULL members deliberately admitted): the
                // original is UNKNOWN — empty result — while the
                // NULL-blind correlated `NOT EXISTS` rewrite returns the
                // probe row. Either way the dataset only exists because
                // of the NULL, which is what makes it a witness.
                if self.query.subs[*si].negated {
                    b.assert_no_member(*si, 0, false)?;
                } else {
                    b.assert_subpred(*si, SubqueryKind::In, false, 0)?;
                }
                b.assert_sub_null_row(*si, 0)?;
                self.assert_base_conds(b, 0)?;
                self.assert_extended_conds(b, 0, ExtSkip::SubNull(*si))
            }
            TargetSpec::LikeVariant { li, pattern } => {
                let l = &self.query.likes[*li];
                let orig: BTreeSet<i64> = b.like_codes(l.attr, &l.pattern).into_iter().collect();
                let var: BTreeSet<i64> = b.like_codes(l.attr, pattern).into_iter().collect();
                // Symmetric difference: exactly the strings on which the
                // two patterns disagree. Empty means the patterns are
                // indistinguishable over the dictionary — the UNSAT of the
                // empty membership classifies the mutant as equivalent.
                let sym: Vec<i64> = orig.symmetric_difference(&var).copied().collect();
                b.assert_membership(l.attr, &sym, false, 0);
                self.assert_base_conds(b, 0)?;
                self.assert_extended_conds(b, 0, ExtSkip::Like(*li))
            }
            TargetSpec::NullCheckFlip { ni } => {
                let n = &self.query.null_checks[*ni];
                b.assert_null_check(n.attr, !n.negated, 0);
                self.assert_base_conds(b, 0)?;
                self.assert_extended_conds(b, 0, ExtSkip::Null(*ni))
            }
            TargetSpec::Aggregate { .. } => unreachable!("handled by solve_aggregate"),
        }
    }

    /// Chain the group-by attributes across the `k` tuple-set copies so
    /// every copy lands in the same group.
    fn assert_same_group(&self, b: &mut ConstraintBuilder<'_>, group_by: &[AttrRef], k: u32) {
        for g in group_by {
            for c in 0..k.saturating_sub(1) {
                let f = Formula::Atom(Atom::new(
                    b.cvc_map(*g, c),
                    RelOp::Eq,
                    b.cvc_map(*g, c + 1),
                ));
                b.problem.assert(f);
            }
        }
    }

    /// Algorithm 4's solve: optional constraint sets are relaxed greedily
    /// on inconsistency (lines 11–13).
    fn solve_aggregate(
        &self,
        label: &str,
        a: AttrRef,
        copies: u32,
        cancel: &CancelToken,
    ) -> Result<ItemOutcome, GenError> {
        let SelectSpec::Aggregation { group_by, having, .. } = &self.query.select else {
            unreachable!("aggregate target implies aggregation");
        };
        // Optional constraint sets, dropped greedily on inconsistency
        // (lines 11–13 of Algorithm 4): strong positivity (A ≥ 4, which
        // separates COUNT = 3 from MIN/MAX/SUM/AVG — the paper's "add
        // additional constraints to ensure that COUNT ... also
        // differ"), then weak positivity (A > 0), then S3 (group
        // isolation), then S1 (duplicate pair), then S2 (distinct
        // third value).
        let mut enabled = [true; 5]; // [POS_STRONG, POS_WEAK, S3, S1, S2]
        loop {
            let target = self.solve_target(copies, label, cancel, &|b| {
                self.assert_aggregate_conds(b, group_by, having, a, copies, enabled)
            })?;
            match target {
                Target::Dataset(d) => return Ok(ItemOutcome::Dataset(d)),
                Target::GaveUp { decisions } => {
                    // The budget would only exhaust again on the relaxed
                    // (larger-feasible-space) retries: report it now.
                    return Ok(ItemOutcome::Skipped(SkipReason::Budget { decisions }));
                }
                // No time left for the relaxation ladder either.
                Target::TimedOut => return Ok(ItemOutcome::Skipped(SkipReason::Timeout)),
                Target::Equivalent => {
                    // Relax the next enabled optional set.
                    if let Some(i) = enabled.iter().position(|e| *e) {
                        enabled[i] = false;
                    } else {
                        return Ok(ItemOutcome::Skipped(SkipReason::Equivalent));
                    }
                }
            }
        }
    }

    // ----- Shared solve machinery ---------------------------------------

    /// The cached base skeleton for a `(copies, repair_cap)` shape: tuple
    /// arrays plus `genDBConstraints`, quantifiers pre-expanded in unfold
    /// mode. Built once under the lock, cloned per use.
    fn skeleton(&self, copies: u32, cap: u32) -> Result<ConstraintBuilder<'a>, GenError> {
        // Poison-tolerant: a chaos-injected panic on a sibling target must
        // not wedge every later skeleton lookup (the cached builders are
        // only ever inserted whole, so the data is valid regardless).
        let mut map = lock_ignore_poison(&self.skeletons);
        if let Some(b) = map.get(&(copies, cap)) {
            // Hit/miss totals are deterministic across thread counts: the
            // lock is held across build-and-insert, so each (copies, cap)
            // shape misses exactly once however the targets are scheduled.
            xdata_obs::counter("core.skeleton_cache.hit", 1);
            return Ok(b.clone());
        }
        xdata_obs::counter("core.skeleton_cache.miss", 1);
        let mut b =
            ConstraintBuilder::with_repair_cap(self.schema, self.query, self.domains, copies, cap)?;
        b.gen_db_constraints();
        if self.opts.mode == Mode::Unfold {
            // Unfold the database constraints once for all targets. Lazy
            // mode keeps them quantified: pre-expansion would defeat the
            // §VI-B "without unfolding" configuration being measured.
            b.problem.inline_quantifiers();
        }
        map.insert((copies, cap), b.clone());
        Ok(b)
    }

    /// Whether this run routes eligible solves through incremental
    /// sessions (see [`crate::warm::sessions_enabled`]).
    fn sessions_enabled(&self) -> bool {
        crate::warm::sessions_enabled(self.opts)
    }

    /// The shared incremental session for a `(copies, repair_cap)` skeleton
    /// shape: built from the cached skeleton once, then reused — under the
    /// turn gate — by every eligible target of that shape.
    ///
    /// Warm runs resolve sessions from the [`WarmCache`] store instead of
    /// the run-local map, so a later request with the same context salt
    /// inherits the lowered skeleton and its learned clauses without
    /// rebuilding either. The run gate held by `generate_warm` makes the
    /// check-then-insert race-free within a salt.
    fn session(&self, copies: u32, cap: u32) -> Result<Arc<SolveSession>, GenError> {
        if let Some((w, salt)) = self.warm {
            if let Some(s) = w.session(salt, copies, cap) {
                return Ok(s);
            }
            let skel = self.skeleton(copies, cap)?;
            let s = Arc::new(SolveSession::new(&skel.problem));
            w.insert_session(salt, copies, cap, Arc::clone(&s));
            return Ok(s);
        }
        let mut map = lock_ignore_poison(&self.sessions);
        if let Some(s) = map.get(&(copies, cap)) {
            return Ok(Arc::clone(s));
        }
        let skel = self.skeleton(copies, cap)?;
        let s = Arc::new(SolveSession::new(&skel.problem));
        map.insert((copies, cap), Arc::clone(&s));
        Ok(s)
    }

    /// Build constraints via `f`, add database (and input-database)
    /// constraints, solve, materialize. Implements the paper's retry:
    /// when input-database constraints make the set inconsistent, solve
    /// again without them (§VI-A).
    fn solve_target(
        &self,
        copies: u32,
        label: &str,
        cancel: &CancelToken,
        f: &dyn Fn(&mut ConstraintBuilder<'_>) -> Result<(), GenError>,
    ) -> Result<Target, GenError> {
        let with_input = self.opts.input_db.is_some();
        if with_input {
            // The input-constrained attempt gets a tighter decision budget:
            // proving UNSAT under tuple-pinning can be expensive, and the
            // paper's §VI-A recovery path is "retry data generation after
            // removing these constraints" anyway — so both Unsat and a
            // blown budget fall through to the unconstrained attempt.
            match self.solve_once(copies, label, cancel, f, true)? {
                SolveRes::Dataset(ds) => return Ok(Target::Dataset(ds)),
                // A tripped token is latched: the unconstrained attempt
                // would exit immediately too, so report the timeout now.
                SolveRes::TimedOut => return Ok(Target::TimedOut),
                SolveRes::Unsat | SolveRes::GaveUp { .. } => {}
            }
        }
        match self.solve_once(copies, label, cancel, f, false)? {
            SolveRes::Dataset(ds) => Ok(Target::Dataset(ds)),
            SolveRes::Unsat => Ok(Target::Equivalent),
            SolveRes::GaveUp { decisions } => Ok(Target::GaveUp { decisions }),
            SolveRes::TimedOut => Ok(Target::TimedOut),
        }
    }

    /// Solve with the cross-target memo: the first thread to see a
    /// structural key computes; duplicates (concurrent or later) reuse the
    /// stored verdict, model values and stats.
    ///
    /// Two degradation rules keep the memo honest under cancellation and
    /// chaos:
    /// * a [`SolveOutcome::Cancelled`] result is **never stored** — it is a
    ///   withdrawn time budget, not a verdict, and caching it would poison
    ///   structurally identical targets that still have time;
    /// * the `Pending` claim is dropped (and waiters woken) on *any* exit
    ///   from the computing thread, including a panic unwinding through —
    ///   so a chaos-killed solve can never deadlock the threads parked on
    ///   its key.
    fn solve_memoized(
        &self,
        problem: &Problem,
        limit: u64,
        cancel: &CancelToken,
        session: Option<&SolveSession>,
    ) -> (SolveOutcome, SolverStats) {
        let key = memo_key(problem, self.opts, limit, self.warm.map_or(0, |(_, salt)| salt));
        {
            let mut map = lock_ignore_poison(&self.memo.map);
            loop {
                match map.get(&key) {
                    None => {
                        map.insert(key, MemoEntry::Pending);
                        xdata_obs::counter("core.solve_memo.miss", 1);
                        break;
                    }
                    Some(MemoEntry::Pending) => {
                        map = self
                            .memo
                            .done
                            .wait(map)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    Some(MemoEntry::Done(v)) => {
                        xdata_obs::counter("core.solve_memo.hit", 1);
                        return (v.outcome.replay(problem), v.stats);
                    }
                }
            }
        }
        // From here until the entry is resolved, this thread owns the
        // Pending claim; the guard releases it on every exit path.
        let guard = PendingGuard { memo: self.memo, key };
        let (out, stats) = match session {
            // The incremental road: only this target's delta constraints
            // are lowered; the engine arrives warm with everything learned
            // from the shape's earlier targets.
            Some(s) => s.solve_delta(problem, limit, cancel),
            None => problem.solve_cancel(self.opts.mode, limit, self.opts.core, cancel),
        };
        if matches!(out, SolveOutcome::Cancelled) {
            // Not a verdict: drop the claim (guard wakes the waiters; the
            // next arriver recomputes under its own time budget).
            drop(guard);
            return (out, stats);
        }
        let value = MemoValue { outcome: MemoOutcome::capture(&out), stats };
        let mut map = lock_ignore_poison(&self.memo.map);
        map.insert(key, MemoEntry::Done(value));
        std::mem::forget(guard); // entry resolved; nothing to clean up
        self.memo.done.notify_all();
        drop(map);
        (out, stats)
    }

    fn solve_once(
        &self,
        copies: u32,
        label: &str,
        cancel: &CancelToken,
        f: &dyn Fn(&mut ConstraintBuilder<'_>) -> Result<(), GenError>,
        use_input: bool,
    ) -> Result<SolveRes, GenError> {
        // Iterative deepening over the repair-slot capacity: most targets
        // need at most one repair tuple per relation, so small tuple arrays
        // are tried first (exponentially smaller search); only an UNSAT at
        // full capacity means "no such dataset" (equivalent mutants).
        let mut agg_stats = xdata_solver::SolverStats::default();
        for (rung, cap) in crate::builder::REPAIR_LADDER.iter().enumerate() {
            // Between rungs is the natural bail-out point: skeleton cloning
            // and constraint building are wasted work once the token trips.
            if cancel.is_cancelled() {
                return Ok(SolveRes::TimedOut);
            }
            let b = if use_input {
                // Input constraints must precede gen_db_constraints (they
                // mark pinned relations whose enumerated domain constraints
                // are then skipped), so this path builds fresh.
                let mut b = ConstraintBuilder::with_repair_cap(
                    self.schema,
                    self.query,
                    self.domains,
                    copies,
                    *cap,
                )?;
                f(&mut b)?;
                if let Some(input) = &self.opts.input_db {
                    b.gen_input_db_constraints(input)?;
                }
                b.gen_db_constraints();
                b
            } else {
                let mut b = self.skeleton(copies, *cap)?;
                f(&mut b)?;
                b
            };
            let limit = if use_input {
                self.opts.decision_limit.min(500_000)
            } else {
                self.opts.decision_limit
            };
            let session = if !use_input && self.sessions_enabled() {
                Some(self.session(copies, *cap)?)
            } else {
                None
            };
            let (out, stats) = self.solve_memoized(&b.problem, limit, cancel, session.as_deref());
            agg_stats.decisions += stats.decisions;
            agg_stats.conflicts += stats.conflicts;
            agg_stats.theory_relaxations += stats.theory_relaxations;
            agg_stats.propagations += stats.propagations;
            agg_stats.unknown_exits += stats.unknown_exits;
            agg_stats.learned_clauses += stats.learned_clauses;
            agg_stats.restarts += stats.restarts;
            agg_stats.cancel_checks += stats.cancel_checks;
            agg_stats.ground_solves += stats.ground_solves;
            agg_stats.instantiations += stats.instantiations;
            agg_stats.ground_atoms = agg_stats.ground_atoms.max(stats.ground_atoms);
            match out {
                SolveOutcome::Sat(model) => {
                    let dataset = materialize(&b, &model, label);
                    return Ok(SolveRes::Dataset(GeneratedDataset {
                        dataset,
                        label: label.to_string(),
                        stats: agg_stats,
                    }));
                }
                SolveOutcome::Unsat => {
                    if rung + 1 == crate::builder::REPAIR_LADDER.len() {
                        return Ok(SolveRes::Unsat);
                    }
                    // Widen and retry: the UNSAT may be a capacity artifact.
                }
                SolveOutcome::Unknown => {
                    return Ok(SolveRes::GaveUp { decisions: agg_stats.decisions })
                }
                SolveOutcome::Cancelled => return Ok(SolveRes::TimedOut),
            }
        }
        Ok(SolveRes::Unsat)
    }

    /// Assert the original query's conditions over copy `c`.
    fn assert_query_conds(&self, b: &mut ConstraintBuilder<'_>, copy: u32) -> Result<(), GenError> {
        self.assert_base_conds(b, copy)?;
        self.assert_extended_conds(b, copy, ExtSkip::None)
    }

    /// The base conjuncts only: equivalence classes, then predicates.
    fn assert_base_conds(&self, b: &mut ConstraintBuilder<'_>, copy: u32) -> Result<(), GenError> {
        for ec in &self.query.eq_classes {
            let f = b.eq_conds(ec, copy);
            b.problem.assert(f);
        }
        for p in &self.query.preds {
            let f = b.pred_formula(p, copy)?;
            b.problem.assert(f);
        }
        Ok(())
    }

    /// Assert the extended predicates (subqueries, LIKE, NULL checks) in
    /// original polarity over copy `c`, optionally skipping the one a
    /// target is deliberately perturbing. Always appended *after* the base
    /// conditions in fixed field order, so targets sharing a constraint
    /// prefix stay byte-identical for the solve memo.
    fn assert_extended_conds(
        &self,
        b: &mut ConstraintBuilder<'_>,
        copy: u32,
        skip: ExtSkip,
    ) -> Result<(), GenError> {
        for (si, s) in self.query.subs.iter().enumerate() {
            if skip != ExtSkip::SubNull(si) {
                b.suppress_null_spare(si);
            }
            if skip == ExtSkip::Sub(si) || skip == ExtSkip::SubNull(si) {
                continue;
            }
            b.assert_subpred(si, s.kind, s.negated, copy)?;
        }
        for (li, l) in self.query.likes.iter().enumerate() {
            if skip == ExtSkip::Like(li) {
                continue;
            }
            let codes = b.like_codes(l.attr, &l.pattern);
            b.assert_membership(l.attr, &codes, l.negated, copy);
        }
        for (ni, n) in self.query.null_checks.iter().enumerate() {
            if skip == ExtSkip::Null(ni) {
                continue;
            }
            b.assert_null_check(n.attr, n.negated, copy);
        }
        Ok(())
    }

    fn assert_aggregate_conds(
        &self,
        b: &mut ConstraintBuilder<'_>,
        group_by: &[AttrRef],
        having: &[xdata_relalg::HavingPred],
        a: AttrRef,
        copies: u32,
        enabled: [bool; 5],
    ) -> Result<(), GenError> {
        let [pos_strong, pos_weak, s3, s1, s2] = enabled;
        // S0: each tuple set satisfies the query's join and selection
        // conditions, and the sets share the group-by values; the HAVING
        // clause (if any) must hold for the constructed group too.
        for c in 0..copies {
            self.assert_query_conds(b, c)?;
        }
        self.assert_same_group(b, group_by, copies);
        if !having.is_empty() {
            crate::having::assert_having(b, group_by, having, copies, None)?;
        }
        if s1 {
            // S1: sets 0 and 1 share a non-zero aggregated value but are
            // distinct tuples (differ in some other attribute of A's
            // relation).
            let a0 = b.cvc_map(a, 0);
            let a1 = b.cvc_map(a, 1);
            b.problem.assert(Formula::Atom(Atom::new(a0, RelOp::Eq, a1)));
            b.problem.assert(Formula::Atom(Atom::new(a0, RelOp::Ne, Term::Const(0))));
            let arity = self
                .schema
                .relation(&self.query.occurrences[a.occ].base)
                .expect("occurrence base")
                .arity();
            let diff = Formula::or((0..arity).filter(|c| *c != a.col).map(|c| {
                Formula::Atom(Atom::new(
                    b.cvc_map(AttrRef::new(a.occ, c), 0),
                    RelOp::Ne,
                    b.cvc_map(AttrRef::new(a.occ, c), 1),
                ))
            }));
            b.problem.assert(diff);
        }
        if s2 {
            // S2: the third set's aggregated value differs.
            let f = Formula::Atom(Atom::new(b.cvc_map(a, 2), RelOp::Ne, b.cvc_map(a, 0)));
            b.problem.assert(f);
        }
        if s3 {
            // S3: the group-by values of the three sets appear in no other
            // tuple of the corresponding relations, so the group contains
            // exactly these tuples.
            for g in group_by {
                let witness = b.cvc_map(*g, 0);
                let base = &self.query.occurrences[g.occ].base;
                let arr = b.array(base);
                let (_, total) = b.slots_of(base);
                let own: Vec<u32> = (0..copies).map(|c| b.slot(g.occ, c)).collect();
                for slot in 0..total {
                    if own.contains(&slot) {
                        continue;
                    }
                    let f = Formula::Atom(Atom::new(
                        Term::field(arr, slot, g.col as u32),
                        RelOp::Ne,
                        witness,
                    ));
                    b.problem.assert(f);
                }
            }
        }
        if pos_strong {
            // A ≥ 4 separates every pair of the eight operators: COUNT of a
            // 3-tuple group is 3 < 4 ≤ MIN/MAX/AVG/SUM, COUNT(DISTINCT)=2,
            // SUM(DISTINCT) < SUM (A ≠ 0), AVG(DISTINCT) ≠ AVG (values
            // differ by S2) — see the killAggregates discussion in §V-F.
            for c in 0..copies {
                let f =
                    Formula::Atom(Atom::new(b.cvc_map(a, c), RelOp::Ge, Term::Const(4)));
                b.problem.assert(f);
            }
        } else if pos_weak {
            // Fallback: values on one side of zero (the paper's base form).
            for c in 0..copies {
                let f =
                    Formula::Atom(Atom::new(b.cvc_map(a, c), RelOp::Gt, Term::Const(0)));
                b.problem.assert(f);
            }
        }
        Ok(())
    }

    fn column_ref(&self, a: AttrRef) -> xdata_catalog::schema::ColumnRef {
        xdata_catalog::schema::ColumnRef::new(
            self.query.occurrences[a.occ].base.clone(),
            a.col,
        )
    }

    fn names(&self, attrs: &[AttrRef]) -> String {
        attrs
            .iter()
            .map(|a| self.query.attr_name(self.schema, *a))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Combined stats across all datasets of a run (convenience for benches).
pub fn total_stats(suite: &TestSuite) -> SolverStats {
    let mut t = SolverStats::default();
    for d in &suite.datasets {
        t.decisions += d.stats.decisions;
        t.conflicts += d.stats.conflicts;
        t.theory_relaxations += d.stats.theory_relaxations;
        t.propagations += d.stats.propagations;
        t.unknown_exits += d.stats.unknown_exits;
        t.learned_clauses += d.stats.learned_clauses;
        t.restarts += d.stats.restarts;
        t.cancel_checks += d.stats.cancel_checks;
        t.ground_solves += d.stats.ground_solves;
        t.instantiations += d.stats.instantiations;
        t.ground_atoms += d.stats.ground_atoms;
    }
    t
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{FaultPlan, SkipReason};
    use xdata_catalog::university;
    use xdata_relalg::normalize;
    use xdata_sql::parse_query;

    fn gen(sql: &str, fks: usize) -> (NormQuery, Schema, TestSuite) {
        let schema = university::schema_with_fk_count(fks);
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        (q, schema, suite)
    }

    #[test]
    fn all_generated_datasets_are_legal_instances() {
        let (_, schema, suite) = gen(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
            2,
        );
        assert!(!suite.datasets.is_empty());
        for d in &suite.datasets {
            let errs = d.dataset.integrity_violations(&schema);
            assert!(errs.is_empty(), "dataset `{}` violations: {errs:?}", d.label);
        }
    }

    #[test]
    fn no_fk_single_join_two_nullification_datasets() {
        let (_, _, suite) = gen("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 0);
        // original + nullify instructor.id + nullify teaches.id.
        assert_eq!(suite.datasets.len(), 3, "{suite}");
        assert!(suite.skipped.is_empty());
    }

    #[test]
    fn fk_makes_one_direction_equivalent() {
        let (_, _, suite) = gen("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 1);
        // The FK teaches.id → instructor.id makes "nullify instructor.id"
        // infeasible (Example 2): one dataset fewer, one skip recorded.
        assert_eq!(suite.datasets.len(), 2, "{suite}");
        assert_eq!(suite.skipped.len(), 1);
        // The FK pulls t.id into the nullified set S together with i.id,
        // leaving P empty — Algorithm 2's special-cased equivalence.
        assert!(suite.skipped[0].label.contains("i.id"), "{:?}", suite.skipped);
        assert_eq!(suite.skipped[0].reason, SkipReason::EmptyP);
    }

    #[test]
    fn datasets_are_small() {
        let (_, _, suite) = gen(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
            2,
        );
        assert!(suite.max_dataset_size() <= 12, "datasets stay small: {suite}");
    }

    #[test]
    fn original_dataset_gives_nonempty_result() {
        let (q, schema, suite) = gen(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000",
            1,
        );
        let original = &suite.datasets[0];
        assert!(original.label.contains("original"));
        let r = xdata_engine::execute_query(&q, &original.dataset, &schema).unwrap();
        assert!(!r.is_empty(), "original-query dataset must produce rows:\n{}", original.dataset);
    }

    #[test]
    fn selection_killers_generated() {
        let (_, _, suite) = gen("SELECT * FROM instructor WHERE salary > 50000", 0);
        // original + 1 predicate-nullification + 3 comparison datasets.
        let labels: Vec<&str> = suite.datasets.iter().map(|d| d.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("nullify")), "{labels:?}");
        assert_eq!(
            labels.iter().filter(|l| l.contains("comparison")).count(),
            3,
            "{labels:?}"
        );
    }

    #[test]
    fn string_selection_generates() {
        let (q, schema, suite) = gen("SELECT * FROM instructor WHERE name = 'Wu'", 0);
        for d in &suite.datasets {
            assert!(d.dataset.integrity_violations(&schema).is_empty());
        }
        // The `=` comparison dataset must make the predicate true.
        let eq_ds = suite
            .datasets
            .iter()
            .find(|d| d.label.contains("`=`"))
            .expect("eq dataset");
        let r = xdata_engine::execute_query(&q, &eq_ds.dataset, &schema).unwrap();
        assert!(!r.is_empty());
    }

    #[test]
    fn aggregate_dataset_has_three_tuples_per_group() {
        let (q, schema, suite) =
            gen("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id", 0);
        let agg_ds = suite
            .datasets
            .iter()
            .find(|d| d.label.contains("aggregate"))
            .expect("aggregate dataset");
        let tuples = agg_ds.dataset.relation("instructor").unwrap();
        assert!(tuples.len() >= 3, "{}", agg_ds.dataset);
        // Two equal salaries, one different, same dept (S1/S2).
        let r = xdata_engine::execute_query(&q, &agg_ds.dataset, &schema).unwrap();
        assert!(!r.is_empty());
        let mut sal: Vec<i64> = tuples.iter().filter_map(|t| t[3].as_i64()).collect();
        sal.sort_unstable();
        assert!(sal.windows(2).any(|w| w[0] == w[1]), "duplicate pair: {sal:?}");
        assert!(sal.windows(2).any(|w| w[0] != w[1]), "distinct value: {sal:?}");
    }

    #[test]
    fn aggregate_values_separate_count_from_extrema() {
        // The strong-positivity constraint (A ≥ 4) keeps COUNT = 3 out of
        // the value range, so MIN/MAX/SUM/AVG mutants of each other and of
        // COUNT are all distinguished by value, not by luck.
        for agg in ["MAX", "MIN", "SUM", "AVG"] {
            let (q, schema, suite) = gen(
                &format!("SELECT dept_id, {agg}(salary) FROM instructor GROUP BY dept_id"),
                0,
            );
            let space = xdata_relalg::mutation::mutation_space(
                &q,
                xdata_relalg::mutation::MutationOptions::default(),
            );
            let report =
                xdata_engine::kill::kill_report(&q, &space, &suite.data(), &schema).unwrap();
            let mutants: Vec<_> = space.iter().collect();
            let surviving: Vec<String> = report
                .surviving()
                .map(|i| mutants[i].describe(&q))
                .filter(|d| d.contains("aggregate"))
                .collect();
            assert!(surviving.is_empty(), "{agg}: surviving {surviving:?}\n{suite}");
        }
    }

    #[test]
    fn aggregate_on_unique_key_relaxes_s1() {
        // Aggregating the primary key itself: duplicates are impossible,
        // S1 must be dropped but a dataset still generated.
        let (_, _, suite) = gen("SELECT dept_id, COUNT(id) FROM instructor GROUP BY dept_id", 0);
        assert!(
            suite.datasets.iter().any(|d| d.label.contains("aggregate")),
            "{suite}"
        );
    }

    #[test]
    fn nonequi_join_generates_nullifications_both_sides() {
        let (_, _, suite) = gen(
            "SELECT * FROM teaches b, course c WHERE b.course_id = c.course_id + 10",
            0,
        );
        let nulls: Vec<&str> = suite
            .datasets
            .iter()
            .map(|d| d.label.as_str())
            .filter(|l| l.contains("nullify"))
            .collect();
        assert_eq!(nulls.len(), 2, "{nulls:?}");
    }

    #[test]
    fn input_db_mode_uses_input_values() {
        let schema = university::schema_with_fk_count(0);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let input = university::sample_data(5);
        let domains = DomainCatalog::from_dataset(&schema, &input);
        let opts = GenOptions { input_db: Some(input.clone()), ..GenOptions::default() };
        let suite = generate(&q, &schema, &domains, &opts).unwrap();
        // The original-query dataset must consist of input tuples.
        let orig = &suite.datasets[0];
        for t in orig.dataset.relation("instructor").unwrap() {
            assert!(
                input.relation("instructor").unwrap().contains(t),
                "tuple {t:?} not from input db"
            );
        }
    }

    #[test]
    fn cross_dictionary_string_join_generates_satisfying_data() {
        // department.dept_name and section.building use different default
        // dictionaries; an equi-join between them must still produce a
        // dataset with a real (string-level) match.
        let (q, schema, suite) = gen(
            "SELECT * FROM department d, section s WHERE d.dept_name = s.building",
            0,
        );
        let orig = &suite.datasets[0];
        let r = xdata_engine::execute_query(&q, &orig.dataset, &schema).unwrap();
        assert!(!r.is_empty(), "cross-dictionary join unsatisfied:\n{}", orig.dataset);
        // The joined strings really are equal.
        let dep = orig.dataset.relation("department").unwrap();
        let sec = orig.dataset.relation("section").unwrap();
        assert!(dep.iter().any(|d| sec.iter().any(|s| d[1] == s[3])));
    }

    #[test]
    fn nullable_fk_enables_nullification() {
        // §V-H: with a *nullable* FK teaches.id → instructor.id, nullifying
        // instructor.id becomes possible — the teaches tuple takes NULL.
        let ddl = "CREATE TABLE instructor (id INT PRIMARY KEY, salary INT);
                   CREATE TABLE teaches (tid INT PRIMARY KEY, id INT NULL,
                       FOREIGN KEY (id) REFERENCES instructor (id));";
        let schema = xdata_sql::parse_schema(ddl).unwrap();
        assert!(schema.relation("teaches").unwrap().attr(1).nullable);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        // Unlike the non-nullable case, nothing is skipped: both directions
        // of nullification succeed.
        assert!(suite.skipped.is_empty(), "{suite}");
        // Some dataset has a teaches row with NULL id.
        let has_null_fk = suite.datasets.iter().any(|d| {
            d.dataset
                .relation("teaches")
                .unwrap_or(&[])
                .iter()
                .any(|t| t[1].is_null())
        });
        assert!(has_null_fk, "expected a NULL foreign key value:\n{suite}");
        // And every dataset is still a legal instance.
        for d in &suite.datasets {
            let errs = d.dataset.integrity_violations(&schema);
            assert!(errs.is_empty(), "{}: {errs:?}", d.label);
        }
    }

    #[test]
    fn non_nullable_fk_still_skips() {
        let ddl = "CREATE TABLE instructor (id INT PRIMARY KEY, salary INT);
                   CREATE TABLE teaches (tid INT PRIMARY KEY, id INT,
                       FOREIGN KEY (id) REFERENCES instructor (id));";
        let schema = xdata_sql::parse_schema(ddl).unwrap();
        assert!(!schema.relation("teaches").unwrap().attr(1).nullable);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        assert_eq!(suite.skipped.len(), 1, "{suite}");
    }

    #[test]
    fn lazy_mode_generates_same_suite_shape() {
        let schema = university::schema_with_fk_count(1);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let fast = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        let slow = generate(
            &q,
            &schema,
            &domains,
            &GenOptions { mode: xdata_solver::Mode::Lazy, ..GenOptions::default() },
        )
        .unwrap();
        assert_eq!(fast.datasets.len(), slow.datasets.len());
        assert_eq!(fast.skipped.len(), slow.skipped.len());
    }

    #[test]
    fn budget_exhaustion_reports_skip_with_reason() {
        // A decision budget of 0 lets only propagation-solvable targets
        // through; everything needing a single decision must surface as a
        // Budget skip — visibly, not silently dropped.
        let schema = university::schema_with_fk_count(2);
        let q = normalize(
            &parse_query(
                "SELECT * FROM instructor i, teaches t, course c \
                 WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 50000",
            )
            .unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let full = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        let opts = GenOptions { decision_limit: 0, ..GenOptions::default() };
        let starved = generate(&q, &schema, &domains, &opts).unwrap();
        // Same plan, every target accounted for in datasets + skips.
        assert_eq!(
            full.datasets.len() + full.skipped.len(),
            starved.datasets.len() + starved.skipped.len(),
        );
        let budget_skips: Vec<&SkippedTarget> = starved
            .skipped
            .iter()
            .filter(|s| matches!(s.reason, SkipReason::Budget { .. }))
            .collect();
        assert!(!budget_skips.is_empty(), "expected budget skips:\n{starved}");
        for s in &budget_skips {
            assert!(!s.label.is_empty());
        }
        // The skip carries a human-readable reason.
        assert!(format!("{}", budget_skips[0].reason).contains("budget"));
    }

    #[test]
    fn comparison_with_original_op_reuses_original_model() {
        // `salary > 50000` with forced op `>` builds the byte-identical
        // constraint sequence as the original-query target; the solve memo
        // must hand back the same model and the same stats.
        let (_, _, suite) = gen("SELECT * FROM instructor WHERE salary > 50000", 0);
        let orig = &suite.datasets[0];
        assert!(orig.label.contains("original"));
        let gt = suite
            .datasets
            .iter()
            .find(|d| d.label.contains("comparison") && d.label.contains("`>`"))
            .expect("gt comparison dataset");
        // Same tuples (the datasets differ only in their stamped label).
        assert_eq!(
            orig.dataset.relation("instructor"),
            gt.dataset.relation("instructor"),
        );
        assert_eq!(orig.stats.decisions, gt.stats.decisions);
        assert_eq!(orig.stats.conflicts, gt.stats.conflicts);
        assert_eq!(orig.stats.propagations, gt.stats.propagations);
    }

    #[test]
    fn parallel_jobs_reproduce_sequential_suite() {
        let schema = university::schema_with_fk_count(2);
        let q = normalize(
            &parse_query(
                "SELECT * FROM instructor i, teaches t, course c \
                 WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 50000",
            )
            .unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let seq = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        for jobs in [0, 2, 8] {
            let par = generate(
                &q,
                &schema,
                &domains,
                &GenOptions { jobs, ..GenOptions::default() },
            )
            .unwrap();
            assert_eq!(seq.datasets.len(), par.datasets.len(), "jobs={jobs}");
            for (a, b) in seq.datasets.iter().zip(&par.datasets) {
                assert_eq!(a.label, b.label, "jobs={jobs}");
                assert_eq!(a.dataset, b.dataset, "jobs={jobs}, target {}", a.label);
            }
            let skips =
                |s: &TestSuite| s.skipped.iter().map(|k| k.label.clone()).collect::<Vec<_>>();
            assert_eq!(skips(&seq), skips(&par), "jobs={jobs}");
        }
    }

    // ----- Cancellation & chaos unit tests --------------------------------

    fn gen_with(sql: &str, opts: &GenOptions) -> TestSuite {
        let schema = university::schema();
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        generate(&q, &schema, &domains, opts).unwrap()
    }

    const CHAOS_SQL: &str =
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000";

    #[test]
    fn injected_panic_becomes_fault_skip() {
        let opts = GenOptions {
            faults: FaultPlan { panic_targets: vec!["original".into()], ..FaultPlan::default() },
            ..GenOptions::default()
        };
        let suite = gen_with(CHAOS_SQL, &opts);
        let fault = suite
            .skipped
            .iter()
            .find(|s| matches!(s.reason, SkipReason::Fault { .. }))
            .expect("panic target skipped as Fault");
        assert!(fault.label.contains("original"));
        match &fault.reason {
            SkipReason::Fault { message } => assert!(message.contains("injected panic")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(suite.is_partial());
        // Only the faulted target is missing; the rest solved.
        assert!(!suite.datasets.is_empty());
    }

    #[test]
    fn injected_unknown_becomes_budget_skip() {
        let opts = GenOptions {
            faults: FaultPlan {
                unknown_targets: vec!["dataset with `>`".into()],
                ..FaultPlan::default()
            },
            ..GenOptions::default()
        };
        let suite = gen_with(CHAOS_SQL, &opts);
        let hit = suite
            .skipped
            .iter()
            .find(|s| s.label.contains("dataset with `>`"))
            .expect("unknown target skipped");
        assert_eq!(hit.reason, SkipReason::Budget { decisions: 0 });
        assert!(suite.is_partial());
    }

    #[test]
    fn injected_expiry_becomes_timeout_skip_and_stays_local() {
        let opts = GenOptions {
            faults: FaultPlan {
                expire_targets: vec!["dataset with `=`".into()],
                ..FaultPlan::default()
            },
            ..GenOptions::default()
        };
        let suite = gen_with(CHAOS_SQL, &opts);
        let hit = suite
            .skipped
            .iter()
            .find(|s| s.label.contains("dataset with `=`"))
            .expect("expire target skipped");
        assert_eq!(hit.reason, SkipReason::Timeout);
        // The synthetic expiry cancelled a *child* token: the sibling
        // comparison targets still solved.
        assert!(suite.datasets.iter().any(|d| d.label.contains("dataset with `<`")));
        assert!(suite.datasets.iter().any(|d| d.label.contains("dataset with `>`")));
    }

    #[test]
    fn zero_per_target_deadline_times_out_everything() {
        let opts = GenOptions { per_target_deadline_ms: Some(0), ..GenOptions::default() };
        let suite = gen_with(CHAOS_SQL, &opts);
        assert!(suite.datasets.is_empty());
        assert!(suite.is_partial());
        // Every *solvable* target timed out; plan-time skips (EmptyP etc.)
        // keep their own reasons.
        assert!(suite.skipped.iter().any(|s| s.reason == SkipReason::Timeout));
        for s in &suite.skipped {
            assert!(
                matches!(
                    s.reason,
                    SkipReason::Timeout | SkipReason::EmptyP | SkipReason::Equivalent
                ),
                "unexpected reason for {}: {:?}",
                s.label,
                s.reason
            );
        }
    }

    #[test]
    fn pre_cancelled_suite_token_times_out_all_targets() {
        let schema = university::schema();
        let q = normalize(&parse_query(CHAOS_SQL).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let token = CancelToken::new();
        token.cancel();
        let suite =
            generate_cancellable(&q, &schema, &domains, &GenOptions::default(), &token).unwrap();
        assert!(suite.datasets.is_empty());
        assert!(suite.skipped.iter().any(|s| s.reason == SkipReason::Timeout));
    }

    #[test]
    fn generous_deadlines_change_nothing() {
        let plain = gen_with(CHAOS_SQL, &GenOptions::default());
        let timed = gen_with(
            CHAOS_SQL,
            &GenOptions {
                deadline_ms: Some(3_600_000),
                per_target_deadline_ms: Some(3_600_000),
                ..GenOptions::default()
            },
        );
        assert_eq!(plain.datasets.len(), timed.datasets.len());
        for (a, b) in plain.datasets.iter().zip(&timed.datasets) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.dataset, b.dataset);
        }
        assert!(!timed.is_partial());
    }
}
