//! Algorithm 1 and its sub-procedures (§V of the paper).

use xdata_catalog::{DomainCatalog, Schema, Value};
use xdata_relalg::{AttrRef, NormQuery, Operand, SelectSpec};
use xdata_sql::CompareOp;
use xdata_solver::{Atom, Formula, RelOp, SolveOutcome, SolverStats, Term};

use crate::builder::ConstraintBuilder;
use crate::error::GenError;
use crate::materialize::materialize;
use crate::suite::{GenOptions, GeneratedDataset, SkipReason, SkippedTarget, TestSuite};

/// Generate the complete test suite for `query` (Algorithm 1):
/// a dataset for the original query, then datasets killing equivalence-class
/// mutants, other-predicate mutants, comparison mutants and aggregation
/// mutants. The number of datasets is linear in the query size.
pub fn generate(
    query: &NormQuery,
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
) -> Result<TestSuite, GenError> {
    // Preprocessing beyond what normalization did: make sure every string
    // literal in the query is dictionary-coded.
    let domains = prepare_domains(query, schema, domains);
    let gen = Gen { query, schema, domains: &domains, opts };
    let mut suite = TestSuite::default();
    gen.original_query_dataset(&mut suite)?;
    gen.kill_equivalence_classes(&mut suite)?;
    gen.kill_other_predicates(&mut suite)?;
    gen.kill_comparison_operators(&mut suite)?;
    gen.kill_aggregates(&mut suite)?;
    gen.kill_having_comparisons(&mut suite)?;
    gen.kill_duplicates(&mut suite)?;
    Ok(suite)
}

/// Extend dictionaries with the query's string literals so they encode,
/// and widen integer-range domains to cover the query's numeric constants
/// (a selection like `salary > 50000` needs values on both sides of the
/// constant, whatever the default range is).
fn prepare_domains(query: &NormQuery, schema: &Schema, domains: &DomainCatalog) -> DomainCatalog {
    use xdata_catalog::Domain;
    let mut d = domains.clone();
    // String attributes linked by equi-joins or compared directly must
    // share one dictionary, or integer equality in the solver would not
    // mean string equality in the dataset.
    let attr_ty = |a: &AttrRef| -> Option<xdata_catalog::SqlType> {
        let base = &query.occurrences[a.occ].base;
        schema.relation(base).map(|r| r.attr(a.col).ty)
    };
    let mut merge = |d: &mut DomainCatalog, x: &AttrRef, y: &AttrRef| {
        if attr_ty(x) == Some(xdata_catalog::SqlType::Varchar)
            && attr_ty(y) == Some(xdata_catalog::SqlType::Varchar)
        {
            let (bx, by) =
                (query.occurrences[x.occ].base.clone(), query.occurrences[y.occ].base.clone());
            d.merge_dictionaries(&bx, x.col, &by, y.col);
        }
    };
    for ec in &query.eq_classes {
        for w in ec.windows(2) {
            merge(&mut d, &w[0], &w[1]);
        }
    }
    for p in &query.preds {
        if let (Some(x), Some(y)) = (p.lhs.attr_ref(), p.rhs.attr_ref()) {
            merge(&mut d, &x, &y);
        }
    }
    for p in &query.preds {
        for (side, other) in [(&p.lhs, &p.rhs), (&p.rhs, &p.lhs)] {
            let Some(attr) = other.attr_ref() else { continue };
            let base = &query.occurrences[attr.occ].base;
            if schema.relation(base).is_none() {
                continue;
            }
            match side {
                Operand::Const(Value::Str(s)) => {
                    d.ensure_string(base, attr.col, s);
                }
                Operand::Const(Value::Int(k)) => {
                    if let Some(Domain::IntRange { lo, hi }) = d.get(base, attr.col) {
                        let (lo, hi) = (*lo, *hi);
                        // Room on both sides so `<`, `=` and `>` datasets
                        // all exist.
                        let new_lo = lo.min(k - 10);
                        let new_hi = hi.max(k + 10);
                        if new_lo != lo || new_hi != hi {
                            d.set(base, attr.col, Domain::IntRange { lo: new_lo, hi: new_hi });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    d
}

struct Gen<'a> {
    query: &'a NormQuery,
    schema: &'a Schema,
    domains: &'a DomainCatalog,
    opts: &'a GenOptions,
}

/// Outcome of one targeted constraint set.
enum Target {
    Dataset(GeneratedDataset),
    Equivalent,
}

impl<'a> Gen<'a> {
    /// Build constraints via `f`, add database (and input-database)
    /// constraints, solve, materialize. Implements the paper's retry:
    /// when input-database constraints make the set inconsistent, solve
    /// again without them (§VI-A).
    fn solve_target(
        &self,
        copies: u32,
        label: &str,
        f: &dyn Fn(&mut ConstraintBuilder<'_>) -> Result<(), GenError>,
    ) -> Result<Target, GenError> {
        let with_input = self.opts.input_db.is_some();
        if with_input {
            // The input-constrained attempt gets a decision budget: proving
            // UNSAT under tuple-pinning can be expensive, and the paper's
            // §VI-A recovery path is "retry data generation after removing
            // these constraints" anyway.
            match self.solve_once(copies, label, f, true) {
                Ok(Some(ds)) => return Ok(Target::Dataset(ds)),
                Ok(None) | Err(GenError::SolverUnknown(_)) => {}
                Err(e) => return Err(e),
            }
        }
        match self.solve_once(copies, label, f, false)? {
            Some(ds) => Ok(Target::Dataset(ds)),
            None => Ok(Target::Equivalent),
        }
    }

    fn solve_once(
        &self,
        copies: u32,
        label: &str,
        f: &dyn Fn(&mut ConstraintBuilder<'_>) -> Result<(), GenError>,
        use_input: bool,
    ) -> Result<Option<GeneratedDataset>, GenError> {
        // Iterative deepening over the repair-slot capacity: most targets
        // need at most one repair tuple per relation, so small tuple arrays
        // are tried first (exponentially smaller search); only an UNSAT at
        // full capacity means "no such dataset" (equivalent mutants).
        let mut agg_stats = xdata_solver::SolverStats::default();
        for (rung, cap) in crate::builder::REPAIR_LADDER.iter().enumerate() {
            let mut b = ConstraintBuilder::with_repair_cap(
                self.schema,
                self.query,
                self.domains,
                copies,
                *cap,
            )?;
            f(&mut b)?;
            // Input constraints first: they mark pinned relations whose
            // enumerated domain constraints gen_db_constraints then skips.
            if use_input {
                if let Some(input) = &self.opts.input_db {
                    b.gen_input_db_constraints(input)?;
                }
            }
            b.gen_db_constraints();
            let limit = if use_input { 500_000 } else { xdata_solver::DEFAULT_DECISION_LIMIT };
            let (out, stats) = b.problem.solve_with_limit(self.opts.mode, limit);
            agg_stats.decisions += stats.decisions;
            agg_stats.conflicts += stats.conflicts;
            agg_stats.theory_relaxations += stats.theory_relaxations;
            agg_stats.ground_solves += stats.ground_solves;
            agg_stats.instantiations += stats.instantiations;
            agg_stats.ground_atoms = agg_stats.ground_atoms.max(stats.ground_atoms);
            match out {
                SolveOutcome::Sat(model) => {
                    let dataset = materialize(&b, &model, label);
                    return Ok(Some(GeneratedDataset {
                        dataset,
                        label: label.to_string(),
                        stats: agg_stats,
                    }));
                }
                SolveOutcome::Unsat => {
                    if rung + 1 == crate::builder::REPAIR_LADDER.len() {
                        return Ok(None);
                    }
                    // Widen and retry: the UNSAT may be a capacity artifact.
                }
                SolveOutcome::Unknown => return Err(GenError::SolverUnknown(label.to_string())),
            }
        }
        Ok(None)
    }

    /// Assert the original query's conditions over copy `c`.
    fn assert_query_conds(&self, b: &mut ConstraintBuilder<'_>, copy: u32) -> Result<(), GenError> {
        for ec in &self.query.eq_classes {
            let f = b.eq_conds(ec, copy);
            b.problem.assert(f);
        }
        for p in &self.query.preds {
            let f = b.pred_formula(p, copy)?;
            b.problem.assert(f);
        }
        Ok(())
    }

    /// `generateDataSetForOriginalQuery` (§V-B): a dataset with a non-empty
    /// result for the original query. With a HAVING clause the dataset
    /// needs a whole qualifying group, not just one row.
    fn original_query_dataset(&self, suite: &mut TestSuite) -> Result<(), GenError> {
        let label = "original query (non-empty result)";
        let having: &[xdata_relalg::HavingPred] = match &self.query.select {
            SelectSpec::Aggregation { having, .. } => having,
            _ => &[],
        };
        let outcome = if having.is_empty() {
            self.solve_target(1, label, &|b| self.assert_query_conds(b, 0))?
        } else {
            let SelectSpec::Aggregation { group_by, .. } = &self.query.select else {
                unreachable!("having implies aggregation");
            };
            match crate::having::group_size_for(having) {
                None => Target::Equivalent,
                Some(k) => self.solve_target(k, label, &|b| {
                    for c in 0..k {
                        self.assert_query_conds(b, c)?;
                    }
                    for g in group_by {
                        for c in 0..k.saturating_sub(1) {
                            let f = Formula::Atom(Atom::new(
                                b.cvc_map(*g, c),
                                RelOp::Eq,
                                b.cvc_map(*g, c + 1),
                            ));
                            b.problem.assert(f);
                        }
                    }
                    crate::having::assert_having(b, group_by, having, k, None)
                })?,
            }
        };
        match outcome {
            Target::Dataset(d) => suite.datasets.push(d),
            Target::Equivalent => suite.skipped.push(SkippedTarget {
                label: label.to_string(),
                reason: SkipReason::Equivalent,
            }),
        }
        Ok(())
    }

    /// Kill datasets for HAVING comparison mutants: like §V-E, three
    /// datasets per conjunct, constructing groups whose aggregate lands
    /// exactly on, below and above the constant.
    fn kill_having_comparisons(&self, suite: &mut TestSuite) -> Result<(), GenError> {
        let SelectSpec::Aggregation { group_by, having, .. } = &self.query.select else {
            return Ok(());
        };
        for (hi, h) in having.iter().enumerate() {
            for op in [CompareOp::Eq, CompareOp::Lt, CompareOp::Gt] {
                let label = format!(
                    "having {hi} (`{h}`): dataset with `{}`",
                    op.sql_symbol()
                );
                let Some(k) = crate::having::group_size_with_override(having, hi, op) else {
                    suite.skipped.push(SkippedTarget {
                        label,
                        reason: SkipReason::Equivalent,
                    });
                    continue;
                };
                let target = self.solve_target(k, &label, &|b| {
                    for c in 0..k {
                        self.assert_query_conds(b, c)?;
                    }
                    for g in group_by {
                        for c in 0..k.saturating_sub(1) {
                            let f = Formula::Atom(Atom::new(
                                b.cvc_map(*g, c),
                                RelOp::Eq,
                                b.cvc_map(*g, c + 1),
                            ));
                            b.problem.assert(f);
                        }
                    }
                    crate::having::assert_having(b, group_by, having, k, Some((hi, op)))
                })?;
                match target {
                    Target::Dataset(d) => suite.datasets.push(d),
                    Target::Equivalent => suite
                        .skipped
                        .push(SkippedTarget { label, reason: SkipReason::Equivalent }),
                }
            }
        }
        Ok(())
    }

    /// Algorithm 2: for each element of each equivalence class, nullify it
    /// (together with every foreign key referencing it) against the rest of
    /// the class.
    fn kill_equivalence_classes(&self, suite: &mut TestSuite) -> Result<(), GenError> {
        for (ci, ec) in self.query.eq_classes.iter().enumerate() {
            for &e in ec {
                // S := e plus equivalence-class members whose column is a
                // foreign key referencing e's column, directly or
                // indirectly (line 6 of Algorithm 2). Nullable foreign keys
                // are *not* pulled in (§V-H): the referencing column can
                // take NULL instead of being jointly nullified.
                let e_col = self.column_ref(e);
                let s: Vec<AttrRef> = ec
                    .iter()
                    .copied()
                    .filter(|&m| {
                        m == e || self.schema.references_strict(&self.column_ref(m), &e_col)
                    })
                    .collect();
                let p: Vec<AttrRef> = ec.iter().copied().filter(|m| !s.contains(m)).collect();
                let label = format!(
                    "eq-class {ci}: nullify {} against {}",
                    self.names(&s),
                    self.names(&p)
                );
                if p.is_empty() {
                    suite
                        .skipped
                        .push(SkippedTarget { label, reason: SkipReason::EmptyP });
                    continue;
                }
                let target = self.solve_target(1, &label, &|b| {
                    // Members of P match each other.
                    let f = b.eq_conds(&p, 0);
                    b.problem.assert(f);
                    // No tuple of any relation in S matches P's value.
                    let witness = b.cvc_map(p[0], 0);
                    for &m in &s {
                        let f = b.not_exists_value(m, witness);
                        b.problem.assert(f);
                    }
                    // All other equivalence classes hold.
                    for (cj, other) in self.query.eq_classes.iter().enumerate() {
                        if cj != ci {
                            let f = b.eq_conds(other, 0);
                            b.problem.assert(f);
                        }
                    }
                    // All retained predicates hold.
                    for pr in &self.query.preds {
                        let f = b.pred_formula(pr, 0)?;
                        b.problem.assert(f);
                    }
                    Ok(())
                })?;
                match target {
                    Target::Dataset(d) => suite.datasets.push(d),
                    Target::Equivalent => suite
                        .skipped
                        .push(SkippedTarget { label, reason: SkipReason::Equivalent }),
                }
            }
        }
        Ok(())
    }

    /// Algorithm 3: for each retained predicate and each relation in it,
    /// a dataset where no tuple of that relation satisfies the predicate
    /// while everything else holds.
    fn kill_other_predicates(&self, suite: &mut TestSuite) -> Result<(), GenError> {
        for (pi, p) in self.query.preds.iter().enumerate() {
            for r in p.occurrences() {
                let label = format!(
                    "pred {pi} (`{p}`): nullify {}",
                    self.query.occurrences[r].name
                );
                let target = self.solve_target(1, &label, &|b| {
                    let f = b.gen_not_exists(p, r, 0)?;
                    b.problem.assert(f);
                    for ec in &self.query.eq_classes {
                        let f = b.eq_conds(ec, 0);
                        b.problem.assert(f);
                    }
                    for (pj, other) in self.query.preds.iter().enumerate() {
                        if pj != pi {
                            let f = b.pred_formula(other, 0)?;
                            b.problem.assert(f);
                        }
                    }
                    Ok(())
                })?;
                match target {
                    Target::Dataset(d) => suite.datasets.push(d),
                    Target::Equivalent => suite
                        .skipped
                        .push(SkippedTarget { label, reason: SkipReason::Equivalent }),
                }
            }
        }
        Ok(())
    }

    /// `killComparisonOperators` (§V-E): three datasets per comparison
    /// conjunct, in which the conjunct is forced to `=`, `<` and `>`
    /// respectively — sufficient to kill every operator mutant.
    fn kill_comparison_operators(&self, suite: &mut TestSuite) -> Result<(), GenError> {
        for (pi, p) in self.query.preds.iter().enumerate() {
            let attr_vs_const = matches!(
                (&p.lhs, &p.rhs),
                (Operand::Attr { .. }, Operand::Const(_)) | (Operand::Const(_), Operand::Attr { .. })
            );
            if !attr_vs_const && !self.opts.compare_attr_pairs {
                continue;
            }
            // String comparisons only make sense as =/<>: the `<`/`>`
            // datasets would compare dictionary codes; skip those targets.
            let string_pred = matches!(&p.lhs, Operand::Const(Value::Str(_)))
                || matches!(&p.rhs, Operand::Const(Value::Str(_)));
            let target_ops: &[CompareOp] = if string_pred {
                &[CompareOp::Eq, CompareOp::Ne]
            } else {
                &[CompareOp::Eq, CompareOp::Lt, CompareOp::Gt]
            };
            for &op in target_ops {
                let label =
                    format!("comparison {pi} (`{p}`): dataset with `{}`", op.sql_symbol());
                let target = self.solve_target(1, &label, &|b| {
                    let f = b.pred_formula_with_op(p, op, 0)?;
                    b.problem.assert(f);
                    for ec in &self.query.eq_classes {
                        let f = b.eq_conds(ec, 0);
                        b.problem.assert(f);
                    }
                    for (pj, other) in self.query.preds.iter().enumerate() {
                        if pj != pi {
                            let f = b.pred_formula(other, 0)?;
                            b.problem.assert(f);
                        }
                    }
                    Ok(())
                })?;
                match target {
                    Target::Dataset(d) => suite.datasets.push(d),
                    Target::Equivalent => suite
                        .skipped
                        .push(SkippedTarget { label, reason: SkipReason::Equivalent }),
                }
            }
        }
        Ok(())
    }

    /// Algorithm 4: per aggregate, three tuple sets per relation — two with
    /// duplicate aggregated values, one distinct — all in one group, with
    /// optional constraint sets relaxed on inconsistency.
    fn kill_aggregates(&self, suite: &mut TestSuite) -> Result<(), GenError> {
        let SelectSpec::Aggregation { group_by, aggs, having } = &self.query.select else {
            return Ok(());
        };
        // With a HAVING clause the group size may be forced away from the
        // three tuple sets Algorithm 4 wants; construct with the forced
        // size and let the relaxation ladder drop S1/S2 as needed.
        let copies = if having.is_empty() {
            3
        } else {
            match crate::having::group_size_for(having) {
                Some(k) => k.max(3).min(crate::having::MAX_GROUP_SIZE),
                None => return Ok(()), // HAVING unconstructible: no datasets
            }
        };
        for (ai, agg) in aggs.iter().enumerate() {
            let Some(a) = agg.arg else {
                continue; // COUNT(*): no operator mutants (§II footnote).
            };
            let label = format!("aggregate {ai} ({})", agg.func.display_name());
            // Optional constraint sets, dropped greedily on inconsistency
            // (lines 11–13 of Algorithm 4): strong positivity (A ≥ 4, which
            // separates COUNT = 3 from MIN/MAX/SUM/AVG — the paper's "add
            // additional constraints to ensure that COUNT ... also
            // differ"), then weak positivity (A > 0), then S3 (group
            // isolation), then S1 (duplicate pair), then S2 (distinct
            // third value).
            let mut enabled = [true; 5]; // [POS_STRONG, POS_WEAK, S3, S1, S2]
            let mut produced = None;
            loop {
                let target = self.solve_target(copies, &label, &|b| {
                    self.assert_aggregate_conds(b, group_by, having, a, copies, enabled)
                })?;
                match target {
                    Target::Dataset(d) => {
                        produced = Some(d);
                        break;
                    }
                    Target::Equivalent => {
                        // Relax the next enabled optional set.
                        if let Some(i) = enabled.iter().position(|e| *e) {
                            enabled[i] = false;
                        } else {
                            break;
                        }
                    }
                }
            }
            match produced {
                Some(d) => suite.datasets.push(d),
                None => suite
                    .skipped
                    .push(SkippedTarget { label, reason: SkipReason::Equivalent }),
            }
        }
        Ok(())
    }

    fn assert_aggregate_conds(
        &self,
        b: &mut ConstraintBuilder<'_>,
        group_by: &[AttrRef],
        having: &[xdata_relalg::HavingPred],
        a: AttrRef,
        copies: u32,
        enabled: [bool; 5],
    ) -> Result<(), GenError> {
        let [pos_strong, pos_weak, s3, s1, s2] = enabled;
        // S0: each tuple set satisfies the query's join and selection
        // conditions, and the sets share the group-by values; the HAVING
        // clause (if any) must hold for the constructed group too.
        for c in 0..copies {
            self.assert_query_conds(b, c)?;
        }
        for g in group_by {
            for c in 0..copies.saturating_sub(1) {
                let f = Formula::Atom(Atom::new(
                    b.cvc_map(*g, c),
                    RelOp::Eq,
                    b.cvc_map(*g, c + 1),
                ));
                b.problem.assert(f);
            }
        }
        if !having.is_empty() {
            crate::having::assert_having(b, group_by, having, copies, None)?;
        }
        if s1 {
            // S1: sets 0 and 1 share a non-zero aggregated value but are
            // distinct tuples (differ in some other attribute of A's
            // relation).
            let a0 = b.cvc_map(a, 0);
            let a1 = b.cvc_map(a, 1);
            b.problem.assert(Formula::Atom(Atom::new(a0, RelOp::Eq, a1)));
            b.problem.assert(Formula::Atom(Atom::new(a0, RelOp::Ne, Term::Const(0))));
            let arity = self
                .schema
                .relation(&self.query.occurrences[a.occ].base)
                .expect("occurrence base")
                .arity();
            let diff = Formula::or((0..arity).filter(|c| *c != a.col).map(|c| {
                Formula::Atom(Atom::new(
                    b.cvc_map(AttrRef::new(a.occ, c), 0),
                    RelOp::Ne,
                    b.cvc_map(AttrRef::new(a.occ, c), 1),
                ))
            }));
            b.problem.assert(diff);
        }
        if s2 {
            // S2: the third set's aggregated value differs.
            let f = Formula::Atom(Atom::new(b.cvc_map(a, 2), RelOp::Ne, b.cvc_map(a, 0)));
            b.problem.assert(f);
        }
        if s3 {
            // S3: the group-by values of the three sets appear in no other
            // tuple of the corresponding relations, so the group contains
            // exactly these tuples.
            for g in group_by {
                let witness = b.cvc_map(*g, 0);
                let base = &self.query.occurrences[g.occ].base;
                let arr = b.array(base);
                let (_, total) = b.slots_of(base);
                let own: Vec<u32> = (0..copies).map(|c| b.slot(g.occ, c)).collect();
                for slot in 0..total {
                    if own.contains(&slot) {
                        continue;
                    }
                    let f = Formula::Atom(Atom::new(
                        Term::field(arr, slot, g.col as u32),
                        RelOp::Ne,
                        witness,
                    ));
                    b.problem.assert(f);
                }
            }
        }
        if pos_strong {
            // A ≥ 4 separates every pair of the eight operators: COUNT of a
            // 3-tuple group is 3 < 4 ≤ MIN/MAX/AVG/SUM, COUNT(DISTINCT)=2,
            // SUM(DISTINCT) < SUM (A ≠ 0), AVG(DISTINCT) ≠ AVG (values
            // differ by S2) — see the killAggregates discussion in §V-F.
            for c in 0..copies {
                let f =
                    Formula::Atom(Atom::new(b.cvc_map(a, c), RelOp::Ge, Term::Const(4)));
                b.problem.assert(f);
            }
        } else if pos_weak {
            // Fallback: values on one side of zero (the paper's base form).
            for c in 0..copies {
                let f =
                    Formula::Atom(Atom::new(b.cvc_map(a, c), RelOp::Gt, Term::Const(0)));
                b.problem.assert(f);
            }
        }
        Ok(())
    }

    /// Kill the `SELECT` ⇄ `SELECT DISTINCT` mutant (footnote 2's
    /// duplicate-count class): a dataset where the query result contains a
    /// duplicate row — two tuple combinations agreeing on every projected
    /// attribute while differing underneath.
    fn kill_duplicates(&self, suite: &mut TestSuite) -> Result<(), GenError> {
        let projected: Vec<AttrRef> = match &self.query.select {
            SelectSpec::Aggregation { .. } => return Ok(()), // no duplicate mutant
            SelectSpec::Columns(cols) => cols.clone(),
            SelectSpec::Star => Vec::new(), // sentinel: all attributes
        };
        let star = matches!(self.query.select, SelectSpec::Star);
        let label = "duplicate row (SELECT vs SELECT DISTINCT)";
        if star {
            // A duplicated full row needs a relation that admits duplicate
            // tuples, i.e. one without a primary key.
            let has_keyless = self.query.occurrences.iter().any(|o| {
                self.schema
                    .relation(&o.base)
                    .map(|r| r.primary_key.is_empty())
                    .unwrap_or(false)
            });
            if !has_keyless {
                // Structurally impossible (primary keys forbid duplicate
                // rows under SELECT *): the mutant is equivalent; nothing
                // to record — no constraint set was even attempted.
                return Ok(());
            }
        }
        let target = self.solve_target(2, label, &|b| {
            for c in 0..2 {
                self.assert_query_conds(b, c)?;
            }
            if star {
                // Identical tuples in both copies: keyless relations will
                // materialize genuine duplicates.
                for (occ, o) in self.query.occurrences.iter().enumerate() {
                    let arity =
                        self.schema.relation(&o.base).expect("occurrence base").arity();
                    for col in 0..arity {
                        let f = Formula::Atom(Atom::new(
                            b.cvc_map(AttrRef::new(occ, col), 0),
                            RelOp::Eq,
                            b.cvc_map(AttrRef::new(occ, col), 1),
                        ));
                        b.problem.assert(f);
                    }
                }
            } else {
                // Equal projections, distinct provenance.
                for a in &projected {
                    let f = Formula::Atom(Atom::new(
                        b.cvc_map(*a, 0),
                        RelOp::Eq,
                        b.cvc_map(*a, 1),
                    ));
                    b.problem.assert(f);
                }
                let mut alternatives = Vec::new();
                for (occ, o) in self.query.occurrences.iter().enumerate() {
                    let arity =
                        self.schema.relation(&o.base).expect("occurrence base").arity();
                    for col in 0..arity {
                        alternatives.push(Formula::Atom(Atom::new(
                            b.cvc_map(AttrRef::new(occ, col), 0),
                            RelOp::Ne,
                            b.cvc_map(AttrRef::new(occ, col), 1),
                        )));
                    }
                }
                b.problem.assert(Formula::or(alternatives));
            }
            Ok(())
        })?;
        match target {
            Target::Dataset(d) => suite.datasets.push(d),
            Target::Equivalent => suite.skipped.push(SkippedTarget {
                label: label.to_string(),
                reason: SkipReason::Equivalent,
            }),
        }
        Ok(())
    }

    fn column_ref(&self, a: AttrRef) -> xdata_catalog::schema::ColumnRef {
        xdata_catalog::schema::ColumnRef::new(
            self.query.occurrences[a.occ].base.clone(),
            a.col,
        )
    }

    fn names(&self, attrs: &[AttrRef]) -> String {
        attrs
            .iter()
            .map(|a| self.query.attr_name(self.schema, *a))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Combined stats across all datasets of a run (convenience for benches).
pub fn total_stats(suite: &TestSuite) -> SolverStats {
    let mut t = SolverStats::default();
    for d in &suite.datasets {
        t.decisions += d.stats.decisions;
        t.conflicts += d.stats.conflicts;
        t.theory_relaxations += d.stats.theory_relaxations;
        t.ground_solves += d.stats.ground_solves;
        t.instantiations += d.stats.instantiations;
        t.ground_atoms += d.stats.ground_atoms;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_catalog::university;
    use xdata_relalg::normalize;
    use xdata_sql::parse_query;

    fn gen(sql: &str, fks: usize) -> (NormQuery, Schema, TestSuite) {
        let schema = university::schema_with_fk_count(fks);
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        (q, schema, suite)
    }

    #[test]
    fn all_generated_datasets_are_legal_instances() {
        let (_, schema, suite) = gen(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
            2,
        );
        assert!(!suite.datasets.is_empty());
        for d in &suite.datasets {
            let errs = d.dataset.integrity_violations(&schema);
            assert!(errs.is_empty(), "dataset `{}` violations: {errs:?}", d.label);
        }
    }

    #[test]
    fn no_fk_single_join_two_nullification_datasets() {
        let (_, _, suite) = gen("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 0);
        // original + nullify instructor.id + nullify teaches.id.
        assert_eq!(suite.datasets.len(), 3, "{suite}");
        assert!(suite.skipped.is_empty());
    }

    #[test]
    fn fk_makes_one_direction_equivalent() {
        let (_, _, suite) = gen("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 1);
        // The FK teaches.id → instructor.id makes "nullify instructor.id"
        // infeasible (Example 2): one dataset fewer, one skip recorded.
        assert_eq!(suite.datasets.len(), 2, "{suite}");
        assert_eq!(suite.skipped.len(), 1);
        // The FK pulls t.id into the nullified set S together with i.id,
        // leaving P empty — Algorithm 2's special-cased equivalence.
        assert!(suite.skipped[0].label.contains("i.id"), "{:?}", suite.skipped);
        assert_eq!(suite.skipped[0].reason, SkipReason::EmptyP);
    }

    #[test]
    fn datasets_are_small() {
        let (_, _, suite) = gen(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
            2,
        );
        assert!(suite.max_dataset_size() <= 12, "datasets stay small: {suite}");
    }

    #[test]
    fn original_dataset_gives_nonempty_result() {
        let (q, schema, suite) = gen(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000",
            1,
        );
        let original = &suite.datasets[0];
        assert!(original.label.contains("original"));
        let r = xdata_engine::execute_query(&q, &original.dataset, &schema).unwrap();
        assert!(!r.is_empty(), "original-query dataset must produce rows:\n{}", original.dataset);
    }

    #[test]
    fn selection_killers_generated() {
        let (_, _, suite) = gen("SELECT * FROM instructor WHERE salary > 50000", 0);
        // original + 1 predicate-nullification + 3 comparison datasets.
        let labels: Vec<&str> = suite.datasets.iter().map(|d| d.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("nullify")), "{labels:?}");
        assert_eq!(
            labels.iter().filter(|l| l.contains("comparison")).count(),
            3,
            "{labels:?}"
        );
    }

    #[test]
    fn string_selection_generates() {
        let (q, schema, suite) = gen("SELECT * FROM instructor WHERE name = 'Wu'", 0);
        for d in &suite.datasets {
            assert!(d.dataset.integrity_violations(&schema).is_empty());
        }
        // The `=` comparison dataset must make the predicate true.
        let eq_ds = suite
            .datasets
            .iter()
            .find(|d| d.label.contains("`=`"))
            .expect("eq dataset");
        let r = xdata_engine::execute_query(&q, &eq_ds.dataset, &schema).unwrap();
        assert!(!r.is_empty());
    }

    #[test]
    fn aggregate_dataset_has_three_tuples_per_group() {
        let (q, schema, suite) =
            gen("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id", 0);
        let agg_ds = suite
            .datasets
            .iter()
            .find(|d| d.label.contains("aggregate"))
            .expect("aggregate dataset");
        let tuples = agg_ds.dataset.relation("instructor").unwrap();
        assert!(tuples.len() >= 3, "{}", agg_ds.dataset);
        // Two equal salaries, one different, same dept (S1/S2).
        let r = xdata_engine::execute_query(&q, &agg_ds.dataset, &schema).unwrap();
        assert!(!r.is_empty());
        let mut sal: Vec<i64> = tuples.iter().filter_map(|t| t[3].as_i64()).collect();
        sal.sort_unstable();
        assert!(sal.windows(2).any(|w| w[0] == w[1]), "duplicate pair: {sal:?}");
        assert!(sal.windows(2).any(|w| w[0] != w[1]), "distinct value: {sal:?}");
    }

    #[test]
    fn aggregate_values_separate_count_from_extrema() {
        // The strong-positivity constraint (A ≥ 4) keeps COUNT = 3 out of
        // the value range, so MIN/MAX/SUM/AVG mutants of each other and of
        // COUNT are all distinguished by value, not by luck.
        for agg in ["MAX", "MIN", "SUM", "AVG"] {
            let (q, schema, suite) = gen(
                &format!("SELECT dept_id, {agg}(salary) FROM instructor GROUP BY dept_id"),
                0,
            );
            let space = xdata_relalg::mutation::mutation_space(
                &q,
                xdata_relalg::mutation::MutationOptions::default(),
            );
            let report =
                xdata_engine::kill::kill_report(&q, &space, &suite.data(), &schema).unwrap();
            let mutants: Vec<_> = space.iter().collect();
            let surviving: Vec<String> = report
                .surviving()
                .map(|i| mutants[i].describe(&q))
                .filter(|d| d.contains("aggregate"))
                .collect();
            assert!(surviving.is_empty(), "{agg}: surviving {surviving:?}\n{suite}");
        }
    }

    #[test]
    fn aggregate_on_unique_key_relaxes_s1() {
        // Aggregating the primary key itself: duplicates are impossible,
        // S1 must be dropped but a dataset still generated.
        let (_, _, suite) = gen("SELECT dept_id, COUNT(id) FROM instructor GROUP BY dept_id", 0);
        assert!(
            suite.datasets.iter().any(|d| d.label.contains("aggregate")),
            "{suite}"
        );
    }

    #[test]
    fn nonequi_join_generates_nullifications_both_sides() {
        let (_, _, suite) = gen(
            "SELECT * FROM teaches b, course c WHERE b.course_id = c.course_id + 10",
            0,
        );
        let nulls: Vec<&str> = suite
            .datasets
            .iter()
            .map(|d| d.label.as_str())
            .filter(|l| l.contains("nullify"))
            .collect();
        assert_eq!(nulls.len(), 2, "{nulls:?}");
    }

    #[test]
    fn input_db_mode_uses_input_values() {
        let schema = university::schema_with_fk_count(0);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let input = university::sample_data(5);
        let domains = DomainCatalog::from_dataset(&schema, &input);
        let opts = GenOptions { input_db: Some(input.clone()), ..GenOptions::default() };
        let suite = generate(&q, &schema, &domains, &opts).unwrap();
        // The original-query dataset must consist of input tuples.
        let orig = &suite.datasets[0];
        for t in orig.dataset.relation("instructor").unwrap() {
            assert!(
                input.relation("instructor").unwrap().contains(t),
                "tuple {t:?} not from input db"
            );
        }
    }

    #[test]
    fn cross_dictionary_string_join_generates_satisfying_data() {
        // department.dept_name and section.building use different default
        // dictionaries; an equi-join between them must still produce a
        // dataset with a real (string-level) match.
        let (q, schema, suite) = gen(
            "SELECT * FROM department d, section s WHERE d.dept_name = s.building",
            0,
        );
        let orig = &suite.datasets[0];
        let r = xdata_engine::execute_query(&q, &orig.dataset, &schema).unwrap();
        assert!(!r.is_empty(), "cross-dictionary join unsatisfied:\n{}", orig.dataset);
        // The joined strings really are equal.
        let dep = orig.dataset.relation("department").unwrap();
        let sec = orig.dataset.relation("section").unwrap();
        assert!(dep.iter().any(|d| sec.iter().any(|s| d[1] == s[3])));
    }

    #[test]
    fn nullable_fk_enables_nullification() {
        // §V-H: with a *nullable* FK teaches.id → instructor.id, nullifying
        // instructor.id becomes possible — the teaches tuple takes NULL.
        let ddl = "CREATE TABLE instructor (id INT PRIMARY KEY, salary INT);
                   CREATE TABLE teaches (tid INT PRIMARY KEY, id INT NULL,
                       FOREIGN KEY (id) REFERENCES instructor (id));";
        let schema = xdata_sql::parse_schema(ddl).unwrap();
        assert!(schema.relation("teaches").unwrap().attr(1).nullable);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        // Unlike the non-nullable case, nothing is skipped: both directions
        // of nullification succeed.
        assert!(suite.skipped.is_empty(), "{suite}");
        // Some dataset has a teaches row with NULL id.
        let has_null_fk = suite.datasets.iter().any(|d| {
            d.dataset
                .relation("teaches")
                .unwrap_or(&[])
                .iter()
                .any(|t| t[1].is_null())
        });
        assert!(has_null_fk, "expected a NULL foreign key value:\n{suite}");
        // And every dataset is still a legal instance.
        for d in &suite.datasets {
            let errs = d.dataset.integrity_violations(&schema);
            assert!(errs.is_empty(), "{}: {errs:?}", d.label);
        }
    }

    #[test]
    fn non_nullable_fk_still_skips() {
        let ddl = "CREATE TABLE instructor (id INT PRIMARY KEY, salary INT);
                   CREATE TABLE teaches (tid INT PRIMARY KEY, id INT,
                       FOREIGN KEY (id) REFERENCES instructor (id));";
        let schema = xdata_sql::parse_schema(ddl).unwrap();
        assert!(!schema.relation("teaches").unwrap().attr(1).nullable);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        assert_eq!(suite.skipped.len(), 1, "{suite}");
    }

    #[test]
    fn lazy_mode_generates_same_suite_shape() {
        let schema = university::schema_with_fk_count(1);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let fast = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        let slow = generate(
            &q,
            &schema,
            &domains,
            &GenOptions { mode: xdata_solver::Mode::Lazy, ..GenOptions::default() },
        )
        .unwrap();
        assert_eq!(fast.datasets.len(), slow.datasets.len());
        assert_eq!(fast.skipped.len(), slow.skipped.len());
    }
}
