//! Batch grading: evaluate many candidate queries against one reference.
//!
//! The direct application of X-Data is grading student SQL submissions
//! against an instructor query (§I). The single-candidate path
//! (`XData::grade` in the facade crate) regenerates the test suite per
//! call; for a course-sized batch that repeats the expensive half of the
//! pipeline hundreds of times for the *same* reference query.
//! [`grade_batch`] amortizes it:
//!
//! 1. parse/normalize the reference and generate its suite **once**;
//! 2. execute the reference once per dataset (the expected results);
//! 3. parse/normalize every candidate, attributing parse and normalization
//!    errors per candidate instead of failing the batch;
//! 4. collapse candidates with equal
//!    [`canonical_form`]s into
//!    equivalence classes (`core.grade.dedup_hit`/`miss`) — each class
//!    executes once and its verdict is shared;
//! 5. fan the class×dataset grid over the `xdata-par` pool under the
//!    caller's [`CancelToken`]; cells cancelled by a deadline surface as
//!    [`CandidateOutcome::Unevaluated`], never as a verdict.
//!
//! The verdict report is deterministic: byte-identical across `jobs`
//! values, including partial runs under chaos-injected cancellation
//! (asserted by `tests/grading.rs`).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use xdata_catalog::{DomainCatalog, Schema};
use xdata_engine::exec::{execute_query_strategy, JoinStrategy};
use xdata_engine::ResultSet;
use xdata_par::{par_map_cancel, CancelToken};
use xdata_relalg::fingerprint::{canonical_form, structural_hash};
use xdata_relalg::{normalize, NormQuery};

use crate::error::GenError;
use crate::generate::{generate_cancellable, generate_warm};
use crate::suite::GenOptions;
use crate::warm::WarmCache;

/// Error failing a whole batch. Per-candidate parse/normalization errors do
/// **not** land here — they become [`CandidateOutcome::Invalid`] verdicts;
/// this type covers the reference query and suite generation only.
#[derive(Debug)]
pub enum GradeError {
    /// The *reference* query failed to parse.
    Parse(xdata_sql::ParseError),
    /// The *reference* query failed to normalize.
    RelAlg(xdata_relalg::RelAlgError),
    /// Suite generation failed.
    Gen(GenError),
    /// The reference query itself failed to execute on a generated dataset.
    Engine(xdata_engine::EngineError),
}

impl fmt::Display for GradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradeError::Parse(e) => write!(f, "reference query: {e}"),
            GradeError::RelAlg(e) => write!(f, "reference query: {e}"),
            GradeError::Gen(e) => write!(f, "{e}"),
            GradeError::Engine(e) => write!(f, "reference execution: {e}"),
        }
    }
}
impl std::error::Error for GradeError {}

impl From<xdata_sql::ParseError> for GradeError {
    fn from(e: xdata_sql::ParseError) -> Self {
        GradeError::Parse(e)
    }
}
impl From<xdata_relalg::RelAlgError> for GradeError {
    fn from(e: xdata_relalg::RelAlgError) -> Self {
        GradeError::RelAlg(e)
    }
}
impl From<GenError> for GradeError {
    fn from(e: GenError) -> Self {
        GradeError::Gen(e)
    }
}
impl From<xdata_engine::EngineError> for GradeError {
    fn from(e: xdata_engine::EngineError) -> Self {
        GradeError::Engine(e)
    }
}

/// Verdict for one candidate (shared by every member of its equivalence
/// class).
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateOutcome {
    /// Agrees with the reference on every generated dataset.
    Pass,
    /// Differs on at least one dataset.
    Fail {
        /// Index of the first dataset whose results differ.
        first_dataset: usize,
        /// Killed-by-dataset matrix row: `killed_by[d]` is true when the
        /// candidate's result differs from the reference's on dataset `d`.
        killed_by: Vec<bool>,
        /// Datasets the candidate agreed on — the partial-credit numerator.
        agreeing: usize,
    },
    /// The submission did not parse or normalize; the message says why.
    Invalid { message: String },
    /// The submission executed with an error (e.g. a relation outside the
    /// schema that normalization admits but execution rejects).
    ExecError { message: String },
    /// The deadline expired before every dataset produced a verdict — the
    /// candidate is unresolved, not passed and not failed.
    Unevaluated,
}

impl CandidateOutcome {
    /// Partial-credit score in `[0, 1]`: the fraction of datasets the
    /// candidate agreed on. `Invalid`/`ExecError` score 0; `Unevaluated`
    /// has no score.
    pub fn score(&self, datasets: usize) -> Option<f64> {
        match self {
            CandidateOutcome::Pass => Some(1.0),
            CandidateOutcome::Fail { agreeing, .. } => {
                Some(*agreeing as f64 / datasets.max(1) as f64)
            }
            CandidateOutcome::Invalid { .. } | CandidateOutcome::ExecError { .. } => Some(0.0),
            CandidateOutcome::Unevaluated => None,
        }
    }
}

/// Verdict for one candidate of the batch, in input order.
#[derive(Debug, Clone)]
pub struct CandidateVerdict {
    /// Index into the input candidate slice.
    pub index: usize,
    /// Equivalence class this candidate collapsed into (`None` for
    /// candidates that never normalized).
    pub class: Option<usize>,
    /// Structural hash of the class, for display.
    pub class_hash: Option<u128>,
    /// Whether another candidate earlier in the batch already covered this
    /// class (this verdict was shared, not computed).
    pub dedup_hit: bool,
    pub outcome: CandidateOutcome,
}

/// Everything [`grade_batch`] produces.
#[derive(Debug, Clone)]
pub struct BatchGradeReport {
    /// Datasets in the generated suite.
    pub datasets: usize,
    /// Whether the suite was partial (deadline/faults skipped targets):
    /// `Pass` verdicts then certify agreement only on the datasets present.
    pub partial: bool,
    /// Distinct equivalence classes that executed.
    pub classes: usize,
    /// Candidates answered from an earlier candidate's class.
    pub dedup_hits: usize,
    /// Per-candidate verdicts, in input order.
    pub verdicts: Vec<CandidateVerdict>,
    /// Wall-clock nanoseconds of executed grid cells, per class (index =
    /// class id). Dedup-hit candidates cost none of this — the per-class
    /// view is what the throughput benches report percentiles over.
    pub class_eval_ns: Vec<u64>,
}

impl BatchGradeReport {
    /// Candidates that passed on the full (non-partial) suite.
    pub fn passed(&self) -> usize {
        self.verdicts.iter().filter(|v| v.outcome == CandidateOutcome::Pass).count()
    }

    /// Render the verdict report. Deterministic: contains no timings, so
    /// the same batch renders byte-identically for every `jobs` value.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch grade: {} candidates, {} classes ({} dedup hits), {} datasets{}",
            self.verdicts.len(),
            self.classes,
            self.dedup_hits,
            self.datasets,
            if self.partial { " [PARTIAL SUITE]" } else { "" },
        );
        for v in &self.verdicts {
            let class = match (v.class, v.class_hash) {
                (Some(c), Some(h)) => {
                    format!(" [class {c} {:016x}{}]", h as u64, if v.dedup_hit { " dup" } else { "" })
                }
                _ => String::new(),
            };
            let line = match &v.outcome {
                CandidateOutcome::Pass => {
                    format!("PASS   score 1.000 (agrees on all {} datasets)", self.datasets)
                }
                CandidateOutcome::Fail { first_dataset, killed_by, agreeing } => {
                    let vector: String =
                        killed_by.iter().map(|&k| if k { 'X' } else { '.' }).collect();
                    format!(
                        "FAIL   score {:.3} (first differs on dataset {first_dataset}; kill vector {vector}; agrees on {agreeing}/{})",
                        *agreeing as f64 / self.datasets.max(1) as f64,
                        self.datasets,
                    )
                }
                CandidateOutcome::Invalid { message } => {
                    format!("INVALID score 0.000 ({message})")
                }
                CandidateOutcome::ExecError { message } => {
                    format!("ERROR  score 0.000 ({message})")
                }
                CandidateOutcome::Unevaluated => "UNEVALUATED (deadline expired)".to_string(),
            };
            let _ = writeln!(out, "#{:<4} {line}{class}", v.index);
        }
        out
    }
}

/// Grade `candidates` against `reference_sql` with one shared suite. See
/// the module docs for the pipeline; `strategy` selects the join algorithm
/// for *all* executions (reference and candidates alike, so expected and
/// actual results come from the same code path).
pub fn grade_batch(
    reference_sql: &str,
    candidates: &[String],
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
    strategy: JoinStrategy,
) -> Result<BatchGradeReport, GradeError> {
    let cancel = CancelToken::for_deadline_ms(opts.deadline_ms);
    grade_batch_cancellable(reference_sql, candidates, schema, domains, opts, strategy, &cancel)
}

/// [`grade_batch`] under a caller-supplied [`CancelToken`] spanning
/// generation *and* the grading grid.
pub fn grade_batch_cancellable(
    reference_sql: &str,
    candidates: &[String],
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
    strategy: JoinStrategy,
    cancel: &CancelToken,
) -> Result<BatchGradeReport, GradeError> {
    grade_batch_impl(reference_sql, candidates, schema, domains, opts, strategy, cancel, None)
}

/// [`grade_batch_cancellable`] with suite generation routed through a
/// process-long [`WarmCache`] (see [`crate::generate::generate_warm`]): a
/// daemon grading many batches against one reference query pays for suite
/// generation once per `(namespace, reference, options)` and replays the
/// memoized solves on every later batch.
#[allow(clippy::too_many_arguments)]
pub fn grade_batch_warm(
    reference_sql: &str,
    candidates: &[String],
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
    strategy: JoinStrategy,
    cancel: &CancelToken,
    warm: &WarmCache,
    namespace: &str,
) -> Result<BatchGradeReport, GradeError> {
    grade_batch_impl(
        reference_sql,
        candidates,
        schema,
        domains,
        opts,
        strategy,
        cancel,
        Some((warm, namespace)),
    )
}

#[allow(clippy::too_many_arguments)]
fn grade_batch_impl(
    reference_sql: &str,
    candidates: &[String],
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
    strategy: JoinStrategy,
    cancel: &CancelToken,
    warm: Option<(&WarmCache, &str)>,
) -> Result<BatchGradeReport, GradeError> {
    let reference = normalize(&xdata_sql::parse_query(reference_sql)?, schema)?;
    let suite = match warm {
        Some((w, ns)) => generate_warm(&reference, schema, domains, opts, cancel, w, ns)?,
        None => generate_cancellable(&reference, schema, domains, opts, cancel)?,
    };
    let _grade_span = xdata_obs::span("grade");

    let expected: Vec<ResultSet> = {
        let _ref_span = xdata_obs::span("grade/reference");
        suite
            .datasets
            .iter()
            .map(|d| execute_query_strategy(&reference, &d.dataset, schema, strategy))
            .collect::<Result<_, _>>()?
    };

    // Parse/normalize + dedup. Sequential: canonical_form is string work,
    // negligible next to execution, and the first-seen class order must be
    // input order for determinism.
    let mut class_of_form: HashMap<String, usize> = HashMap::new();
    let mut class_queries: Vec<NormQuery> = Vec::new();
    let mut class_hashes: Vec<u128> = Vec::new();
    let mut prep: Vec<Result<(usize, bool), String>> = Vec::with_capacity(candidates.len());
    let (mut hits, mut misses) = (0u64, 0u64);
    for sql in candidates {
        let parsed = xdata_sql::parse_query(sql)
            .map_err(|e| e.to_string())
            .and_then(|ast| normalize(&ast, schema).map_err(|e| e.to_string()));
        prep.push(parsed.map(|q| match class_of_form.entry(canonical_form(&q)) {
            Entry::Occupied(e) => {
                hits += 1;
                (*e.get(), true)
            }
            Entry::Vacant(v) => {
                misses += 1;
                let id = class_queries.len();
                v.insert(id);
                class_hashes.push(structural_hash(&q));
                class_queries.push(q);
                (id, false)
            }
        }));
    }
    xdata_obs::counter("core.grade.candidates", candidates.len() as u64);
    xdata_obs::counter("core.grade.dedup_hit", hits);
    xdata_obs::counter("core.grade.dedup_miss", misses);

    // The class×dataset grid, class-major so one class's cells are
    // contiguous. Each cell grades one class on one dataset.
    let datasets = suite.datasets.len();
    let grid: Vec<(usize, usize)> = (0..class_queries.len())
        .flat_map(|ci| (0..datasets).map(move |di| (ci, di)))
        .collect();
    let cells = {
        let _grid_span = xdata_obs::span("grade/grid");
        par_map_cancel(opts.jobs, &grid, cancel, |_, &(ci, di)| {
            let start = Instant::now();
            let verdict = execute_query_strategy(
                &class_queries[ci],
                &suite.datasets[di].dataset,
                schema,
                strategy,
            )
            .map(|got| got != expected[di])
            .map_err(|e| e.to_string());
            (verdict, start.elapsed().as_nanos() as u64)
        })
    };

    // Fold cells into per-class outcomes. A suite that generated zero
    // datasets under a deadline gives no evidence at all — that is
    // Unevaluated, not Pass.
    let mut class_outcomes: Vec<CandidateOutcome> = Vec::with_capacity(class_queries.len());
    let mut class_eval_ns = vec![0u64; class_queries.len()];
    for ci in 0..class_queries.len() {
        let row = &cells[ci * datasets..(ci + 1) * datasets];
        class_eval_ns[ci] = row.iter().flatten().map(|(_, ns)| ns).sum();
        let outcome = if row.iter().any(|c| c.is_none()) || (datasets == 0 && suite.is_partial())
        {
            CandidateOutcome::Unevaluated
        } else if let Some((Err(e), _)) = row.iter().flatten().find(|(v, _)| v.is_err()) {
            CandidateOutcome::ExecError { message: e.clone() }
        } else {
            let killed_by: Vec<bool> =
                row.iter().flatten().map(|(v, _)| *v.as_ref().unwrap_or(&false)).collect();
            match killed_by.iter().position(|&k| k) {
                None => CandidateOutcome::Pass,
                Some(first_dataset) => {
                    let agreeing = killed_by.iter().filter(|&&k| !k).count();
                    CandidateOutcome::Fail { first_dataset, killed_by, agreeing }
                }
            }
        };
        class_outcomes.push(outcome);
    }

    let verdicts: Vec<CandidateVerdict> = prep
        .into_iter()
        .enumerate()
        .map(|(index, p)| match p {
            Err(message) => CandidateVerdict {
                index,
                class: None,
                class_hash: None,
                dedup_hit: false,
                outcome: CandidateOutcome::Invalid { message },
            },
            Ok((ci, dedup_hit)) => CandidateVerdict {
                index,
                class: Some(ci),
                class_hash: Some(class_hashes[ci]),
                dedup_hit,
                outcome: class_outcomes[ci].clone(),
            },
        })
        .collect();
    let dedup_hits = verdicts.iter().filter(|v| v.dedup_hit).count();
    Ok(BatchGradeReport {
        datasets,
        partial: suite.is_partial(),
        classes: class_queries.len(),
        dedup_hits,
        verdicts,
        class_eval_ns,
    })
}
