//! Test-suite minimization — the paper's future work made real:
//! "We are also working on minimizing the number of datasets generated, by
//! pruning redundant datasets" (§VII).
//!
//! Given the kill matrix (dataset × mutant), a greedy set cover keeps the
//! original-query dataset (the tester must see one non-empty result) plus
//! a minimal-ish subset of datasets that together kill every mutant the
//! full suite kills. Greedy set cover is an (ln n)-approximation, which is
//! exact on every workload in the evaluation.

use xdata_catalog::Schema;
use xdata_engine::kill::execute_mutant;
use xdata_engine::{execute_query, EngineError};
use xdata_relalg::{MutationSpace, NormQuery};

use crate::suite::TestSuite;

/// Prune datasets that kill no mutant not already killed by the kept ones.
/// Returns the minimized suite; `skipped` entries are preserved.
pub fn minimize_suite(
    query: &NormQuery,
    suite: &TestSuite,
    space: &MutationSpace,
    schema: &Schema,
) -> Result<TestSuite, EngineError> {
    let mutants: Vec<_> = space.iter().collect();
    // Kill matrix: per dataset, the set of killed mutant indices.
    let mut kills: Vec<Vec<usize>> = Vec::with_capacity(suite.datasets.len());
    for d in &suite.datasets {
        let original = execute_query(query, &d.dataset, schema)?;
        let mut killed = Vec::new();
        for (mi, m) in mutants.iter().enumerate() {
            let mutated = execute_mutant(query, m, &d.dataset, schema)?;
            if mutated != original {
                killed.push(mi);
            }
        }
        kills.push(killed);
    }
    let total_killable: std::collections::BTreeSet<usize> =
        kills.iter().flatten().copied().collect();

    let mut covered: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut keep: Vec<usize> = Vec::new();
    // Always keep the original-query dataset (index with "original" label,
    // else the first).
    if let Some(oi) = suite
        .datasets
        .iter()
        .position(|d| d.label.contains("original"))
        .or(if suite.datasets.is_empty() { None } else { Some(0) })
    {
        keep.push(oi);
        covered.extend(kills[oi].iter().copied());
    }
    // Greedy cover.
    while covered.len() < total_killable.len() {
        let best = (0..suite.datasets.len())
            .filter(|i| !keep.contains(i))
            .max_by_key(|i| kills[*i].iter().filter(|m| !covered.contains(m)).count())
            .expect("uncovered mutants imply an uncounted dataset");
        let gain = kills[best].iter().filter(|m| !covered.contains(m)).count();
        if gain == 0 {
            break; // defensive: should not happen
        }
        keep.push(best);
        covered.extend(kills[best].iter().copied());
    }
    keep.sort_unstable();
    Ok(TestSuite {
        datasets: keep.iter().map(|&i| suite.datasets[i].clone()).collect(),
        skipped: suite.skipped.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::suite::GenOptions;
    use xdata_catalog::{university, DomainCatalog};
    use xdata_engine::kill::kill_report;
    use xdata_relalg::mutation::{mutation_space, MutationOptions};
    use xdata_relalg::normalize;
    use xdata_sql::parse_query;

    fn setup(sql: &str, fks: usize) -> (NormQuery, Schema, TestSuite, MutationSpace) {
        let schema = university::schema_with_fk_count(fks);
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
        let space = mutation_space(&q, MutationOptions::default());
        (q, schema, suite, space)
    }

    #[test]
    fn minimization_preserves_kill_power() {
        let (q, schema, suite, space) = setup(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 5",
            2,
        );
        let min = minimize_suite(&q, &suite, &space, &schema).unwrap();
        assert!(min.datasets.len() <= suite.datasets.len());
        let before = kill_report(&q, &space, &suite.data(), &schema).unwrap();
        let after = kill_report(&q, &space, &min.data(), &schema).unwrap();
        assert_eq!(before.killed_count(), after.killed_count());
    }

    #[test]
    fn minimization_keeps_original_dataset() {
        let (q, schema, suite, space) =
            setup("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", 1);
        let min = minimize_suite(&q, &suite, &space, &schema).unwrap();
        assert!(min.datasets.iter().any(|d| d.label.contains("original")));
    }

    #[test]
    fn comparison_datasets_get_pruned_when_redundant() {
        // The three =, <, > datasets for one selection overlap heavily with
        // the predicate-nullification dataset; minimization must shrink.
        let (q, schema, suite, space) =
            setup("SELECT id FROM instructor WHERE salary > 100", 0);
        let min = minimize_suite(&q, &suite, &space, &schema).unwrap();
        assert!(
            min.datasets.len() < suite.datasets.len(),
            "expected pruning: {} -> {}",
            suite.datasets.len(),
            min.datasets.len()
        );
        let before = kill_report(&q, &space, &suite.data(), &schema).unwrap();
        let after = kill_report(&q, &space, &min.data(), &schema).unwrap();
        assert_eq!(before.killed_count(), after.killed_count());
    }

    #[test]
    fn empty_suite_stays_empty() {
        let schema = university::schema_with_fk_count(0);
        let q = normalize(
            &parse_query("SELECT * FROM instructor").unwrap(),
            &schema,
        )
        .unwrap();
        let space = mutation_space(&q, MutationOptions::default());
        let empty = TestSuite::default();
        let min = minimize_suite(&q, &empty, &space, &schema).unwrap();
        assert!(min.datasets.is_empty());
    }
}
