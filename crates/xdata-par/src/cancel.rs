//! Cooperative cancellation: an atomic flag plus an optional wall-clock
//! deadline, shareable across threads.
//!
//! A [`CancelToken`] is the pipeline's one mechanism for "stop early":
//! explicit cancellation (`token.cancel()`), a wall-clock deadline
//! ([`CancelToken::with_deadline`]), or both. Tokens form a parent/child
//! tree — [`CancelToken::child_with_deadline`] derives a token that trips
//! when *either* its own (tighter) deadline passes or any ancestor is
//! cancelled — which is exactly the suite-deadline / per-target-deadline
//! split `xdata-core::generate` needs.
//!
//! Checking is **cooperative and cheap**: [`CancelToken::is_cancelled`] is
//! a relaxed atomic load on the hot path; the `Instant` comparison runs
//! only until the first expiry, after which the result is latched into the
//! flag. Nothing ever blocks, and cancellation is monotonic — once a token
//! reports cancelled it reports cancelled forever.
//!
//! ## Determinism note
//!
//! A token cancelled *synthetically* (via [`CancelToken::cancel`], e.g. by
//! the chaos fault plan) trips at the first check, making downstream
//! behaviour schedule-independent. A *wall-clock* deadline trips whenever
//! the clock says so, which is inherently nondeterministic: callers that
//! promise byte-identical output across thread counts only keep that
//! promise for runs whose deadlines never fire (or fire synthetically).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                // Latch: later checks skip the clock read.
                self.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(p) = &self.parent {
            if p.is_cancelled() {
                self.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// The earliest expired wall-clock deadline on the ancestor chain,
    /// if any deadline has actually passed.
    fn expired_deadline(&self) -> Option<Instant> {
        let now = Instant::now();
        let own = self.deadline.filter(|d| now >= *d);
        let up = self.parent.as_ref().and_then(|p| p.expired_deadline());
        match (own, up) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Shareable cancellation token: atomic flag + optional `Instant` deadline
/// (+ optional parent). Cloning shares the same state; use
/// [`CancelToken::child_with_deadline`] for a derived token with a tighter
/// budget.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never expires on its own (cancel explicitly or not at
    /// all).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that trips `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: None,
            }),
        }
    }

    /// Convenience for `Option<u64>`-millisecond option fields: `None`
    /// yields a never-expiring token.
    pub fn for_deadline_ms(ms: Option<u64>) -> CancelToken {
        match ms {
            None => CancelToken::new(),
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        }
    }

    /// A child token with no deadline of its own: it trips when `self` is
    /// cancelled, but cancelling the child leaves the parent (and the
    /// child's siblings) untouched — the isolation the per-target chaos
    /// expiry relies on.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// A child token that trips when `self` is cancelled **or** its own
    /// deadline (`timeout` from now) passes — cancelling the child leaves
    /// the parent untouched.
    pub fn child_with_deadline(&self, timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Child with an optional millisecond budget; `None` yields a plain
    /// [`CancelToken::child`] (no own deadline, still isolated from the
    /// parent).
    pub fn child_for_deadline_ms(&self, ms: Option<u64>) -> CancelToken {
        match ms {
            None => self.child(),
            Some(ms) => self.child_with_deadline(Duration::from_millis(ms)),
        }
    }

    /// Cancel explicitly (idempotent). Synthetic cancellation carries no
    /// wall-clock latency — see [`CancelToken::overshoot`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether this token (or any ancestor) is cancelled or past deadline.
    /// Hot-path cheap: one relaxed load once tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// How far past the (earliest expired) wall-clock deadline we are, or
    /// `None` when no real deadline has passed — i.e. the token was
    /// cancelled synthetically or not at all. This is the
    /// `solver.cancel_latency` measurement: the gap between "the deadline
    /// passed" and "the cooperative check noticed".
    pub fn overshoot(&self) -> Option<Duration> {
        self.inner.expired_deadline().map(|d| Instant::now().saturating_duration_since(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.overshoot().is_none());
    }

    #[test]
    fn explicit_cancel_trips_and_latches() {
        let t = CancelToken::new();
        t.cancel();
        assert!(t.is_cancelled());
        // Synthetic cancellation has no wall-clock overshoot.
        assert!(t.overshoot().is_none());
    }

    #[test]
    fn clone_shares_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled());
        assert!(t.overshoot().is_some(), "a real deadline passed");
    }

    #[test]
    fn generous_deadline_stays_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.overshoot().is_none());
    }

    #[test]
    fn child_trips_on_parent_cancel() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancellation reaches the child");
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn child_deadline_does_not_trip_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::from_millis(0));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child expiry must not propagate up");
    }

    #[test]
    fn for_deadline_ms_none_never_expires() {
        assert!(!CancelToken::for_deadline_ms(None).is_cancelled());
        assert!(CancelToken::for_deadline_ms(Some(0)).is_cancelled());
    }

    #[test]
    fn child_for_deadline_ms_none_is_isolated_child() {
        let parent = CancelToken::new();
        let child = parent.child_for_deadline_ms(None);
        // Cancelling the child must not reach the parent…
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel leaked to the parent");
        // …while parent cancellation reaches a (fresh) child.
        let child2 = parent.child_for_deadline_ms(None);
        parent.cancel();
        assert!(child2.is_cancelled());
    }

    #[test]
    fn tokens_cross_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || u.cancel());
        });
        assert!(t.is_cancelled());
    }
}
