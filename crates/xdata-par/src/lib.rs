//! # xdata-par
//!
//! A dependency-free parallel execution layer built on [`std::thread::scope`]
//! (no rayon, no crossbeam): a small work-stealing pool exposing an
//! order-preserving [`par_map`].
//!
//! Both X-Data hot paths are embarrassingly parallel with *wildly* uneven
//! task costs — one constraint target can take 100× another (deep
//! repair-ladder retries), one mutant can die on the first dataset while
//! another survives all of them. Static chunking would serialize on the
//! slowest chunk, so workers instead pull the next item from a shared atomic
//! cursor (work stealing at item granularity). Each worker accumulates
//! `(index, result)` pairs locally; the results are scattered back into
//! input order afterwards, which is what makes parallel output
//! **byte-identical** to sequential output regardless of thread count.
//!
//! Determinism contract: `par_map(jobs, items, f)` returns exactly
//! `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for every
//! `jobs`, provided `f` is a pure function of its arguments. Nothing about
//! scheduling order can leak into the result vector.
//!
//! The [`cancel`] module provides the pipeline's cooperative
//! [`CancelToken`] (atomic flag + optional deadline); [`par_map_cancel`]
//! honours it with an early exit: workers stop claiming items once the
//! token trips, and the unprocessed slots come back as `None` so the
//! caller can attribute every skipped item instead of losing it.

pub mod cancel;

pub use cancel::CancelToken;

use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a `--jobs`-style request: `0` means "one worker per available
/// hardware thread", anything else is taken literally (and clamped to at
/// least 1).
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    } else {
        requested
    }
}

/// Map `f` over `items` on up to `jobs` scoped worker threads, returning the
/// results **in input order**.
///
/// * `jobs == 0` means auto (see [`resolve_jobs`]); `jobs == 1` (or a
///   single-item / empty input) runs inline on the caller's thread with no
///   spawning at all.
/// * Work is distributed dynamically: each worker repeatedly claims the next
///   unprocessed index from an atomic cursor, so stragglers don't idle the
///   pool.
/// * A panic in `f` propagates to the caller once the scope joins.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_cancel(jobs, items, &CancelToken::new(), f)
        .into_iter()
        .map(|r| r.expect("never-cancelled par_map left a slot unprocessed"))
        .collect()
}

/// [`par_map`] with cooperative early exit: once `cancel` trips, workers
/// stop claiming new items (items already in flight run to completion) and
/// every unprocessed slot is returned as `None`, preserving positional
/// attribution — callers know exactly *which* items were abandoned.
///
/// With a never-tripping token this is exactly [`par_map`]. With a
/// synthetically cancelled token (tripped before the call) no item runs at
/// all. A wall-clock deadline may trip mid-run, in which case *which*
/// slots are `None` depends on scheduling — callers that need determinism
/// must only rely on the already-computed (`Some`) results being pure.
pub fn par_map_cancel<T, R, F>(
    jobs: usize,
    items: &[T],
    cancel: &CancelToken,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len());
    // Batch submission time, for the trace's queue-wait attribution: the
    // `par.claim` instant each worker journals when it claims an item
    // carries how long that item sat queued behind earlier claims.
    let submitted = std::time::Instant::now();
    let claim = |i: usize| {
        xdata_obs::instant("par.claim", || {
            format!("item {i} after {}us queued", submitted.elapsed().as_micros())
        });
    };
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| {
                if cancel.is_cancelled() {
                    None
                } else {
                    claim(i);
                    Some(f(i, x))
                }
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    // A panic in `f` is caught at the item, recorded with its index, and
    // re-raised on the caller's thread with the payload *and* the input
    // position — instead of the bare "a scoped thread panicked" join error
    // that loses both. The lowest panicking index wins so the report is
    // deterministic even when several items panic.
    let poisoned = AtomicBool::new(false);
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        if poisoned.load(Ordering::Relaxed) || cancel.is_cancelled() {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        claim(i);
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => {
                                let mut slot = first_panic.lock().expect("panic slot");
                                if slot.as_ref().map(|(j, _)| i < *j).unwrap_or(true) {
                                    *slot = Some((i, payload));
                                }
                                poisoned.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });
    if let Some((i, payload)) = first_panic.into_inner().expect("panic slot") {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        panic!("par_map worker panicked on item {i}: {msg}");
    }
    // Scatter back into input order. The cursor hands each index out at
    // most once; indices never claimed (cancellation tripped first) stay
    // `None`.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(r);
        }
    }
    slots
}

/// [`par_map`] over fallible tasks: short-circuits to the **first** error in
/// *input* order (not completion order), so error reporting is deterministic
/// too. All tasks still run — with independent solver tasks the wasted work
/// on a rare error is cheaper than cross-thread cancellation plumbing.
pub fn try_par_map<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = par_map(jobs, items, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [0, 1, 2, 3, 8, 64] {
            let got = par_map(jobs, &items, |_, x| x * x);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(4, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn uneven_task_costs_all_complete() {
        // Tasks with pathological skew: item 0 does ~1000x the work.
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(8, &items, |_, &x| {
            let spins = if x == 0 { 100_000 } else { 100 };
            (0..spins).fold(x, |acc, _| acc.wrapping_mul(31).wrapping_add(1))
        });
        assert_eq!(got.len(), items.len());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        par_map(7, &items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<i32> = (0..100).collect();
        // Items 30 and 60 fail; input-order first is 30, regardless of
        // which thread finished first.
        for jobs in [1, 2, 8] {
            let r: Result<Vec<i32>, i32> =
                try_par_map(jobs, &items, |_, &x| if x == 30 || x == 60 { Err(x) } else { Ok(x) });
            assert_eq!(r.unwrap_err(), 30, "jobs={jobs}");
        }
    }

    #[test]
    fn try_par_map_ok_preserves_order() {
        let items: Vec<i32> = (0..50).collect();
        let r: Result<Vec<i32>, ()> = try_par_map(4, &items, |_, &x| Ok(x * 2));
        assert_eq!(r.unwrap(), (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_jobs_zero_is_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items = vec![1u32, 2, 3, 4];
        par_map(2, &items, |_, &x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked on item 2: boom at 3")]
    fn worker_panic_reports_item_index_and_payload() {
        let items = vec![1u32, 2, 3, 4];
        par_map(2, &items, |_, &x| {
            if x == 3 {
                panic!("boom at {x}");
            }
            x
        });
    }

    #[test]
    fn worker_panic_lowest_index_wins() {
        // Every item panics; whatever interleaving the pool takes, some
        // panic is always observed and the surfaced index is in range.
        let items: Vec<u32> = (0..32).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(4, &items, |_, &x| -> u32 { panic!("all fail {x}") })
        }));
        let payload = r.expect_err("must panic");
        let msg = payload.downcast_ref::<String>().expect("formatted message");
        assert!(msg.starts_with("par_map worker panicked on item "), "{msg}");
        assert!(msg.contains("all fail"), "payload text lost: {msg}");
    }

    #[test]
    fn cancel_before_start_processes_nothing() {
        let items: Vec<u32> = (0..64).collect();
        let token = CancelToken::new();
        token.cancel();
        for jobs in [1, 4] {
            let got = par_map_cancel(jobs, &items, &token, |_, x| *x);
            assert_eq!(got.len(), items.len(), "jobs={jobs}");
            assert!(got.iter().all(Option::is_none), "jobs={jobs}");
        }
    }

    #[test]
    fn live_token_is_transparent() {
        let items: Vec<u32> = (0..64).collect();
        for jobs in [1, 4] {
            let got = par_map_cancel(jobs, &items, &CancelToken::new(), |_, x| x * 2);
            let flat: Vec<u32> = got.into_iter().map(Option::unwrap).collect();
            assert_eq!(flat, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn mid_run_cancel_keeps_completed_prefix_pure() {
        // A task cancels the token partway through; whatever subset
        // completed must hold correct values in the correct slots.
        let items: Vec<u32> = (0..256).collect();
        let token = CancelToken::new();
        let got = par_map_cancel(4, &items, &token, |i, x| {
            if i == 10 {
                token.cancel();
            }
            x * 3
        });
        assert_eq!(got.len(), items.len());
        let done = got.iter().enumerate().filter_map(|(i, r)| r.map(|v| (i, v)));
        let mut completed = 0usize;
        for (i, v) in done {
            assert_eq!(v, items[i] * 3, "slot {i} holds a wrong value");
            completed += 1;
        }
        assert!(completed >= 1, "the cancelling task itself completed");
        assert!(completed < items.len(), "cancellation must abandon some items");
    }

    #[test]
    #[should_panic(expected = "<non-string panic payload>")]
    fn worker_panic_non_string_payload_still_reports_index() {
        let items = vec![1u32, 2];
        par_map(2, &items, |_, &x| {
            if x == 2 {
                std::panic::panic_any(42i32);
            }
            x
        });
    }
}
