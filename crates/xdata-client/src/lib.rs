//! # xdata-client
//!
//! Blocking typed client for the `xdata serve` daemon, plus the wire
//! schema ([`protocol`]) it shares with the server. Zero dependencies
//! beyond `xdata-obs` (the hand-rolled JSON layer).
//!
//! ```no_run
//! use xdata_client::{Client, WireOptions};
//!
//! let mut c = Client::connect("127.0.0.1:7878").expect("daemon up");
//! let report = c
//!     .grade_batch(
//!         "CREATE TABLE r (a INT PRIMARY KEY);",
//!         "SELECT * FROM r",
//!         &["SELECT * FROM r".to_string()],
//!         WireOptions::default(),
//!     )
//!     .expect("graded");
//! print!("{}", report.output);
//! ```
//!
//! The error taxonomy separates the transport from the service:
//! [`ClientError::Io`] (connect/read/write failed), [`ClientError::Protocol`]
//! (the peer broke framing — not an `xdata serve` daemon, or a version far
//! enough apart that frames don't parse), and [`ClientError::Server`] (a
//! well-formed error response; see [`protocol::ErrorCode`]). Server-side
//! *degradation* — deadline-expired partial suites, `Unevaluated`
//! verdicts, per-target skips with `SkipReason`-style labels — is **not**
//! an error: it arrives inside a successful payload's `output`, exactly as
//! the batch CLI prints it.

pub mod protocol;

pub use protocol::{
    ErrorCode, EvaluateParams, GenerateParams, GradeBatchParams, Payload, Request, RequestBody,
    Response, WireError, WireOptions, PROTOCOL_VERSION,
};

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What went wrong from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// Transport: connecting, writing the request, or reading the response
    /// failed (includes mid-frame EOF when the server vanishes).
    Io(io::Error),
    /// The peer answered with bytes that are not a valid protocol frame,
    /// or with a response id that does not match the request.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server: {} — {}", e.code, e.message),
        }
    }
}
impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to one `xdata serve` daemon. Requests are issued
/// sequentially per connection (the protocol is strict request/response);
/// open one `Client` per thread for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    tenant: String,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
            tenant: "default".to_string(),
        })
    }

    /// Set the warm-cache tenant namespace for every subsequent request
    /// built by the typed helpers.
    pub fn with_tenant(mut self, tenant: &str) -> Client {
        self.tenant = tenant.to_string();
        self
    }

    fn next_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Send one request and wait for its response. Exposed for callers
    /// that build [`Request`]s directly (per-request deadline, metrics,
    /// trace); the typed helpers below cover the common paths.
    pub fn request(&mut self, req: &Request) -> Result<Payload, ClientError> {
        let mut line = req.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut resp_line = String::new();
        let n = self.reader.read_line(&mut resp_line)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )));
        }
        let resp = Response::decode(resp_line.trim_end_matches('\n'))
            .map_err(ClientError::Protocol)?;
        if resp.id != req.id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {}",
                resp.id, req.id
            )));
        }
        resp.result.map_err(ClientError::Server)
    }

    /// Build a request with this client's tenant and a fresh id; chain
    /// `Request` builder methods before passing it to [`Client::request`].
    pub fn build(&mut self, body: RequestBody) -> Request {
        let id = self.next_id();
        Request::new(id, body).with_tenant(&self.tenant)
    }

    /// Liveness check; the payload output reports the server version and
    /// warm-cache occupancy.
    pub fn ping(&mut self) -> Result<Payload, ClientError> {
        let req = self.build(RequestBody::Ping);
        self.request(&req)
    }

    /// Generate the killing test suite for `query` under `schema` (a SQL
    /// script of CREATE TABLE + optional INSERT statements).
    pub fn generate(
        &mut self,
        schema: &str,
        query: &str,
        options: WireOptions,
    ) -> Result<Payload, ClientError> {
        let req = self.build(RequestBody::Generate(GenerateParams {
            schema: schema.to_string(),
            query: query.to_string(),
            options,
        }));
        self.request(&req)
    }

    /// Generate + mutate + kill evaluation for `query`.
    pub fn evaluate(
        &mut self,
        schema: &str,
        query: &str,
        options: WireOptions,
    ) -> Result<Payload, ClientError> {
        let req = self.build(RequestBody::Evaluate(EvaluateParams {
            schema: schema.to_string(),
            query: query.to_string(),
            options,
        }));
        self.request(&req)
    }

    /// Grade `candidates` against the `reference` query.
    pub fn grade_batch(
        &mut self,
        schema: &str,
        reference: &str,
        candidates: &[String],
        options: WireOptions,
    ) -> Result<Payload, ClientError> {
        let req = self.build(RequestBody::GradeBatch(GradeBatchParams {
            schema: schema.to_string(),
            query: reference.to_string(),
            candidates: candidates.to_vec(),
            options,
        }));
        self.request(&req)
    }

    /// Ask the daemon to shut down gracefully. The server answers this
    /// request before exiting.
    pub fn shutdown(&mut self) -> Result<Payload, ClientError> {
        let req = self.build(RequestBody::Shutdown);
        self.request(&req)
    }
}
