//! `xdata-client` — shell front end for the `xdata serve` wire protocol.
//!
//! ```text
//! xdata-client --addr HOST:PORT ping
//! xdata-client --addr HOST:PORT generate    --schema FILE --query SQL [options]
//! xdata-client --addr HOST:PORT evaluate    --schema FILE --query SQL [options]
//! xdata-client --addr HOST:PORT grade-batch --schema FILE --query SQL --candidates FILE [options]
//! xdata-client --addr HOST:PORT shutdown
//!
//! options:
//!   --tenant NAME       warm-cache namespace (default "default")
//!   --deadline-ms N     per-request wall-clock budget
//!   --jobs N            worker threads inside the request
//!   --metrics FILE      write the per-request metrics report JSON to FILE
//!   --trace-out FILE    write the per-request Chrome trace JSON to FILE
//! ```
//!
//! The response's `output` goes to stdout byte-for-byte; a server error
//! frame prints its code and message to stderr and exits nonzero.

use std::process::ExitCode;

use xdata_client::{Client, ClientError, RequestBody, WireOptions};
use xdata_client::{EvaluateParams, GenerateParams, GradeBatchParams};

struct Args {
    addr: String,
    command: String,
    schema_path: Option<String>,
    query: Option<String>,
    candidates_file: Option<String>,
    tenant: String,
    deadline_ms: Option<u64>,
    jobs: usize,
    metrics: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        command: String::new(),
        schema_path: None,
        query: None,
        candidates_file: None,
        tenant: "default".to_string(),
        deadline_ms: None,
        jobs: 1,
        metrics: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--schema" => args.schema_path = Some(it.next().ok_or("--schema needs a file")?),
            "--query" => args.query = Some(it.next().ok_or("--query needs SQL text")?),
            "--candidates" => {
                args.candidates_file = Some(it.next().ok_or("--candidates needs a file")?)
            }
            "--tenant" => args.tenant = it.next().ok_or("--tenant needs a name")?,
            "--deadline-ms" => {
                let n = it.next().ok_or("--deadline-ms needs a millisecond count")?;
                args.deadline_ms =
                    Some(n.parse().map_err(|_| format!("--deadline-ms: invalid count `{n}`"))?);
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a thread count")?;
                args.jobs = n.parse().map_err(|_| format!("--jobs: invalid count `{n}`"))?;
            }
            "--metrics" => args.metrics = Some(it.next().ok_or("--metrics needs a file")?),
            "--trace-out" => args.trace_out = Some(it.next().ok_or("--trace-out needs a file")?),
            other if args.command.is_empty() && !other.starts_with("--") => {
                args.command = other.to_string();
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr is required".into());
    }
    if args.command.is_empty() {
        return Err("missing command (ping|generate|evaluate|grade-batch|shutdown)".into());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut client = Client::connect(&args.addr)
        .map_err(|e| format!("connecting to {}: {e}", args.addr))?
        .with_tenant(&args.tenant);

    let schema = || -> Result<String, String> {
        let path = args.schema_path.as_deref().ok_or("--schema is required")?;
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    };
    let query = || args.query.clone().ok_or("--query is required".to_string());
    let options = WireOptions { jobs: args.jobs, ..WireOptions::default() };

    let body = match args.command.as_str() {
        "ping" => RequestBody::Ping,
        "shutdown" => RequestBody::Shutdown,
        "generate" => RequestBody::Generate(GenerateParams {
            schema: schema()?,
            query: query()?,
            options,
        }),
        "evaluate" => RequestBody::Evaluate(EvaluateParams {
            schema: schema()?,
            query: query()?,
            options,
        }),
        "grade-batch" => {
            let path = args.candidates_file.as_deref().ok_or("--candidates is required")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let candidates: Vec<String> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect();
            if candidates.is_empty() {
                return Err(format!("{path}: no candidate queries (one per line)"));
            }
            RequestBody::GradeBatch(GradeBatchParams {
                schema: schema()?,
                query: query()?,
                candidates,
                options,
            })
        }
        other => {
            return Err(format!(
                "unknown command `{other}` (ping|generate|evaluate|grade-batch|shutdown)"
            ))
        }
    };

    let mut req = client.build(body);
    if let Some(ms) = args.deadline_ms {
        req = req.with_deadline_ms(ms);
    }
    if args.metrics.is_some() {
        req = req.with_metrics();
    }
    if args.trace_out.is_some() {
        req = req.with_trace();
    }
    let payload = client.request(&req).map_err(|e| match e {
        ClientError::Server(err) => format!("server error [{}]: {}", err.code, err.message),
        other => other.to_string(),
    })?;
    if let (Some(path), Some(metrics)) = (&args.metrics, &payload.metrics_json) {
        std::fs::write(path, metrics).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let (Some(path), Some(trace)) = (&args.trace_out, &payload.trace_json) {
        std::fs::write(path, trace).map_err(|e| format!("writing {path}: {e}"))?;
    }
    print!("{}", payload.output);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xdata-client: {e}");
            ExitCode::FAILURE
        }
    }
}
