//! The `xdata serve` wire schema: request/response structs mirroring the
//! JSON documented in PROTOCOL.md, with encode/decode in both directions so
//! the daemon and the client share one definition (and one set of tests).
//!
//! Framing is line-delimited JSON: one request per `\n`-terminated line,
//! one response line per request, over a plain TCP stream. JSON strings
//! escape `\n` as `\u{6e}`-style sequences, so a rendered frame can never
//! contain a raw newline — the framing needs no length prefix. Encoding is
//! [`xdata_obs::Json::render`], decoding [`xdata_obs::parse_json`]; both
//! are dependency-free.
//!
//! Every frame carries the protocol version (`"v"`). A server that cannot
//! speak the requested version answers with [`ErrorCode::BadRequest`]
//! naming the versions it supports; it still answers on the requested
//! `id`, so clients can always correlate.

use xdata_obs::{parse_json, Json};

/// The wire-protocol version this build speaks, sent as `"v"` in every
/// request and response frame.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound a conforming server must accept for one frame; servers may
/// be configured higher. Documented here so clients can size batches.
pub const MIN_MAX_FRAME_BYTES: usize = 1 << 20;

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Warm-cache namespace: requests of different tenants never share
    /// memoized solves or sessions.
    pub tenant: String,
    /// Wall-clock budget for this request. On expiry the pipeline degrades
    /// exactly like the batch CLI — partial suites, `Unevaluated` grading
    /// verdicts — it does not produce an error frame.
    pub deadline_ms: Option<u64>,
    /// Embed a per-request metrics report in the response.
    pub metrics: bool,
    /// Embed a per-request Chrome-trace export in the response.
    pub trace: bool,
    pub body: RequestBody,
}

/// The method-specific part of a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness/version check; also reports warm-cache occupancy.
    Ping,
    /// Generate the killing test suite for a query.
    Generate(GenerateParams),
    /// Generate + enumerate mutants + kill evaluation.
    Evaluate(EvaluateParams),
    /// Grade a batch of candidate queries against a reference.
    GradeBatch(GradeBatchParams),
    /// Graceful shutdown: the server answers this request, stops accepting
    /// connections, and exits once in-flight requests finish.
    Shutdown,
}

impl RequestBody {
    /// The wire method name (the `"method"` field).
    pub fn method(&self) -> &'static str {
        match self {
            RequestBody::Ping => "ping",
            RequestBody::Generate(_) => "generate",
            RequestBody::Evaluate(_) => "evaluate",
            RequestBody::GradeBatch(_) => "grade_batch",
            RequestBody::Shutdown => "shutdown",
        }
    }
}

/// Generation knobs shared by every pipeline-running method, mirroring the
/// CLI flags (PROTOCOL.md documents each field's accepted values and
/// default).
#[derive(Debug, Clone, PartialEq)]
pub struct WireOptions {
    /// Worker threads inside the request (`0` = one per core). Output is
    /// identical for every value.
    pub jobs: usize,
    /// `"unfold"` (default) or `"lazy"`.
    pub mode: String,
    /// `"session"` (default), `"cdcl"`, or `"dpll"`.
    pub search_core: String,
    /// Solver decision budget per target.
    pub decision_limit: Option<u64>,
    /// Wall-clock budget per solve target, independent of the request
    /// deadline.
    pub target_deadline_ms: Option<u64>,
    /// Restrict generated tuples to the schema script's INSERT statements
    /// (§VI-A input database).
    pub use_input_db: bool,
    /// Evaluate only: include FULL OUTER JOIN mutations (default true).
    pub include_full: bool,
    /// Grade only: `"hash"` (default) or `"nested-loop"`.
    pub join_strategy: String,
    /// Deterministic fault injection (the chaos harness): targets whose
    /// label contains a listed substring panic / exit Unknown / expire.
    pub fault_panic: Vec<String>,
    pub fault_unknown: Vec<String>,
    pub fault_expire: Vec<String>,
}

impl Default for WireOptions {
    fn default() -> Self {
        WireOptions {
            jobs: 1,
            mode: "unfold".to_string(),
            search_core: "session".to_string(),
            decision_limit: None,
            target_deadline_ms: None,
            use_input_db: false,
            include_full: true,
            join_strategy: "hash".to_string(),
            fault_panic: Vec::new(),
            fault_unknown: Vec::new(),
            fault_expire: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct GenerateParams {
    /// SQL script: CREATE TABLE statements plus optional INSERTs.
    pub schema: String,
    /// The query under test.
    pub query: String,
    pub options: WireOptions,
}

#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateParams {
    pub schema: String,
    pub query: String,
    pub options: WireOptions,
}

#[derive(Debug, Clone, PartialEq)]
pub struct GradeBatchParams {
    pub schema: String,
    /// The reference (instructor) query the suite is generated from.
    pub query: String,
    /// Candidate queries, one verdict each.
    pub candidates: Vec<String>,
    pub options: WireOptions,
}

/// One response frame: the request id, the server's protocol version, and
/// either a payload or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub id: u64,
    pub version: u64,
    pub result: Result<Payload, WireError>,
}

/// The success payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Payload {
    /// The method's rendered report — byte-identical to what the
    /// in-process API produces for the same inputs (the suite display for
    /// `generate`, the evaluation listing for `evaluate`, the
    /// `BatchGradeReport` render for `grade_batch`, a status line for
    /// `ping`/`shutdown`).
    pub output: String,
    /// Server-side wall-clock for the request. Timing: excluded from every
    /// determinism contract.
    pub elapsed_ns: u64,
    /// Per-request metrics report JSON (the `--metrics-json` document;
    /// feed through [`xdata_obs::strip_timings`] before comparing), when
    /// the request set `metrics`.
    pub metrics_json: Option<String>,
    /// Per-request Chrome-trace JSON, when the request set `trace`.
    pub trace_json: Option<String>,
}

/// A server-side failure, typed by [`ErrorCode`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    pub code: ErrorCode,
    pub message: String,
}

/// Every error code a server can answer with. Transport-level failures
/// (connection refused, mid-frame EOF) never appear here — the client
/// reports those as [`crate::ClientError::Io`] /
/// [`crate::ClientError::Protocol`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame: not JSON, missing/mistyped required field, or an
    /// unsupported protocol version.
    BadRequest,
    /// The `method` field names no known method.
    UnknownMethod,
    /// The request line exceeded the server's frame cap; the connection is
    /// closed after this response.
    OversizedFrame,
    /// SQL in `schema`/`query`/`candidates` failed to parse. (Per-candidate
    /// parse failures in `grade_batch` are *not* this — they become
    /// `INVALID` verdicts in the report.)
    ParseError,
    /// The query parsed but is outside the supported class.
    RelalgError,
    /// Constraint generation failed.
    GenError,
    /// Query execution failed during evaluation/grading.
    EngineError,
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
    /// A panic or other invariant failure inside the handler.
    Internal,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownMethod => "unknown_method",
            ErrorCode::OversizedFrame => "oversized_frame",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::RelalgError => "relalg_error",
            ErrorCode::GenError => "gen_error",
            ErrorCode::EngineError => "engine_error",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "unknown_method" => ErrorCode::UnknownMethod,
            "oversized_frame" => ErrorCode::OversizedFrame,
            "parse_error" => ErrorCode::ParseError,
            "relalg_error" => ErrorCode::RelalgError,
            "gen_error" => ErrorCode::GenError,
            "engine_error" => ErrorCode::EngineError,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// --------------------------------------------------------------------------
// Encoding
// --------------------------------------------------------------------------

fn num(n: u64) -> Json {
    Json::Num(n.to_string())
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

impl WireOptions {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("jobs".to_string(), num(self.jobs as u64)),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("search_core".to_string(), Json::Str(self.search_core.clone())),
        ];
        if let Some(l) = self.decision_limit {
            fields.push(("decision_limit".to_string(), num(l)));
        }
        if let Some(ms) = self.target_deadline_ms {
            fields.push(("target_deadline_ms".to_string(), num(ms)));
        }
        fields.push(("use_input_db".to_string(), Json::Bool(self.use_input_db)));
        fields.push(("include_full".to_string(), Json::Bool(self.include_full)));
        fields.push(("join_strategy".to_string(), Json::Str(self.join_strategy.clone())));
        if !self.fault_panic.is_empty() {
            fields.push(("fault_panic".to_string(), str_arr(&self.fault_panic)));
        }
        if !self.fault_unknown.is_empty() {
            fields.push(("fault_unknown".to_string(), str_arr(&self.fault_unknown)));
        }
        if !self.fault_expire.is_empty() {
            fields.push(("fault_expire".to_string(), str_arr(&self.fault_expire)));
        }
        Json::Obj(fields)
    }

    fn from_json(j: &Json) -> Result<WireOptions, String> {
        let mut o = WireOptions::default();
        let get = |k: &str| j.get(k);
        if let Some(v) = get("jobs") {
            o.jobs = v.as_u64().ok_or("options.jobs must be a number")? as usize;
        }
        if let Some(v) = get("mode") {
            o.mode = v.as_str().ok_or("options.mode must be a string")?.to_string();
        }
        if let Some(v) = get("search_core") {
            o.search_core = v.as_str().ok_or("options.search_core must be a string")?.to_string();
        }
        if let Some(v) = get("decision_limit") {
            o.decision_limit = Some(v.as_u64().ok_or("options.decision_limit must be a number")?);
        }
        if let Some(v) = get("target_deadline_ms") {
            o.target_deadline_ms =
                Some(v.as_u64().ok_or("options.target_deadline_ms must be a number")?);
        }
        if let Some(v) = get("use_input_db") {
            o.use_input_db = as_bool(v).ok_or("options.use_input_db must be a boolean")?;
        }
        if let Some(v) = get("include_full") {
            o.include_full = as_bool(v).ok_or("options.include_full must be a boolean")?;
        }
        if let Some(v) = get("join_strategy") {
            o.join_strategy =
                v.as_str().ok_or("options.join_strategy must be a string")?.to_string();
        }
        for (key, dst) in [
            ("fault_panic", &mut o.fault_panic),
            ("fault_unknown", &mut o.fault_unknown),
            ("fault_expire", &mut o.fault_expire),
        ] {
            if let Some(v) = j.get(key) {
                *dst = as_str_vec(v).ok_or_else(|| format!("options.{key} must be a string array"))?;
            }
        }
        Ok(o)
    }
}

fn as_bool(j: &Json) -> Option<bool> {
    match j {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn as_str_vec(j: &Json) -> Option<Vec<String>> {
    match j {
        Json::Arr(items) => {
            items.iter().map(|v| v.as_str().map(str::to_string)).collect::<Option<Vec<_>>>()
        }
        _ => None,
    }
}

fn require_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or mistyped field `{key}` (string required)"))
}

impl Request {
    /// A request with defaults: tenant `"default"`, no deadline, no
    /// metrics/trace.
    pub fn new(id: u64, body: RequestBody) -> Request {
        Request {
            id,
            tenant: "default".to_string(),
            deadline_ms: None,
            metrics: false,
            trace: false,
            body,
        }
    }

    pub fn with_tenant(mut self, tenant: &str) -> Request {
        self.tenant = tenant.to_string();
        self
    }

    pub fn with_deadline_ms(mut self, ms: u64) -> Request {
        self.deadline_ms = Some(ms);
        self
    }

    pub fn with_metrics(mut self) -> Request {
        self.metrics = true;
        self
    }

    pub fn with_trace(mut self) -> Request {
        self.trace = true;
        self
    }

    /// Render the frame (no trailing newline — the transport adds it).
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("v".to_string(), num(PROTOCOL_VERSION)),
            ("id".to_string(), num(self.id)),
            ("method".to_string(), Json::Str(self.body.method().to_string())),
            ("tenant".to_string(), Json::Str(self.tenant.clone())),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), num(ms)));
        }
        if self.metrics {
            fields.push(("metrics".to_string(), Json::Bool(true)));
        }
        if self.trace {
            fields.push(("trace".to_string(), Json::Bool(true)));
        }
        let params = match &self.body {
            RequestBody::Ping | RequestBody::Shutdown => None,
            RequestBody::Generate(p) => Some(Json::Obj(vec![
                ("schema".to_string(), Json::Str(p.schema.clone())),
                ("query".to_string(), Json::Str(p.query.clone())),
                ("options".to_string(), p.options.to_json()),
            ])),
            RequestBody::Evaluate(p) => Some(Json::Obj(vec![
                ("schema".to_string(), Json::Str(p.schema.clone())),
                ("query".to_string(), Json::Str(p.query.clone())),
                ("options".to_string(), p.options.to_json()),
            ])),
            RequestBody::GradeBatch(p) => Some(Json::Obj(vec![
                ("schema".to_string(), Json::Str(p.schema.clone())),
                ("query".to_string(), Json::Str(p.query.clone())),
                ("candidates".to_string(), str_arr(&p.candidates)),
                ("options".to_string(), p.options.to_json()),
            ])),
        };
        if let Some(p) = params {
            fields.push(("params".to_string(), p));
        }
        Json::Obj(fields).render()
    }

    /// Parse one request line. Errors are human-readable fragments the
    /// server wraps into a [`ErrorCode::BadRequest`] /
    /// [`ErrorCode::UnknownMethod`] response.
    pub fn decode(line: &str) -> Result<Request, String> {
        let j = parse_json(line)?;
        let v = j.get("v").and_then(Json::as_u64).ok_or("missing field `v`")?;
        if v != PROTOCOL_VERSION {
            return Err(format!("unsupported protocol version {v} (supported: {PROTOCOL_VERSION})"));
        }
        let id = j.get("id").and_then(Json::as_u64).ok_or("missing or mistyped field `id`")?;
        let method = j.get("method").and_then(Json::as_str).ok_or("missing field `method`")?;
        let tenant = match j.get("tenant") {
            Some(t) => t.as_str().ok_or("field `tenant` must be a string")?.to_string(),
            None => "default".to_string(),
        };
        let deadline_ms = match j.get("deadline_ms") {
            Some(d) => Some(d.as_u64().ok_or("field `deadline_ms` must be a number")?),
            None => None,
        };
        let metrics = match j.get("metrics") {
            Some(m) => as_bool(m).ok_or("field `metrics` must be a boolean")?,
            None => false,
        };
        let trace = match j.get("trace") {
            Some(t) => as_bool(t).ok_or("field `trace` must be a boolean")?,
            None => false,
        };
        let params = j.get("params");
        let need = |key: &str| -> Result<String, String> {
            require_str(params.ok_or("missing field `params`")?, key)
        };
        let options = || -> Result<WireOptions, String> {
            match params.and_then(|p| p.get("options")) {
                Some(o) => WireOptions::from_json(o),
                None => Ok(WireOptions::default()),
            }
        };
        let body = match method {
            "ping" => RequestBody::Ping,
            "shutdown" => RequestBody::Shutdown,
            "generate" => RequestBody::Generate(GenerateParams {
                schema: need("schema")?,
                query: need("query")?,
                options: options()?,
            }),
            "evaluate" => RequestBody::Evaluate(EvaluateParams {
                schema: need("schema")?,
                query: need("query")?,
                options: options()?,
            }),
            "grade_batch" => RequestBody::GradeBatch(GradeBatchParams {
                schema: need("schema")?,
                query: need("query")?,
                candidates: params
                    .and_then(|p| p.get("candidates"))
                    .and_then(as_str_vec)
                    .ok_or("missing or mistyped field `candidates` (string array required)")?,
                options: options()?,
            }),
            other => return Err(format!("unknown method `{other}`")),
        };
        Ok(Request { id, tenant, deadline_ms, metrics, trace, body })
    }
}

impl Response {
    pub fn ok(id: u64, payload: Payload) -> Response {
        Response { id, version: PROTOCOL_VERSION, result: Ok(payload) }
    }

    pub fn err(id: u64, code: ErrorCode, message: impl Into<String>) -> Response {
        Response {
            id,
            version: PROTOCOL_VERSION,
            result: Err(WireError { code, message: message.into() }),
        }
    }

    /// Render the frame (no trailing newline — the transport adds it).
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("v".to_string(), num(self.version)),
            ("id".to_string(), num(self.id)),
            ("ok".to_string(), Json::Bool(self.result.is_ok())),
        ];
        match &self.result {
            Ok(p) => {
                fields.push(("output".to_string(), Json::Str(p.output.clone())));
                fields.push(("elapsed_ns".to_string(), num(p.elapsed_ns)));
                if let Some(m) = &p.metrics_json {
                    fields.push(("metrics".to_string(), Json::Str(m.clone())));
                }
                if let Some(t) = &p.trace_json {
                    fields.push(("trace".to_string(), Json::Str(t.clone())));
                }
            }
            Err(e) => {
                fields.push((
                    "error".to_string(),
                    Json::Obj(vec![
                        ("code".to_string(), Json::Str(e.code.as_str().to_string())),
                        ("message".to_string(), Json::Str(e.message.clone())),
                    ]),
                ));
            }
        }
        Json::Obj(fields).render()
    }

    /// Parse one response line.
    pub fn decode(line: &str) -> Result<Response, String> {
        let j = parse_json(line)?;
        let version = j.get("v").and_then(Json::as_u64).ok_or("missing field `v`")?;
        let id = j.get("id").and_then(Json::as_u64).ok_or("missing or mistyped field `id`")?;
        let ok = j.get("ok").and_then(as_bool).ok_or("missing field `ok`")?;
        let result = if ok {
            Ok(Payload {
                output: require_str(&j, "output")?,
                elapsed_ns: j
                    .get("elapsed_ns")
                    .and_then(Json::as_u64)
                    .ok_or("missing field `elapsed_ns`")?,
                metrics_json: j.get("metrics").and_then(Json::as_str).map(str::to_string),
                trace_json: j.get("trace").and_then(Json::as_str).map(str::to_string),
            })
        } else {
            let e = j.get("error").ok_or("missing field `error`")?;
            let code_str = require_str(e, "code")?;
            Err(WireError {
                code: ErrorCode::from_wire(&code_str)
                    .ok_or_else(|| format!("unknown error code `{code_str}`"))?,
                message: require_str(e, "message")?,
            })
        };
        Ok(Response { id, version, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> WireOptions {
        WireOptions {
            jobs: 4,
            decision_limit: Some(1000),
            fault_expire: vec!["agg".to_string()],
            ..WireOptions::default()
        }
    }

    #[test]
    fn request_round_trips_every_method() {
        let bodies = [
            RequestBody::Ping,
            RequestBody::Shutdown,
            RequestBody::Generate(GenerateParams {
                schema: "CREATE TABLE r (a INT PRIMARY KEY);".to_string(),
                query: "SELECT * FROM r".to_string(),
                options: opts(),
            }),
            RequestBody::Evaluate(EvaluateParams {
                schema: "s".to_string(),
                query: "q\nwith newline".to_string(),
                options: WireOptions::default(),
            }),
            RequestBody::GradeBatch(GradeBatchParams {
                schema: "s".to_string(),
                query: "q".to_string(),
                candidates: vec!["c1".to_string(), "c2 \"quoted\"".to_string()],
                options: opts(),
            }),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let req = Request::new(i as u64, body).with_tenant("t1").with_deadline_ms(250);
            let line = req.encode();
            assert!(!line.contains('\n'), "frames must be newline-free: {line}");
            assert_eq!(Request::decode(&line).expect("round trip"), req);
        }
    }

    #[test]
    fn response_round_trips_ok_and_error() {
        let ok = Response::ok(
            7,
            Payload {
                output: "line one\nline two\n".to_string(),
                elapsed_ns: 12345,
                metrics_json: Some("{\n  \"counters\": {}\n}\n".to_string()),
                trace_json: None,
            },
        );
        let err = Response::err(8, ErrorCode::ParseError, "expected FROM");
        for r in [ok, err] {
            let line = r.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Response::decode(&line).expect("round trip"), r);
        }
    }

    #[test]
    fn decode_rejects_version_mismatch_and_junk() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode("{\"v\":99,\"id\":1,\"method\":\"ping\"}")
            .unwrap_err()
            .contains("unsupported protocol version"));
        assert!(Request::decode("{\"v\":1,\"id\":1,\"method\":\"frobnicate\"}")
            .unwrap_err()
            .contains("unknown method"));
        assert!(Request::decode("{\"v\":1,\"id\":1,\"method\":\"generate\"}")
            .unwrap_err()
            .contains("params"));
    }

    #[test]
    fn every_error_code_round_trips() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownMethod,
            ErrorCode::OversizedFrame,
            ErrorCode::ParseError,
            ErrorCode::RelalgError,
            ErrorCode::GenError,
            ErrorCode::EngineError,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
    }
}
