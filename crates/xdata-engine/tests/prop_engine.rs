//! Randomized tests for the executor, driven by a seeded [`SplitMix64`].
//!
//! Two oracles:
//!
//! 1. a *reference evaluator* — a direct transcription of SQL semantics
//!    (generate all occurrence-tuple combinations, apply all conditions
//!    under 3VL, project) valid for inner-join queries — run against the
//!    engine's tree execution on random datasets;
//! 2. *join-order invariance* — every tree enumerated by
//!    `xdata_relalg::enumerate` must produce the same result on every
//!    dataset (they are semantically equivalent by construction), which
//!    exercises join reordering, condition placement and merge logic at
//!    once.

use xdata_catalog::{university, Dataset, SplitMix64, Truth, Value};
use xdata_engine::{execute_query, execute_with_tree, ResultSet};
use xdata_relalg::enumerate::enumerate_trees;
use xdata_relalg::{normalize, NormQuery, Operand, SelectSpec};
use xdata_sql::parse_query;

/// Reference evaluation for inner-join queries: cross product + filter.
fn reference_eval(q: &NormQuery, db: &Dataset, schema: &xdata_catalog::Schema) -> ResultSet {
    let pools: Vec<&[xdata_catalog::Tuple]> = q
        .occurrences
        .iter()
        .map(|o| db.relation(&o.base).unwrap_or(&[]))
        .collect();
    let offsets: Vec<usize> = {
        let mut off = Vec::new();
        let mut total = 0;
        for o in &q.occurrences {
            off.push(total);
            total += schema.relation(&o.base).unwrap().arity();
        }
        off
    };
    let mut rows = Vec::new();
    let mut idx = vec![0usize; pools.len()];
    if pools.iter().any(|p| p.is_empty()) {
        return ResultSet::new(rows);
    }
    'outer: loop {
        // Build the combined row.
        let mut row: Vec<Value> = Vec::new();
        for (i, p) in pools.iter().enumerate() {
            row.extend(p[idx[i]].iter().cloned());
        }
        // All equivalence classes and predicates must hold (3VL: TRUE).
        let value = |occ: usize, col: usize| -> &Value { &row[offsets[occ] + col] };
        let mut ok = true;
        for ec in &q.eq_classes {
            for w in ec.windows(2) {
                if value(w[0].occ, w[0].col).sql_eq(value(w[1].occ, w[1].col)) != Truth::True {
                    ok = false;
                }
            }
        }
        for p in &q.preds {
            let get = |o: &Operand| -> Value {
                match o {
                    Operand::Const(v) => v.clone(),
                    Operand::Attr { attr, offset } => {
                        let v = value(attr.occ, attr.col);
                        match (v, offset) {
                            (Value::Int(i), k) => Value::Int(i + k),
                            (Value::Null, _) => Value::Null,
                            (v, 0) => v.clone(),
                            (Value::Double(d), k) => Value::Double(d + *k as f64),
                            _ => Value::Null,
                        }
                    }
                }
            };
            let l = get(&p.lhs);
            let r = get(&p.rhs);
            let holds = match l.sql_cmp(&r) {
                None => false,
                Some(ord) => match p.op {
                    xdata_sql::CompareOp::Eq => ord == std::cmp::Ordering::Equal,
                    xdata_sql::CompareOp::Ne => ord != std::cmp::Ordering::Equal,
                    xdata_sql::CompareOp::Lt => ord == std::cmp::Ordering::Less,
                    xdata_sql::CompareOp::Le => ord != std::cmp::Ordering::Greater,
                    xdata_sql::CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                    xdata_sql::CompareOp::Ge => ord != std::cmp::Ordering::Less,
                },
            };
            if !holds {
                ok = false;
            }
        }
        if ok {
            match &q.select {
                SelectSpec::Star => rows.push(row.clone()),
                SelectSpec::Columns(cols) => {
                    rows.push(cols.iter().map(|c| row[offsets[c.occ] + c.col].clone()).collect())
                }
                SelectSpec::Aggregation { .. } => unreachable!("inner-join reference only"),
            }
        }
        // Odometer.
        let mut i = 0;
        loop {
            if i == pools.len() {
                break 'outer;
            }
            idx[i] += 1;
            if idx[i] < pools[i].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
    ResultSet::new(rows)
}

/// Random tiny dataset over instructor/teaches/course — same shape and
/// primary-key dedup as the old proptest strategy.
fn random_db(rng: &mut SplitMix64) -> Dataset {
    let mut d = Dataset::new();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..rng.below(4) {
        let (id, dept, sal) = (rng.range_i64(0, 3), rng.range_i64(0, 2), rng.range_i64(0, 199));
        if seen.insert(("i", id, 0)) {
            d.push(
                "instructor",
                vec![Value::Int(id), Value::Str(format!("n{id}")), Value::Int(dept), Value::Int(sal)],
            );
        }
    }
    for _ in 0..rng.below(4) {
        let (id, cid) = (rng.range_i64(0, 3), rng.range_i64(0, 3));
        if seen.insert(("t", id, cid)) {
            d.push("teaches", vec![Value::Int(id), Value::Int(cid), Value::Int(1), Value::Int(2009)]);
        }
    }
    for _ in 0..rng.below(4) {
        let (cid, dept, cred) = (rng.range_i64(0, 3), rng.range_i64(0, 2), rng.range_i64(1, 4));
        if seen.insert(("c", cid, 0)) {
            d.push(
                "course",
                vec![Value::Int(cid), Value::Str(format!("c{cid}")), Value::Int(dept), Value::Int(cred)],
            );
        }
    }
    d
}

const QUERIES: [&str; 5] = [
    "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
    "SELECT i.name, c.title FROM instructor i, teaches t, course c \
     WHERE i.id = t.id AND t.course_id = c.course_id",
    "SELECT i.id FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50",
    "SELECT t.id FROM teaches t, course c WHERE t.course_id = c.course_id + 1",
    "SELECT i.id FROM instructor i, teaches t WHERE i.id <> t.id",
];

#[test]
fn engine_matches_reference() {
    let schema = university::schema_with_fk_count(0);
    let mut rng = SplitMix64::new(0xe9e1);
    for case in 0..128 {
        let db = random_db(&mut rng);
        let sql = QUERIES[rng.below(QUERIES.len())];
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let engine = execute_query(&q, &db, &schema).unwrap();
        let reference = reference_eval(&q, &db, &schema);
        assert_eq!(engine, reference, "case {case}: query {sql} db:\n{db}");
    }
}

#[test]
fn all_enumerated_trees_agree() {
    let schema = university::schema_with_fk_count(0);
    let mut rng = SplitMix64::new(0xe9e2);
    for case in 0..128 {
        let db = random_db(&mut rng);
        let sql = QUERIES[rng.below(QUERIES.len())];
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let baseline = execute_query(&q, &db, &schema).unwrap();
        for tree in enumerate_trees(&q, 1000) {
            let r = execute_with_tree(&q, &tree, &db, &schema).unwrap();
            assert_eq!(
                r,
                baseline,
                "case {case}: tree {} disagrees on query {sql}",
                tree.display_with(&q.occurrences.iter().map(|o| o.name.clone()).collect::<Vec<_>>()),
            );
        }
    }
}
