//! Extended-predicate evaluation: retained `[NOT] IN` / `[NOT] EXISTS`
//! subqueries, `[NOT] LIKE` patterns and `IS [NOT] NULL` checks.
//!
//! These apply to the fully joined row (they may reference attributes from
//! any occurrence), so [`filter_extended`] runs after the join tree and
//! before projection. Semantics:
//!
//! * **`EXISTS`** is two-valued — `TRUE` iff some subquery tuple satisfies
//!   every condition, else `FALSE`, never `Unknown`.
//! * **`IN`** follows SQL's membership three-valued logic: `TRUE` when a
//!   qualifying tuple's linked column equals the outer operand (both
//!   non-NULL), `Unknown` when no tuple matches but some qualifying tuple
//!   makes the equality `Unknown` (a NULL on either side), else `FALSE` —
//!   in particular `x IN (empty)` is `FALSE` even for NULL `x`.
//! * **`LIKE`** on NULL is `Unknown`; on a string it is a plain boolean
//!   match ([`LikePattern`], the same matcher the solver's string
//!   constraints use — one implementation, no drift).
//! * **`IS [NOT] NULL`** is always two-valued.
//!
//! `NOT` variants negate with Kleene logic; a row survives only when every
//! predicate is definitely true.
//!
//! Subquery evaluation mirrors the join executor's hash/nested-loop split:
//! under [`JoinStrategy::Hash`], equality conditions key a hash index over
//! the subquery relation (the bucket is a filter only — every condition is
//! re-evaluated per candidate, so both strategies return identical truth
//! values); predicates with no equality condition fall back to a per-row
//! scan and count `engine.subquery.fallback_preds`.

use std::collections::HashMap;

use xdata_catalog::{Dataset, Schema, Truth, Value};
use xdata_relalg::{NormQuery, SubPred, SubqueryKind};
use xdata_solver::LikePattern;
use xdata_sql::CompareOp;

use crate::error::EngineError;
use crate::exec::{cmp_truth, key_part, operand_value, JoinStrategy, KeyPart, Layout};

type Row = Vec<Value>;

/// Filter `rows` through the query's subquery, LIKE and NULL-check
/// predicates. A no-op (and no cost) when the query has none.
pub(crate) fn filter_extended(
    q: &NormQuery,
    rows: Vec<Row>,
    db: &Dataset,
    schema: &Schema,
    layout: &Layout,
    strategy: JoinStrategy,
) -> Result<Vec<Row>, EngineError> {
    if q.subs.is_empty() && q.likes.is_empty() && q.null_checks.is_empty() {
        return Ok(rows);
    }
    let likes: Vec<LikePattern> =
        q.likes.iter().map(|l| LikePattern::parse(&l.pattern)).collect();
    let subs: Vec<PreparedSub> = q
        .subs
        .iter()
        .map(|s| PreparedSub::new(s, db, schema, strategy))
        .collect::<Result<_, _>>()?;
    let mut out = Vec::with_capacity(rows.len());
    'row: for row in rows {
        for n in &q.null_checks {
            let is_null = matches!(row[layout.pos(n.attr)], Value::Null);
            // IS NULL keeps NULLs; IS NOT NULL keeps non-NULLs.
            if is_null == n.negated {
                continue 'row;
            }
        }
        for (pat, l) in likes.iter().zip(&q.likes) {
            let t = match &row[layout.pos(l.attr)] {
                Value::Null => Truth::Unknown,
                Value::Str(s) => Truth::from_bool(pat.matches(s)),
                // Normalization rejects LIKE on non-string attributes; a
                // non-string value here can only be ill-typed data.
                _ => Truth::Unknown,
            };
            if !(if l.negated { !t } else { t }).is_true() {
                continue 'row;
            }
        }
        for s in &subs {
            if !s.eval(&row, layout).is_true() {
                continue 'row;
            }
        }
        out.push(row);
    }
    Ok(out)
}

/// One subquery predicate readied for repeated per-row evaluation: the
/// subquery relation's tuples, plus (hash strategy) an index keyed by the
/// columns of its equality conditions.
struct PreparedSub<'a> {
    sub: &'a SubPred,
    tuples: &'a [Row],
    /// Indices into `sub.conds` of the equality conditions used as hash-key
    /// components. Empty when `index` is `None`.
    key_conds: Vec<usize>,
    /// Tuple indices keyed by the equality-condition columns; `None` means
    /// scan every tuple (nested-loop strategy, or no equality condition).
    index: Option<HashMap<Vec<KeyPart>, Vec<usize>>>,
    /// Identity order for the scan path, so both paths iterate `&[usize]`.
    all: Vec<usize>,
}

impl<'a> PreparedSub<'a> {
    fn new(
        sub: &'a SubPred,
        db: &'a Dataset,
        schema: &Schema,
        strategy: JoinStrategy,
    ) -> Result<PreparedSub<'a>, EngineError> {
        let rel = schema
            .relation(&sub.base)
            .ok_or_else(|| EngineError::UnknownRelation(sub.base.clone()))?;
        let tuples = db.relation(&sub.base).unwrap_or(&[]);
        for t in tuples {
            if t.len() != rel.arity() {
                return Err(EngineError::ArityMismatch {
                    relation: sub.base.clone(),
                    expected: rel.arity(),
                    got: t.len(),
                });
            }
        }
        let key_conds: Vec<usize> = sub
            .conds
            .iter()
            .enumerate()
            .filter(|(_, c)| c.op == CompareOp::Eq)
            .map(|(i, _)| i)
            .collect();
        let index = if strategy == JoinStrategy::Hash && !key_conds.is_empty() {
            xdata_obs::counter("engine.subquery.hash_preds", 1);
            let mut ix: HashMap<Vec<KeyPart>, Vec<usize>> = HashMap::new();
            for (ti, t) in tuples.iter().enumerate() {
                // A NULL in a key column makes that equality condition
                // Unknown for every outer row — the tuple can never
                // qualify, so it is not indexed at all.
                let key: Option<Vec<KeyPart>> = key_conds
                    .iter()
                    .map(|&ci| key_part(t[sub.conds[ci].col].clone()))
                    .collect();
                if let Some(key) = key {
                    ix.entry(key).or_default().push(ti);
                }
            }
            Some(ix)
        } else {
            if strategy == JoinStrategy::Hash {
                // Hash strategy but nothing to key on (only non-equality
                // conditions, or none): per-row scan, same as nested-loop.
                xdata_obs::counter("engine.subquery.fallback_preds", 1);
            }
            None
        };
        let all = if index.is_none() { (0..tuples.len()).collect() } else { Vec::new() };
        let (key_conds, index) = match index {
            Some(ix) => (key_conds, Some(ix)),
            None => (Vec::new(), None),
        };
        Ok(PreparedSub { sub, tuples, key_conds, index, all })
    }

    /// Candidate tuple indices for this outer row: the matching hash bucket,
    /// or every tuple on the scan path. The bucket is a filter only —
    /// [`PreparedSub::conds_true`] re-evaluates all conditions.
    fn candidates(&self, row: &Row, layout: &Layout) -> &[usize] {
        match &self.index {
            None => &self.all,
            Some(ix) => {
                let key: Option<Vec<KeyPart>> = self
                    .key_conds
                    .iter()
                    .map(|&ci| key_part(operand_value(&self.sub.conds[ci].rhs, row, layout)))
                    .collect();
                // A NULL outer operand makes the equality Unknown for every
                // tuple — no tuple qualifies, exactly like an empty bucket.
                match key.and_then(|k| ix.get(&k)) {
                    Some(v) => v.as_slice(),
                    None => &[],
                }
            }
        }
    }

    /// Whether subquery tuple `ti` satisfies every condition for this row.
    fn conds_true(&self, ti: usize, row: &Row, layout: &Layout) -> bool {
        let t = &self.tuples[ti];
        self.sub.conds.iter().all(|c| {
            let r = operand_value(&c.rhs, row, layout);
            cmp_truth(&t[c.col], c.op, &r).is_true()
        })
    }

    /// The predicate's truth value for one outer row.
    fn eval(&self, row: &Row, layout: &Layout) -> Truth {
        xdata_obs::counter("engine.subquery.probe_rows", 1);
        let idxs = self.candidates(row, layout);
        let core = match (self.sub.kind, &self.sub.link) {
            (SubqueryKind::In, Some((link, col))) => {
                let x = operand_value(link, row, layout);
                let mut truth = Truth::False;
                for &ti in idxs {
                    if !self.conds_true(ti, row, layout) {
                        continue;
                    }
                    match cmp_truth(&x, CompareOp::Eq, &self.tuples[ti][*col]) {
                        Truth::True => {
                            truth = Truth::True;
                            break;
                        }
                        Truth::Unknown => truth = Truth::Unknown,
                        Truth::False => {}
                    }
                }
                truth
            }
            // EXISTS ignores any link a connective mutant left behind; an
            // unlinked IN cannot be constructed (mutation keeps the link),
            // so degrade it to EXISTS semantics rather than panic.
            (SubqueryKind::Exists, _) | (SubqueryKind::In, None) => {
                Truth::from_bool(idxs.iter().any(|&ti| self.conds_true(ti, row, layout)))
            }
        };
        if self.sub.negated {
            !core
        } else {
            core
        }
    }
}

#[cfg(test)]
mod tests {
    use xdata_catalog::{university, Dataset, Value};
    use xdata_relalg::normalize;
    use xdata_sql::parse_query;

    use crate::exec::{execute_query_strategy, JoinStrategy};
    use crate::result::ResultSet;

    fn run_strategy(sql: &str, db: &Dataset, strategy: JoinStrategy) -> ResultSet {
        let schema = university::schema();
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        execute_query_strategy(&q, db, &schema, strategy).unwrap()
    }

    /// Run under both strategies, assert identical results, return one.
    fn run(sql: &str, db: &Dataset) -> ResultSet {
        let h = run_strategy(sql, db, JoinStrategy::Hash);
        let n = run_strategy(sql, db, JoinStrategy::NestedLoop);
        assert_eq!(h, n, "hash/nested-loop disagree on {sql}");
        h
    }

    fn db() -> Dataset {
        // Two instructors; only #10 teaches.
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(10), Value::Str("Wu".into()), Value::Int(1), Value::Int(60000)]);
        d.push("instructor", vec![Value::Int(11), Value::Str("Mozart".into()), Value::Int(2), Value::Int(40000)]);
        d.push("teaches", vec![Value::Int(10), Value::Int(100), Value::Int(1), Value::Int(2009)]);
        d
    }

    fn names(r: &ResultSet) -> Vec<String> {
        r.rows()
            .iter()
            .map(|row| match &row[0] {
                Value::Str(s) => s.clone(),
                v => format!("{v:?}"),
            })
            .collect()
    }

    #[test]
    fn in_subquery_membership() {
        let r = run(
            "SELECT i.name FROM instructor i WHERE i.id IN (SELECT t.id FROM teaches t)",
            &db(),
        );
        assert_eq!(names(&r), ["Wu"]);
    }

    #[test]
    fn not_in_excludes_members() {
        let r = run(
            "SELECT i.name FROM instructor i WHERE i.id NOT IN (SELECT t.id FROM teaches t)",
            &db(),
        );
        assert_eq!(names(&r), ["Mozart"]);
    }

    /// SQL's NOT IN trap: a NULL in the subquery column makes membership
    /// Unknown for every non-member, so NOT IN returns nothing.
    #[test]
    fn not_in_with_null_member_is_empty() {
        let mut d = db();
        d.push("teaches", vec![Value::Null, Value::Int(101), Value::Int(1), Value::Int(2009)]);
        let r = run(
            "SELECT i.name FROM instructor i WHERE i.id NOT IN (SELECT t.id FROM teaches t)",
            &d,
        );
        assert!(r.is_empty());
        // Positive IN is unaffected: Wu still matches definitely.
        let r = run(
            "SELECT i.name FROM instructor i WHERE i.id IN (SELECT t.id FROM teaches t)",
            &d,
        );
        assert_eq!(names(&r), ["Wu"]);
    }

    /// `x IN (empty set)` is FALSE — not Unknown — so NOT IN keeps the row.
    #[test]
    fn in_empty_set_is_false() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
        let r = run(
            "SELECT i.name FROM instructor i WHERE i.id NOT IN (SELECT t.id FROM teaches t)",
            &d,
        );
        assert_eq!(names(&r), ["A"]);
    }

    #[test]
    fn exists_and_not_exists_correlated() {
        let r = run(
            "SELECT i.name FROM instructor i \
             WHERE EXISTS (SELECT t.id FROM teaches t WHERE t.id = i.id)",
            &db(),
        );
        assert_eq!(names(&r), ["Wu"]);
        let r = run(
            "SELECT i.name FROM instructor i \
             WHERE NOT EXISTS (SELECT t.id FROM teaches t WHERE t.id = i.id)",
            &db(),
        );
        assert_eq!(names(&r), ["Mozart"]);
    }

    /// EXISTS is two-valued: a NULL-keyed subquery tuple never qualifies
    /// (its condition is Unknown), and NOT EXISTS stays definitely true.
    #[test]
    fn exists_two_valued_under_null() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
        d.push("teaches", vec![Value::Null, Value::Int(100), Value::Int(1), Value::Int(2009)]);
        let r = run(
            "SELECT i.name FROM instructor i \
             WHERE NOT EXISTS (SELECT t.id FROM teaches t WHERE t.id = i.id)",
            &d,
        );
        assert_eq!(names(&r), ["A"]);
    }

    /// Subquery conditions with non-equality operators have no hash key and
    /// take the scan fallback under the hash strategy — same answers.
    #[test]
    fn non_equality_subquery_condition_falls_back() {
        let r = run(
            "SELECT i.name FROM instructor i \
             WHERE EXISTS (SELECT t.id FROM teaches t WHERE t.year > i.salary)",
            &db(),
        );
        assert!(r.is_empty()); // 2009 > 40000/60000 never holds
        let r = run(
            "SELECT i.name FROM instructor i \
             WHERE EXISTS (SELECT t.id FROM teaches t WHERE t.year < i.salary)",
            &db(),
        );
        assert_eq!(names(&r), ["Mozart", "Wu"]); // rows() is sorted
    }

    #[test]
    fn like_and_not_like() {
        let r = run("SELECT i.name FROM instructor i WHERE i.name LIKE 'W%'", &db());
        assert_eq!(names(&r), ["Wu"]);
        let r = run("SELECT i.name FROM instructor i WHERE i.name NOT LIKE 'W%'", &db());
        assert_eq!(names(&r), ["Mozart"]);
    }

    /// LIKE on NULL is Unknown: the row qualifies under neither polarity.
    #[test]
    fn like_on_null_is_unknown() {
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Null, Value::Int(1), Value::Int(1)]);
        let r = run("SELECT i.id FROM instructor i WHERE i.name LIKE '%'", &d);
        assert!(r.is_empty());
        let r = run("SELECT i.id FROM instructor i WHERE i.name NOT LIKE '%'", &d);
        assert!(r.is_empty());
    }

    #[test]
    fn is_null_and_is_not_null() {
        let mut d = db();
        d.push("instructor", vec![Value::Int(12), Value::Null, Value::Int(1), Value::Int(1)]);
        let r = run("SELECT i.id FROM instructor i WHERE i.name IS NULL", &d);
        assert_eq!(r.rows(), &[vec![Value::Int(12)]]);
        let r = run("SELECT i.id FROM instructor i WHERE i.name IS NOT NULL", &d);
        assert_eq!(r.len(), 2);
    }

    /// Extended predicates compose with joins: they filter the full joined
    /// row after the tree.
    #[test]
    fn subquery_composes_with_join() {
        let mut d = db();
        d.push("department", vec![Value::Int(1), Value::Str("CS".into()), Value::Str("T".into()), Value::Int(500)]);
        d.push("department", vec![Value::Int(2), Value::Str("Music".into()), Value::Str("P".into()), Value::Int(100)]);
        let r = run(
            "SELECT i.name FROM instructor i, department d \
             WHERE i.dept_id = d.dept_id \
             AND EXISTS (SELECT t.id FROM teaches t WHERE t.id = i.id)",
            &d,
        );
        assert_eq!(names(&r), ["Wu"]);
    }
}
