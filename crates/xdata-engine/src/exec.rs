//! Join-tree execution.
//!
//! Rows flow through the tree as full-width vectors with one slot group per
//! relation occurrence; positions owned by occurrences not (yet) joined —
//! or NULL-extended by an outer join — hold `Value::Null`. Each subtree
//! reports which occurrences it owns, so merging two sides is a disjoint
//! copy and NULL-extension falls out naturally.

use std::collections::HashMap;

use xdata_catalog::{Dataset, Schema, Truth, Value};
use xdata_relalg::{AttrRef, NormQuery, Operand, Pred, SelectSpec};
use xdata_relalg::tree::JoinTree;
use xdata_sql::{CompareOp, JoinKind};

use crate::agg::aggregate;
use crate::error::EngineError;
use crate::result::ResultSet;

/// Physical join algorithm used at every `Node` of the join tree.
///
/// Both strategies produce byte-identical [`ResultSet`]s — the hash path
/// replays the nested-loop emission order exactly, which matters because
/// float aggregation downstream is accumulation-order sensitive. The
/// nested-loop path is kept as the differential baseline (the same
/// CDCL-vs-DPLL pattern the solver uses): `tests/join_parity.rs` runs the
/// whole tier-1 corpus through both and asserts identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Build a hash index on the smaller input of each equality join node
    /// and probe with the larger — the default. Nodes without a usable
    /// equality condition (cross joins, pure inequality joins) fall back to
    /// nested loops per node and count `engine.hash_join.fallback_nodes`.
    #[default]
    Hash,
    /// The original quadratic nested-loop join, unconditionally.
    NestedLoop,
}

/// Column layout: occurrence → base offset into the flat row.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    pub offsets: Vec<usize>,
    pub total: usize,
}

impl Layout {
    pub(crate) fn new(q: &NormQuery, schema: &Schema) -> Result<Layout, EngineError> {
        let mut offsets = Vec::with_capacity(q.occurrences.len());
        let mut total = 0usize;
        for occ in &q.occurrences {
            let rel = schema
                .relation(&occ.base)
                .ok_or_else(|| EngineError::UnknownRelation(occ.base.clone()))?;
            offsets.push(total);
            total += rel.arity();
        }
        Ok(Layout { offsets, total })
    }

    pub(crate) fn pos(&self, a: AttrRef) -> usize {
        self.offsets[a.occ] + a.col
    }
}

type Row = Vec<Value>;

/// Execute the query with its own tree (hash-join strategy).
pub fn execute_query(
    q: &NormQuery,
    db: &Dataset,
    schema: &Schema,
) -> Result<ResultSet, EngineError> {
    execute_with_tree(q, &q.tree, db, schema)
}

/// Execute the query with a replacement join tree (join-type mutants).
pub fn execute_with_tree(
    q: &NormQuery,
    tree: &JoinTree,
    db: &Dataset,
    schema: &Schema,
) -> Result<ResultSet, EngineError> {
    execute_with_tree_strategy(q, tree, db, schema, JoinStrategy::default())
}

/// [`execute_query`] with an explicit [`JoinStrategy`].
pub fn execute_query_strategy(
    q: &NormQuery,
    db: &Dataset,
    schema: &Schema,
    strategy: JoinStrategy,
) -> Result<ResultSet, EngineError> {
    execute_with_tree_strategy(q, &q.tree, db, schema, strategy)
}

/// [`execute_with_tree`] with an explicit [`JoinStrategy`].
pub fn execute_with_tree_strategy(
    q: &NormQuery,
    tree: &JoinTree,
    db: &Dataset,
    schema: &Schema,
    strategy: JoinStrategy,
) -> Result<ResultSet, EngineError> {
    let layout = Layout::new(q, schema)?;
    let (rows, _) = eval_tree(tree, q, db, schema, &layout, strategy)?;
    // Retained subqueries, LIKE patterns and NULL checks apply to the full
    // joined row, after the tree and before projection — they may reference
    // attributes of any occurrence.
    let rows = crate::extended::filter_extended(q, rows, db, schema, &layout, strategy)?;
    project(q, rows, &layout)
}

fn eval_tree(
    tree: &JoinTree,
    q: &NormQuery,
    db: &Dataset,
    schema: &Schema,
    layout: &Layout,
    strategy: JoinStrategy,
) -> Result<(Vec<Row>, u64), EngineError> {
    match tree {
        JoinTree::Leaf(occ) => {
            let base = &q.occurrences[*occ].base;
            let rel = schema
                .relation(base)
                .ok_or_else(|| EngineError::UnknownRelation(base.clone()))?;
            let tuples = db.relation(base).unwrap_or(&[]);
            let mut rows = Vec::with_capacity(tuples.len());
            // Selections on this occurrence apply at the leaf (§II:
            // selections are pushed to the individual relations).
            let sels: Vec<&Pred> = q
                .preds
                .iter()
                .filter(|p| p.is_selection() && p.occurrences() == vec![*occ])
                .collect();
            for t in tuples {
                if t.len() != rel.arity() {
                    return Err(EngineError::ArityMismatch {
                        relation: base.clone(),
                        expected: rel.arity(),
                        got: t.len(),
                    });
                }
                let mut row = vec![Value::Null; layout.total];
                row[layout.offsets[*occ]..layout.offsets[*occ] + t.len()].clone_from_slice(t);
                if sels.iter().all(|p| eval_pred(p, &row, layout).is_true()) {
                    rows.push(row);
                }
            }
            Ok((rows, 1u64 << occ))
        }
        JoinTree::Node { kind, left, right, conds } => {
            let (lrows, lmask) = eval_tree(left, q, db, schema, layout, strategy)?;
            let (rrows, rmask) = eval_tree(right, q, db, schema, layout, strategy)?;
            let out = match strategy {
                JoinStrategy::NestedLoop => {
                    join_nested(*kind, &lrows, &rrows, lmask, rmask, conds, layout)
                }
                JoinStrategy::Hash => {
                    let keys = equi_key_conds(conds, lmask, rmask);
                    if keys.is_empty() {
                        xdata_obs::counter("engine.hash_join.fallback_nodes", 1);
                        join_nested(*kind, &lrows, &rrows, lmask, rmask, conds, layout)
                    } else {
                        join_hash(*kind, &lrows, &rrows, lmask, rmask, conds, &keys, layout)
                    }
                }
            };
            Ok((out, lmask | rmask))
        }
    }
}

/// The quadratic baseline: every (left, right) pair is merged and tested.
fn join_nested(
    kind: JoinKind,
    lrows: &[Row],
    rrows: &[Row],
    lmask: u64,
    rmask: u64,
    conds: &[Pred],
    layout: &Layout,
) -> Vec<Row> {
    let mut out = Vec::new();
    let mut rmatched = vec![false; rrows.len()];
    for l in lrows {
        let mut lmatch = false;
        for (ri, r) in rrows.iter().enumerate() {
            let merged = merge(l, r, lmask, rmask, layout);
            if conds.iter().all(|c| eval_pred(c, &merged, layout).is_true()) {
                out.push(merged);
                lmatch = true;
                rmatched[ri] = true;
            }
        }
        if !lmatch && matches!(kind, JoinKind::Left | JoinKind::Full) {
            out.push(l.clone()); // right side stays NULL
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, r) in rrows.iter().enumerate() {
            if !rmatched[ri] {
                out.push(r.clone()); // left side stays NULL
            }
        }
    }
    out
}

/// One component of a hash-join key. Numerics are keyed by their widened
/// f64 bit pattern because [`Value::sql_cmp`] declares `Int(1)` equal to
/// `Double(1.0)`: equal values always land in the same bucket, and the rare
/// false bucket-mate (two huge `i64`s collapsing to one f64) is weeded out
/// by re-evaluating the join conditions on the merged row.
#[derive(PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    Num(u64),
    Str(String),
}

/// Key component for `v`, or `None` for NULL — a NULL join key matches
/// nothing under three-valued logic, so NULL-keyed build rows are not
/// indexed and NULL-keyed probe rows skip the lookup entirely.
pub(crate) fn key_part(v: Value) -> Option<KeyPart> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(KeyPart::Num((i as f64).to_bits())),
        Value::Double(d) => Some(KeyPart::Num(d.to_bits())),
        Value::Str(s) => Some(KeyPart::Str(s)),
    }
}

/// Equality conditions usable as hash keys, oriented as (left-side operand,
/// right-side operand). Only attribute-vs-attribute equalities across the
/// two sides qualify; constant-offset operands are fine (the offset is
/// applied when the key is extracted).
fn equi_key_conds(conds: &[Pred], lmask: u64, rmask: u64) -> Vec<(&Operand, &Operand)> {
    fn side(o: &Operand) -> Option<u64> {
        match o {
            Operand::Attr { attr, .. } => Some(1u64 << attr.occ),
            Operand::Const(_) => None,
        }
    }
    conds
        .iter()
        .filter(|c| c.op == CompareOp::Eq)
        .filter_map(|c| {
            let ls = side(&c.lhs)?;
            let rs = side(&c.rhs)?;
            if ls & lmask != 0 && rs & rmask != 0 {
                Some((&c.lhs, &c.rhs))
            } else if ls & rmask != 0 && rs & lmask != 0 {
                Some((&c.rhs, &c.lhs))
            } else {
                None
            }
        })
        .collect()
}

/// Hash join: index the smaller side on its key columns, probe with the
/// larger, then emit matches in the exact order [`join_nested`] would have
/// produced them (left-major, right index ascending, NULL-extensions
/// interleaved) so results stay byte-identical between strategies.
#[allow(clippy::too_many_arguments)]
fn join_hash(
    kind: JoinKind,
    lrows: &[Row],
    rrows: &[Row],
    lmask: u64,
    rmask: u64,
    conds: &[Pred],
    keys: &[(&Operand, &Operand)],
    layout: &Layout,
) -> Vec<Row> {
    xdata_obs::counter("engine.hash_join.nodes", 1);
    let build_left = lrows.len() < rrows.len();
    let (build, probe) = if build_left { (lrows, rrows) } else { (rrows, lrows) };
    xdata_obs::counter("engine.hash_join.build_rows", build.len() as u64);
    xdata_obs::counter("engine.hash_join.probe_rows", probe.len() as u64);

    let extract = |row: &Row, of_left: bool| -> Option<Vec<KeyPart>> {
        keys.iter()
            .map(|(lop, rop)| {
                let op = if of_left { lop } else { rop };
                key_part(operand_value(op, row, layout))
            })
            .collect()
    };
    let mut index: HashMap<Vec<KeyPart>, Vec<usize>> = HashMap::new();
    for (bi, b) in build.iter().enumerate() {
        if let Some(key) = extract(b, build_left) {
            index.entry(key).or_default().push(bi);
        }
    }
    // Probe, collecting matches as (li, ri, merged row). The hash key is a
    // bucket filter, not the equality test: every condition — key
    // equalities included — is re-evaluated on the merged row, which also
    // handles residual non-equality conditions on the same node.
    let mut matches: Vec<(usize, usize, Row)> = Vec::new();
    for (pi, p) in probe.iter().enumerate() {
        let Some(bucket) = extract(p, !build_left).and_then(|key| index.get(&key)) else {
            continue;
        };
        for &bi in bucket {
            let (li, ri) = if build_left { (bi, pi) } else { (pi, bi) };
            let merged = merge(&lrows[li], &rrows[ri], lmask, rmask, layout);
            if conds.iter().all(|c| eval_pred(c, &merged, layout).is_true()) {
                matches.push((li, ri, merged));
            }
        }
    }
    // Probing the left side yields matches already in nested-loop order;
    // probing the right yields them right-major and they must be reordered.
    if build_left {
        matches.sort_unstable_by_key(|m| (m.0, m.1));
    }
    let mut out = Vec::with_capacity(matches.len());
    let mut rmatched = vec![false; rrows.len()];
    let mut mi = 0;
    for (li, l) in lrows.iter().enumerate() {
        let mut lmatch = false;
        while mi < matches.len() && matches[mi].0 == li {
            rmatched[matches[mi].1] = true;
            out.push(std::mem::take(&mut matches[mi].2));
            lmatch = true;
            mi += 1;
        }
        if !lmatch && matches!(kind, JoinKind::Left | JoinKind::Full) {
            out.push(l.clone()); // right side stays NULL
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, r) in rrows.iter().enumerate() {
            if !rmatched[ri] {
                out.push(r.clone()); // left side stays NULL
            }
        }
    }
    out
}

fn merge(l: &Row, r: &Row, lmask: u64, rmask: u64, layout: &Layout) -> Row {
    debug_assert_eq!(lmask & rmask, 0, "join sides own disjoint occurrences");
    let mut row = l.clone();
    let mut m = rmask;
    while m != 0 {
        let occ = m.trailing_zeros() as usize;
        m &= m - 1;
        let start = layout.offsets[occ];
        let end = if occ + 1 < layout.offsets.len() { layout.offsets[occ + 1] } else { layout.total };
        row[start..end].clone_from_slice(&r[start..end]);
    }
    row
}

pub(crate) fn operand_value(o: &Operand, row: &Row, layout: &Layout) -> Value {
    match o {
        Operand::Const(v) => v.clone(),
        Operand::Attr { attr, offset } => {
            let v = &row[layout.pos(*attr)];
            if *offset == 0 {
                v.clone()
            } else {
                match v {
                    Value::Int(i) => Value::Int(i + offset),
                    Value::Double(d) => Value::Double(d + *offset as f64),
                    _ => Value::Null,
                }
            }
        }
    }
}

pub(crate) fn eval_pred(p: &Pred, row: &Row, layout: &Layout) -> Truth {
    let l = operand_value(&p.lhs, row, layout);
    let r = operand_value(&p.rhs, row, layout);
    cmp_truth(&l, p.op, &r)
}

/// Three-valued comparison: `Unknown` when either side is NULL.
pub(crate) fn cmp_truth(l: &Value, op: CompareOp, r: &Value) -> Truth {
    match l.sql_cmp(r) {
        None => Truth::Unknown,
        Some(ord) => {
            let b = match op {
                CompareOp::Eq => ord == std::cmp::Ordering::Equal,
                CompareOp::Ne => ord != std::cmp::Ordering::Equal,
                CompareOp::Lt => ord == std::cmp::Ordering::Less,
                CompareOp::Le => ord != std::cmp::Ordering::Greater,
                CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                CompareOp::Ge => ord != std::cmp::Ordering::Less,
            };
            Truth::from_bool(b)
        }
    }
}

fn project(q: &NormQuery, rows: Vec<Row>, layout: &Layout) -> Result<ResultSet, EngineError> {
    let result = match &q.select {
        SelectSpec::Star => ResultSet::new(rows),
        SelectSpec::Columns(cols) => {
            let out = rows
                .into_iter()
                .map(|r| cols.iter().map(|c| r[layout.pos(*c)].clone()).collect())
                .collect();
            ResultSet::new(out)
        }
        SelectSpec::Aggregation { group_by, aggs, having } => {
            aggregate(q, rows, group_by, aggs, having, layout)?
        }
    };
    if q.distinct {
        // SELECT DISTINCT: set semantics on the projected rows (NULLs
        // compare equal for duplicate elimination, as in SQL).
        let mut rows = result.rows().to_vec();
        rows.dedup(); // rows() is sorted
        return Ok(ResultSet::new(rows));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_catalog::university;
    use xdata_relalg::normalize;
    use xdata_sql::parse_query;

    fn run(sql: &str, db: &Dataset) -> ResultSet {
        let schema = university::schema();
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        execute_query(&q, db, &schema).unwrap()
    }

    fn db() -> Dataset {
        // Two instructors; only #10 teaches.
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(10), Value::Str("Wu".into()), Value::Int(1), Value::Int(60000)]);
        d.push("instructor", vec![Value::Int(11), Value::Str("Mozart".into()), Value::Int(2), Value::Int(40000)]);
        d.push("teaches", vec![Value::Int(10), Value::Int(100), Value::Int(1), Value::Int(2009)]);
        d
    }

    #[test]
    fn inner_join_matches_only() {
        let r = run("SELECT i.name FROM instructor i, teaches t WHERE i.id = t.id", &db());
        assert_eq!(r.rows(), &[vec![Value::Str("Wu".into())]]);
    }

    #[test]
    fn left_outer_join_null_extends() {
        let r = run(
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
            &db(),
        );
        assert_eq!(r.len(), 2);
        assert!(r
            .rows()
            .iter()
            .any(|row| row == &vec![Value::Str("Mozart".into()), Value::Null]));
    }

    #[test]
    fn right_outer_join_symmetric() {
        let mut d = db();
        // A teaches row with no instructor (FK violated on purpose — the
        // engine does not enforce constraints, the generator does).
        d.push("teaches", vec![Value::Int(99), Value::Int(101), Value::Int(1), Value::Int(2009)]);
        let r = run(
            "SELECT i.name, t.course_id FROM instructor i RIGHT OUTER JOIN teaches t \
             ON i.id = t.id",
            &d,
        );
        assert_eq!(r.len(), 2);
        assert!(r.rows().iter().any(|row| row == &vec![Value::Null, Value::Int(101)]));
    }

    #[test]
    fn full_outer_join_extends_both() {
        let mut d = db();
        d.push("teaches", vec![Value::Int(99), Value::Int(101), Value::Int(1), Value::Int(2009)]);
        let r = run(
            "SELECT i.name, t.course_id FROM instructor i FULL OUTER JOIN teaches t \
             ON i.id = t.id",
            &d,
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn selection_pushed_to_leaf_affects_outer_join() {
        // σ filters instructor before the outer join: Mozart's row is gone
        // entirely rather than NULL-extended.
        let r = run(
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id WHERE i.salary > 50000",
            &db(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Value::Str("Wu".into()));
    }

    #[test]
    fn null_condition_is_not_true() {
        // teaches row joined against NULL-extended side: condition Unknown.
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
        let r = run(
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
            &d,
        );
        assert_eq!(r.rows(), &[vec![Value::Str("A".into()), Value::Null]]);
    }

    #[test]
    fn bag_semantics_preserves_duplicates() {
        let mut d = db();
        // Second teaches row for the same instructor — two joined rows.
        d.push("teaches", vec![Value::Int(10), Value::Int(101), Value::Int(1), Value::Int(2009)]);
        let r = run("SELECT i.name FROM instructor i, teaches t WHERE i.id = t.id", &d);
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0], r.rows()[1]);
    }

    #[test]
    fn nonequi_join_with_offset() {
        let mut d = Dataset::new();
        d.push("teaches", vec![Value::Int(1), Value::Int(110), Value::Int(1), Value::Int(2009)]);
        d.push("course", vec![Value::Int(100), Value::Str("X".into()), Value::Int(1), Value::Int(3)]);
        let r = run(
            "SELECT t.id FROM teaches t, course c WHERE t.course_id = c.course_id + 10",
            &d,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn star_projects_all_columns_in_from_order() {
        let r = run("SELECT * FROM instructor i, teaches t WHERE i.id = t.id", &db());
        assert_eq!(r.rows()[0].len(), 8); // 4 + 4 columns
        assert_eq!(r.rows()[0][0], Value::Int(10));
        assert_eq!(r.rows()[0][4], Value::Int(10));
    }

    #[test]
    fn missing_relation_treated_as_empty() {
        let d = Dataset::new();
        let r = run("SELECT i.name FROM instructor i, teaches t WHERE i.id = t.id", &d);
        assert!(r.is_empty());
    }

    #[test]
    fn string_selection() {
        let r = run("SELECT id FROM instructor WHERE name = 'Mozart'", &db());
        assert_eq!(r.rows(), &[vec![Value::Int(11)]]);
    }
}
