//! Mutant execution and kill checking.
//!
//! "A mutant query is said to be killed by a test case when the execution
//! of the mutant on a test case produces a different result than the
//! execution of the original query" (§I).

use xdata_catalog::{Dataset, Schema};
use xdata_par::CancelToken;
use xdata_relalg::mutation::{
    apply_agg_mutant, apply_cmp_mutant, apply_distinct_mutant, apply_having_agg_mutant,
    apply_having_cmp_mutant, apply_like_mutant, apply_null_check_mutant, apply_sub_mutant,
};
use xdata_relalg::tree::JoinTree;
use xdata_relalg::{Mutant, MutationSpace, NormQuery};

use crate::error::EngineError;
use crate::exec::{
    execute_query, execute_query_strategy, execute_with_tree_strategy, JoinStrategy,
};
use crate::result::ResultSet;

/// A mutant with its query-level rewrite applied once, ready to run against
/// any number of datasets. `apply_*_mutant` clones the whole [`NormQuery`];
/// preparing outside the per-dataset loop pays that cost once per mutant
/// instead of once per (mutant, dataset) pair.
pub enum PreparedMutant<'a> {
    /// Join-type mutants replace only the tree — no query clone at all.
    Tree(&'a JoinTree),
    /// Every other class rewrites the query; the rewrite is cached here
    /// (boxed — a [`NormQuery`] is large next to the tree reference).
    Query(Box<NormQuery>),
}

/// Apply `m`'s rewrite to `q` once, for repeated execution.
pub fn prepare_mutant<'a>(q: &NormQuery, m: &'a Mutant) -> PreparedMutant<'a> {
    match m {
        Mutant::Join(jm) => PreparedMutant::Tree(&jm.tree),
        Mutant::Cmp(cm) => PreparedMutant::Query(Box::new(apply_cmp_mutant(q, cm))),
        Mutant::Agg(am) => PreparedMutant::Query(Box::new(apply_agg_mutant(q, am))),
        Mutant::HavingCmp(hm) => PreparedMutant::Query(Box::new(apply_having_cmp_mutant(q, hm))),
        Mutant::HavingAgg(hm) => PreparedMutant::Query(Box::new(apply_having_agg_mutant(q, hm))),
        Mutant::Distinct(dm) => PreparedMutant::Query(Box::new(apply_distinct_mutant(q, dm))),
        Mutant::Sub(sm) => PreparedMutant::Query(Box::new(apply_sub_mutant(q, sm))),
        Mutant::Like(lm) => PreparedMutant::Query(Box::new(apply_like_mutant(q, lm))),
        Mutant::NullCheck(nm) => PreparedMutant::Query(Box::new(apply_null_check_mutant(q, nm))),
    }
}

impl PreparedMutant<'_> {
    /// Execute the prepared mutant of `q` on `db`.
    pub fn execute(
        &self,
        q: &NormQuery,
        db: &Dataset,
        schema: &Schema,
    ) -> Result<ResultSet, EngineError> {
        self.execute_strategy(q, db, schema, JoinStrategy::default())
    }

    /// [`PreparedMutant::execute`] with an explicit [`JoinStrategy`].
    pub fn execute_strategy(
        &self,
        q: &NormQuery,
        db: &Dataset,
        schema: &Schema,
        strategy: JoinStrategy,
    ) -> Result<ResultSet, EngineError> {
        match self {
            PreparedMutant::Tree(t) => execute_with_tree_strategy(q, t, db, schema, strategy),
            PreparedMutant::Query(q2) => execute_query_strategy(q2, db, schema, strategy),
        }
    }
}

/// Execute a mutant of `q` on `db`. One-shot form of [`prepare_mutant`] +
/// [`PreparedMutant::execute`]; loops over datasets should prepare once.
pub fn execute_mutant(
    q: &NormQuery,
    m: &Mutant,
    db: &Dataset,
    schema: &Schema,
) -> Result<ResultSet, EngineError> {
    prepare_mutant(q, m).execute(q, db, schema)
}

/// Whether `db` kills mutant `m` of `q`.
pub fn kills(q: &NormQuery, m: &Mutant, db: &Dataset, schema: &Schema) -> Result<bool, EngineError> {
    let original = execute_query(q, db, schema)?;
    let mutated = execute_mutant(q, m, db, schema)?;
    Ok(original != mutated)
}

/// Result of running a whole mutation space against a test suite.
#[derive(Debug, Clone, Default)]
pub struct KillReport {
    /// Per-mutant: index of the first dataset that killed it, if any.
    pub killed_by: Vec<Option<usize>>,
    /// Mutant indices whose evaluation was cancelled (the deadline expired
    /// before their verdict). They are neither killed nor surviving — an
    /// unevaluated mutant is *unresolved*, and [`KillReport::surviving`]
    /// excludes it. Empty unless the run was cancelled mid-report.
    pub unevaluated: Vec<usize>,
    pub total_mutants: usize,
}

impl KillReport {
    pub fn killed_count(&self) -> usize {
        self.killed_by.iter().filter(|k| k.is_some()).count()
    }

    /// Mutants that were evaluated against every dataset and killed by
    /// none — the equivalence candidates (unevaluated mutants are not
    /// survivors; they simply have no verdict).
    pub fn surviving(&self) -> impl Iterator<Item = usize> + '_ {
        self.killed_by
            .iter()
            .enumerate()
            .filter(|(i, k)| k.is_none() && !self.unevaluated.contains(i))
            .map(|(i, _)| i)
    }
}

/// Mutant-class tag used in trace span labels and verdict events; matches
/// the `kill.killed.<class>` / `kill.survived.<class>` counter suffixes.
fn class_name(m: &Mutant) -> &'static str {
    match m {
        Mutant::Join(_) => "join",
        Mutant::Cmp(_) => "cmp",
        Mutant::Agg(_) => "agg",
        Mutant::HavingCmp(_) => "having_cmp",
        Mutant::HavingAgg(_) => "having_agg",
        Mutant::Distinct(_) => "distinct",
        Mutant::Sub(_) => "subquery",
        Mutant::Like(_) => "like",
        Mutant::NullCheck(_) => "null_check",
    }
}

/// Run every mutant in `space` against every dataset in `suite`, recording
/// which dataset (if any) first kills each mutant — the evaluation loop of
/// §VI-C. Sequential; see [`kill_report_jobs`] for the parallel form.
pub fn kill_report(
    q: &NormQuery,
    space: &MutationSpace,
    suite: &[&Dataset],
    schema: &Schema,
) -> Result<KillReport, EngineError> {
    kill_report_jobs(q, space, suite, schema, 1)
}

/// [`kill_report`] with the mutant axis sharded over `jobs` worker threads
/// (`0` = one per core). Each mutant's verdict — the index of the *first*
/// dataset that kills it — is independent of every other mutant's, and the
/// order-preserving parallel map returns verdicts in mutant-enumeration
/// order, so the report is identical for every `jobs` value.
pub fn kill_report_jobs(
    q: &NormQuery,
    space: &MutationSpace,
    suite: &[&Dataset],
    schema: &Schema,
    jobs: usize,
) -> Result<KillReport, EngineError> {
    kill_report_cancel(q, space, suite, schema, jobs, &CancelToken::new())
}

/// [`kill_report_jobs`] honoring a cancellation token: when `cancel` trips
/// (a pipeline-level deadline expired), mutants without a verdict yet land
/// in [`KillReport::unevaluated`] instead of blocking the report. Verdicts
/// already computed are kept — cancellation never invalidates them.
pub fn kill_report_cancel(
    q: &NormQuery,
    space: &MutationSpace,
    suite: &[&Dataset],
    schema: &Schema,
    jobs: usize,
    cancel: &CancelToken,
) -> Result<KillReport, EngineError> {
    let _kill_span = xdata_obs::span("kill");
    let originals: Vec<ResultSet> = {
        let _orig_span = xdata_obs::span("kill/originals");
        suite.iter().map(|db| execute_query(q, db, schema)).collect::<Result<_, _>>()?
    };
    let mutants: Vec<_> = space.iter().collect();
    let verdicts = xdata_par::par_map_cancel(jobs, &mutants, cancel, |mi, m| {
        // The class tag in the label is what lets `xdata trace` break
        // evaluation time down per mutant class offline.
        let _shard_span = xdata_obs::span_with("kill/mutant", || {
            format!("#{mi} {} [{}]", m.describe(q), class_name(m))
        });
        // The query-level rewrite is applied once here, outside the
        // dataset loop — only execution repeats per dataset.
        let prepared = prepare_mutant(q, m);
        let verdict = (|| {
            for (di, db) in suite.iter().enumerate() {
                if cancel.is_cancelled() {
                    return Err(None);
                }
                let mutated = match prepared.execute(q, db, schema) {
                    Ok(r) => r,
                    Err(e) => return Err(Some(e)),
                };
                if mutated != originals[di] {
                    return Ok(Some(di));
                }
            }
            Ok(None)
        })();
        if let Ok(v) = &verdict {
            let v = *v;
            xdata_obs::instant("kill.verdict", || match v {
                Some(di) => format!("#{mi} [{}] killed by dataset {di}", class_name(m)),
                None => format!("#{mi} [{}] survived", class_name(m)),
            });
        }
        verdict
    });
    // Unpack: a `None` slot (worker never claimed it) or an in-flight
    // cancellation (`Err(None)`) is an unevaluated mutant; a real executor
    // error propagates as before.
    let mut killed_by = Vec::with_capacity(mutants.len());
    let mut unevaluated = Vec::new();
    for (mi, v) in verdicts.into_iter().enumerate() {
        match v {
            Some(Ok(verdict)) => killed_by.push(verdict),
            Some(Err(Some(e))) => return Err(e),
            Some(Err(None)) | None => {
                unevaluated.push(mi);
                killed_by.push(None);
            }
        }
    }
    // Per-mutant-class tallies, recorded from the order-preserved verdicts
    // on the calling thread — deterministic for every `jobs` value.
    // Unevaluated mutants are neither killed nor survived: they count only
    // toward `kill.unevaluated`.
    xdata_obs::counter("kill.datasets", suite.len() as u64);
    xdata_obs::counter("kill.mutants", mutants.len() as u64);
    xdata_obs::counter("kill.unevaluated", unevaluated.len() as u64);
    for (mi, (m, verdict)) in mutants.iter().zip(&killed_by).enumerate() {
        if unevaluated.contains(&mi) {
            continue;
        }
        let (killed_name, survived_name) = match m {
            Mutant::Join(_) => ("kill.killed.join", "kill.survived.join"),
            Mutant::Cmp(_) => ("kill.killed.cmp", "kill.survived.cmp"),
            Mutant::Agg(_) => ("kill.killed.agg", "kill.survived.agg"),
            Mutant::HavingCmp(_) => ("kill.killed.having_cmp", "kill.survived.having_cmp"),
            Mutant::HavingAgg(_) => ("kill.killed.having_agg", "kill.survived.having_agg"),
            Mutant::Distinct(_) => ("kill.killed.distinct", "kill.survived.distinct"),
            Mutant::Sub(_) => ("kill.killed.subquery", "kill.survived.subquery"),
            Mutant::Like(_) => ("kill.killed.like", "kill.survived.like"),
            Mutant::NullCheck(_) => ("kill.killed.null_check", "kill.survived.null_check"),
        };
        xdata_obs::counter(if verdict.is_some() { killed_name } else { survived_name }, 1);
    }
    Ok(KillReport { killed_by, unevaluated, total_mutants: space.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_catalog::{university, Value};
    use xdata_relalg::mutation::{mutation_space, MutationOptions};
    use xdata_relalg::normalize;
    use xdata_sql::parse_query;

    fn setup(sql: &str) -> (NormQuery, Schema) {
        let schema = university::schema();
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        (q, schema)
    }

    /// The paper's introductory example: an instructor who teaches nothing
    /// kills the inner-to-left-outer mutant.
    #[test]
    fn intro_example_kill() {
        let (q, schema) = setup("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        let space = mutation_space(&q, MutationOptions::default());
        let left = space
            .join
            .iter()
            .find(|m| m.to == xdata_sql::JoinKind::Left && m.from == xdata_sql::JoinKind::Inner)
            .expect("left-outer mutant exists");
        // Dataset 1: every instructor teaches — mutant NOT killed.
        let mut d1 = Dataset::new();
        d1.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
        d1.push("teaches", vec![Value::Int(1), Value::Int(100), Value::Int(1), Value::Int(2009)]);
        // Dataset 2: one instructor teaches nothing — mutant killed.
        let mut d2 = d1.clone();
        d2.push("instructor", vec![Value::Int(2), Value::Str("B".into()), Value::Int(1), Value::Int(1)]);

        // Orientation note: the enumerated single tree may be (i ⋈ t) or
        // (t ⋈ i); find which join mutant NULL-extends teaches.
        let m = Mutant::Join(left.clone());
        let k1 = kills(&q, &m, &d1, &schema).unwrap();
        let k2 = kills(&q, &m, &d2, &schema).unwrap();
        // One of the two left/right mutants must be killed by d2; check via
        // the whole space to stay orientation-agnostic.
        let report = kill_report(&q, &space, &[&d1, &d2], &schema).unwrap();
        assert!(report.killed_count() >= 2, "outer-join mutants killed: {report:?}");
        let _ = (k1, k2);

        // The parallel form must agree verdict-for-verdict.
        for jobs in [0, 2, 8] {
            let par = kill_report_jobs(&q, &space, &[&d1, &d2], &schema, jobs).unwrap();
            assert_eq!(report.killed_by, par.killed_by, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_dataset_kills_nothing() {
        let (q, schema) = setup("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        let space = mutation_space(&q, MutationOptions::default());
        let empty = Dataset::new();
        let report = kill_report(&q, &space, &[&empty], &schema).unwrap();
        assert_eq!(report.killed_count(), 0);
    }

    #[test]
    fn cmp_mutant_killed_by_boundary_value() {
        let (q, schema) = setup("SELECT id FROM instructor WHERE salary > 100");
        let space = mutation_space(&q, MutationOptions::default());
        // salary = 100 distinguishes > from >=.
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(100)]);
        let ge = space
            .cmp
            .iter()
            .find(|m| m.to == xdata_sql::CompareOp::Ge)
            .expect("Ge mutant");
        assert!(kills(&q, &Mutant::Cmp(ge.clone()), &d, &schema).unwrap());
        // salary = 150 does not distinguish them.
        let mut d2 = Dataset::new();
        d2.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(150)]);
        assert!(!kills(&q, &Mutant::Cmp(ge.clone()), &d2, &schema).unwrap());
    }

    #[test]
    fn agg_mutant_killed_by_duplicates() {
        let (q, schema) = setup("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id");
        let space = mutation_space(&q, MutationOptions::default());
        let sum_distinct = space
            .agg
            .iter()
            .find(|m| m.to.distinct && m.to.op == xdata_sql::AggOp::Sum)
            .expect("SUM(DISTINCT) mutant");
        // Two equal salaries in one group distinguish SUM from SUM(DISTINCT).
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(100)]);
        d.push("instructor", vec![Value::Int(2), Value::Str("B".into()), Value::Int(1), Value::Int(100)]);
        assert!(kills(&q, &Mutant::Agg(sum_distinct.clone()), &d, &schema).unwrap());
        // Distinct salaries do not.
        let mut d2 = Dataset::new();
        d2.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(100)]);
        d2.push("instructor", vec![Value::Int(2), Value::Str("B".into()), Value::Int(1), Value::Int(200)]);
        assert!(!kills(&q, &Mutant::Agg(sum_distinct.clone()), &d2, &schema).unwrap());
    }

    /// A pre-cancelled token yields a report with every mutant unevaluated:
    /// nothing killed, nothing surviving — no false equivalence claims.
    #[test]
    fn cancelled_report_marks_all_unevaluated() {
        let (q, schema) = setup("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        let space = mutation_space(&q, MutationOptions::default());
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
        let token = CancelToken::new();
        token.cancel();
        for jobs in [1, 4] {
            let report =
                kill_report_cancel(&q, &space, &[&d], &schema, jobs, &token).unwrap();
            assert_eq!(report.total_mutants, space.len(), "jobs={jobs}");
            assert_eq!(report.unevaluated.len(), space.len(), "jobs={jobs}");
            assert_eq!(report.killed_count(), 0, "jobs={jobs}");
            assert_eq!(report.surviving().count(), 0, "jobs={jobs}");
        }
        // A live token changes nothing relative to the plain report.
        let plain = kill_report(&q, &space, &[&d], &schema).unwrap();
        let live =
            kill_report_cancel(&q, &space, &[&d], &schema, 1, &CancelToken::new()).unwrap();
        assert_eq!(plain.killed_by, live.killed_by);
        assert!(live.unevaluated.is_empty());
    }

    #[test]
    fn fk_constrained_mutant_is_equivalent() {
        // With the FK teaches.id → instructor.id and no selection, the
        // right-outer mutant of (instructor ⋈ teaches) is equivalent
        // (Example 2 of §IV-B): no legal dataset kills it. Keep only that
        // FK so the hand-built dataset stays a legal instance.
        let schema = university::schema_with_fk_count(1);
        let q = normalize(
            &parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let space = mutation_space(&q, MutationOptions::default());
        // Build legal datasets only.
        let mut d = Dataset::new();
        d.push("instructor", vec![Value::Int(1), Value::Str("A".into()), Value::Int(1), Value::Int(1)]);
        d.push("instructor", vec![Value::Int(2), Value::Str("B".into()), Value::Int(1), Value::Int(1)]);
        d.push("teaches", vec![Value::Int(1), Value::Int(100), Value::Int(1), Value::Int(2009)]);
        assert!(d.integrity_violations(&schema).is_empty());
        // The mutant that NULL-extends teaches-side rows (no matching
        // instructor) can never fire on a legal dataset.
        for m in &space.join {
            let killed = kills(&q, &Mutant::Join(m.clone()), &d, &schema).unwrap();
            // Exactly the mutants that NULL-extend missing teaches rows
            // fire here (instructor 2 teaches nothing).
            let t = m.tree.display_with(&["i".into(), "t".into()]).to_string();
            if killed {
                assert!(
                    t.contains("(i LEFT-OUTER-JOIN t)")
                        || t.contains("(t RIGHT-OUTER-JOIN i)")
                        || t.contains("FULL-OUTER-JOIN"),
                    "unexpected kill by {t}"
                );
            }
        }
    }
}
