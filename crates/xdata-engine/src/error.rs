//! Execution errors.

use std::fmt;

/// Errors raised during query execution. Most structural problems are
/// caught earlier by `xdata-relalg` normalization; these remain for
/// dataset/schema mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An occurrence's base relation is missing from the schema.
    UnknownRelation(String),
    /// A tuple's width does not match its relation's arity.
    ArityMismatch { relation: String, expected: usize, got: usize },
    /// An aggregate was applied to a non-numeric value.
    BadAggregateInput(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            EngineError::ArityMismatch { relation, expected, got } => {
                write!(f, "tuple of width {got} in `{relation}` (arity {expected})")
            }
            EngineError::BadAggregateInput(m) => write!(f, "bad aggregate input: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}
