//! # xdata-engine
//!
//! A small in-memory relational executor, playing the role the paper's
//! evaluation delegates to a DBMS: "for each such mutant, we execute a
//! database query to check if the original query and the mutant return
//! different results" (§VI-C). It implements exactly the paper's query
//! class with faithful SQL semantics:
//!
//! * **bag semantics** — duplicates preserved end-to-end;
//! * **three-valued logic** — join and selection conditions qualify a row
//!   only when definitely true; outer joins NULL-extend the other side;
//! * **all four join types** and per-node join conditions, with selections
//!   applied at the leaves (the paper pushes selections down, §II);
//! * **the eight aggregation operators** with SQL NULL handling (`COUNT(*)`
//!   counts rows; other aggregates skip NULLs; empty input yields NULL for
//!   everything except `COUNT`, which yields 0).
//!
//! Results are [`ResultSet`]s compared as sorted bags; a mutant is *killed*
//! by a dataset exactly when its result differs from the original's
//! ([`kill::kills`]).

pub mod agg;
pub mod error;
pub mod exec;
mod extended;
pub mod kill;
pub mod result;

pub use error::EngineError;
pub use exec::{
    execute_query, execute_query_strategy, execute_with_tree, execute_with_tree_strategy,
    JoinStrategy,
};
pub use kill::{execute_mutant, kills, KillReport, PreparedMutant};
pub use result::ResultSet;
