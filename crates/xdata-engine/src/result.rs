//! Query results as comparable bags.

use std::fmt;

use xdata_catalog::{Tuple, Value};

/// A query result: a bag of rows. Equality is bag equality (order
/// insensitive, multiplicity sensitive) — exactly the notion under which a
/// test case kills a mutant (§I: "produces a different result").
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    rows: Vec<Tuple>,
}

impl ResultSet {
    pub fn new(mut rows: Vec<Tuple>) -> Self {
        rows.sort_by(cmp_rows);
        ResultSet { rows }
    }

    /// Rows in canonical (sorted) order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn cmp_rows(a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
    a.len().cmp(&b.len()).then_with(|| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    })
}

impl PartialEq for ResultSet {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
    }
}
impl Eq for ResultSet {}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows.is_empty() {
            return writeln!(f, "(empty result)");
        }
        for r in &self.rows {
            let cells: Vec<String> = r.iter().map(Value::to_string).collect();
            writeln!(f, "({})", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_equality_is_order_insensitive() {
        let a = ResultSet::new(vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        let b = ResultSet::new(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(a, b);
    }

    #[test]
    fn bag_equality_is_multiplicity_sensitive() {
        let a = ResultSet::new(vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        let b = ResultSet::new(vec![vec![Value::Int(1)]]);
        assert_ne!(a, b);
    }

    #[test]
    fn nulls_compare_stably() {
        let a = ResultSet::new(vec![vec![Value::Null, Value::Int(1)]]);
        let b = ResultSet::new(vec![vec![Value::Null, Value::Int(1)]]);
        assert_eq!(a, b);
        let c = ResultSet::new(vec![vec![Value::Null, Value::Int(2)]]);
        assert_ne!(a, c);
    }

    #[test]
    fn display_lists_rows() {
        let r = ResultSet::new(vec![vec![Value::Int(1), Value::Str("x".into())]]);
        assert_eq!(r.to_string(), "(1, 'x')\n");
        assert_eq!(ResultSet::default().to_string(), "(empty result)\n");
    }
}
