//! Grouping and the eight aggregation operators.
//!
//! SQL semantics reproduced faithfully because aggregate-mutant killing
//! depends on their fine points: `COUNT(*)` counts rows, every other
//! aggregate skips NULLs, `DISTINCT` deduplicates before aggregating, an
//! empty input yields one row of NULLs (0 for COUNT) when there is no
//! GROUP BY and no rows at all, and NULL group keys form one group.

use std::collections::BTreeMap;

use xdata_catalog::{Truth, Tuple, Value};
use xdata_relalg::ir::AggSpec;
use xdata_relalg::{AttrRef, HavingPred, NormQuery};
use xdata_sql::{AggOp, CompareOp};

use crate::error::EngineError;
use crate::exec::Layout;
use crate::result::ResultSet;

pub(crate) fn aggregate(
    _q: &NormQuery,
    rows: Vec<Vec<Value>>,
    group_by: &[AttrRef],
    aggs: &[AggSpec],
    having: &[HavingPred],
    layout: &Layout,
) -> Result<ResultSet, EngineError> {
    let mut groups: BTreeMap<Vec<Value>, Vec<Vec<Value>>> = BTreeMap::new();
    for row in rows {
        let key: Vec<Value> = group_by.iter().map(|g| row[layout.pos(*g)].clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    let mut out: Vec<Tuple> = Vec::new();
    if groups.is_empty() && group_by.is_empty() {
        // SELECT COUNT(...) FROM empty → one row (subject to HAVING).
        if having_holds(having, &[], layout)? {
            let mut row = Vec::new();
            for a in aggs {
                row.push(agg_value(a, &[], layout)?);
            }
            out.push(row);
        }
    } else {
        for (key, grows) in groups {
            if !having_holds(having, &grows, layout)? {
                continue;
            }
            let mut row = key;
            for a in aggs {
                row.push(agg_value(a, &grows, layout)?);
            }
            out.push(row);
        }
    }
    Ok(ResultSet::new(out))
}

/// SQL HAVING semantics: a group survives only when every conjunct is
/// definitely true (three-valued logic: a NULL aggregate fails).
fn having_holds(
    having: &[HavingPred],
    rows: &[Vec<Value>],
    layout: &Layout,
) -> Result<bool, EngineError> {
    for h in having {
        let spec = AggSpec { func: h.func, arg: h.arg };
        let actual = agg_value(&spec, rows, layout)?;
        let truth = match actual.sql_cmp(&Value::Int(h.value)) {
            None => Truth::Unknown,
            Some(ord) => Truth::from_bool(match h.cmp {
                CompareOp::Eq => ord == std::cmp::Ordering::Equal,
                CompareOp::Ne => ord != std::cmp::Ordering::Equal,
                CompareOp::Lt => ord == std::cmp::Ordering::Less,
                CompareOp::Le => ord != std::cmp::Ordering::Greater,
                CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                CompareOp::Ge => ord != std::cmp::Ordering::Less,
            }),
        };
        if !truth.is_true() {
            return Ok(false);
        }
    }
    Ok(true)
}

fn agg_value(spec: &AggSpec, rows: &[Vec<Value>], layout: &Layout) -> Result<Value, EngineError> {
    let Some(arg) = spec.arg else {
        // COUNT(*) — the only argument-less operator (validated upstream).
        return Ok(Value::Int(rows.len() as i64));
    };
    let mut vals: Vec<Value> =
        rows.iter().map(|r| r[layout.pos(arg)].clone()).filter(|v| !v.is_null()).collect();
    if spec.func.distinct {
        vals.sort();
        vals.dedup();
    }
    match spec.func.op {
        AggOp::Count => Ok(Value::Int(vals.len() as i64)),
        AggOp::Max => Ok(vals.into_iter().max().unwrap_or(Value::Null)),
        AggOp::Min => Ok(vals.into_iter().min().unwrap_or(Value::Null)),
        AggOp::Sum => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Ok(Value::Int(vals.iter().map(|v| v.as_i64().expect("ints")).sum()))
            } else {
                let mut s = 0f64;
                for v in &vals {
                    s += v.as_f64().ok_or_else(|| {
                        EngineError::BadAggregateInput(format!("SUM over non-numeric {v}"))
                    })?;
                }
                Ok(Value::Double(s))
            }
        }
        AggOp::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut s = 0f64;
            for v in &vals {
                s += v.as_f64().ok_or_else(|| {
                    EngineError::BadAggregateInput(format!("AVG over non-numeric {v}"))
                })?;
            }
            Ok(Value::Double(s / vals.len() as f64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_catalog::{university, Dataset};
    use xdata_relalg::normalize;
    use xdata_sql::parse_query;

    fn run(sql: &str, db: &Dataset) -> ResultSet {
        let schema = university::schema();
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        crate::exec::execute_query(&q, db, &schema).unwrap()
    }

    fn db() -> Dataset {
        let mut d = Dataset::new();
        for (id, dept, sal) in [(1, 1, 100), (2, 1, 100), (3, 1, 200), (4, 2, 50)] {
            d.push(
                "instructor",
                vec![Value::Int(id), Value::Str(format!("i{id}")), Value::Int(dept), Value::Int(sal)],
            );
        }
        d
    }

    #[test]
    fn count_star_and_group_by() {
        let r = run("SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id", &db());
        assert_eq!(
            r.rows(),
            &[vec![Value::Int(1), Value::Int(3)], vec![Value::Int(2), Value::Int(1)]]
        );
    }

    #[test]
    fn sum_vs_sum_distinct() {
        let r = run("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id", &db());
        assert_eq!(r.rows()[0], vec![Value::Int(1), Value::Int(400)]);
        let rd = run(
            "SELECT dept_id, SUM(DISTINCT salary) FROM instructor GROUP BY dept_id",
            &db(),
        );
        assert_eq!(rd.rows()[0], vec![Value::Int(1), Value::Int(300)]);
    }

    #[test]
    fn avg_and_avg_distinct() {
        let r = run("SELECT AVG(salary) FROM instructor WHERE dept_id = 1", &db());
        assert_eq!(r.rows(), &[vec![Value::Double(400.0 / 3.0)]]);
        let rd = run("SELECT AVG(DISTINCT salary) FROM instructor WHERE dept_id = 1", &db());
        assert_eq!(rd.rows(), &[vec![Value::Double(150.0)]]);
    }

    #[test]
    fn count_vs_count_distinct() {
        let r = run("SELECT COUNT(salary), COUNT(DISTINCT salary) FROM instructor", &db());
        assert_eq!(r.rows(), &[vec![Value::Int(4), Value::Int(3)]]);
    }

    #[test]
    fn min_max() {
        let r = run("SELECT MIN(salary), MAX(salary) FROM instructor", &db());
        assert_eq!(r.rows(), &[vec![Value::Int(50), Value::Int(200)]]);
    }

    #[test]
    fn empty_input_no_group_by() {
        let d = Dataset::new();
        let r = run("SELECT COUNT(*), COUNT(salary), SUM(salary), MAX(salary) FROM instructor", &d);
        assert_eq!(
            r.rows(),
            &[vec![Value::Int(0), Value::Int(0), Value::Null, Value::Null]]
        );
    }

    #[test]
    fn empty_input_with_group_by_yields_no_rows() {
        let d = Dataset::new();
        let r = run("SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id", &d);
        assert!(r.is_empty());
    }

    #[test]
    fn having_with_no_group_by_filters_the_single_group() {
        let r = run("SELECT COUNT(*) FROM instructor HAVING COUNT(*) > 10", &db());
        assert!(r.is_empty(), "group of 4 fails COUNT(*) > 10");
        let r2 = run("SELECT COUNT(*) FROM instructor HAVING COUNT(*) >= 4", &db());
        assert_eq!(r2.rows(), &[vec![Value::Int(4)]]);
    }

    #[test]
    fn having_null_aggregate_fails_three_valued() {
        // Empty input, no GROUP BY: MAX is NULL, NULL > 0 is unknown → no row.
        let d = Dataset::new();
        let r = run("SELECT COUNT(*) FROM instructor HAVING MAX(salary) > 0", &d);
        assert!(r.is_empty());
        // But COUNT(*) = 0 is definitely true.
        let r2 = run("SELECT COUNT(*) FROM instructor HAVING COUNT(*) = 0", &d);
        assert_eq!(r2.rows(), &[vec![Value::Int(0)]]);
    }

    #[test]
    fn having_over_outer_join_nulls() {
        let mut d = db();
        d.push("teaches", vec![Value::Int(1), Value::Int(100), Value::Int(1), Value::Int(2009)]);
        // Group by dept over a left outer join: COUNT(t.course_id) skips
        // the NULL-extended rows.
        let r = run(
            "SELECT dept_id, COUNT(course_id) FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id GROUP BY dept_id HAVING COUNT(course_id) >= 1",
            &d,
        );
        assert_eq!(r.rows(), &[vec![Value::Int(1), Value::Int(1)]]);
    }

    #[test]
    fn aggregates_skip_nulls_from_outer_join() {
        let mut d = db();
        d.push("teaches", vec![Value::Int(1), Value::Int(100), Value::Int(1), Value::Int(2009)]);
        // COUNT(t.course_id) counts only matched rows; COUNT(*) counts all.
        let r = run(
            "SELECT COUNT(t.course_id), COUNT(*) FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
            &d,
        );
        assert_eq!(r.rows(), &[vec![Value::Int(1), Value::Int(4)]]);
    }
}
