//! Abstract syntax for the X-Data query class.
//!
//! The AST deliberately models only what §II of the paper admits: one
//! SELECT block, joins/outer joins, conjunctive predicates of simple
//! comparisons, unconstrained aggregation. `Display` renders back to SQL so
//! mutants can be shown to users in the language they wrote.

use std::fmt;

use xdata_catalog::SqlType;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    CreateTable(CreateTable),
    Insert(Insert),
}

/// `INSERT INTO table VALUES (...), (...)` — used to load sample/input
/// databases (§VI-A) from SQL scripts.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub rows: Vec<Vec<xdata_catalog::Value>>,
}

/// `CREATE TABLE` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<(String, SqlType, bool)>, // (name, type, nullable)
    pub primary_key: Vec<String>,
    pub foreign_keys: Vec<AstForeignKey>,
}

/// `FOREIGN KEY (cols) REFERENCES table (cols)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AstForeignKey {
    pub columns: Vec<String>,
    pub ref_table: String,
    pub ref_columns: Vec<String>,
}

/// A single-block query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT` — duplicate elimination. Mutations between
    /// `SELECT` and `SELECT DISTINCT` are the duplicate-count mutation
    /// class the paper's footnote 2 defers to future work; this
    /// reproduction implements them.
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    /// Conjunctive WHERE clause (assumption A5).
    pub where_clause: Vec<Condition>,
    /// `[NOT] IN (SELECT ...)` conjuncts of the WHERE clause. The paper's
    /// §V-H handles "simple subqueries"; `xdata-relalg` lowers them to
    /// bounded-quantifier predicates.
    pub where_in: Vec<InPred>,
    /// `[NOT] EXISTS (SELECT ...)` conjuncts of the WHERE clause.
    pub where_exists: Vec<ExistsPred>,
    /// `[NOT] LIKE` string-pattern conjuncts of the WHERE clause.
    pub where_like: Vec<LikePred>,
    /// `IS [NOT] NULL` conjuncts of the WHERE clause.
    pub where_null: Vec<NullPred>,
    pub group_by: Vec<ColRef>,
    /// `HAVING` conjuncts — *constrained aggregation*, which the paper
    /// defers to future work (§II, §VII); this reproduction implements the
    /// extension (see DESIGN.md for the supported generation subset).
    pub having: Vec<HavingCond>,
}

/// One `HAVING` conjunct: `AGG([DISTINCT] col | *) relop constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingCond {
    pub op: AggOp,
    /// `None` = `COUNT(*)`.
    pub arg: Option<ColRef>,
    pub distinct: bool,
    pub cmp: CompareOp,
    pub value: i64,
}

/// `lhs [NOT] IN (subquery)` — a membership predicate over a (possibly
/// correlated) subquery.
#[derive(Debug, Clone, PartialEq)]
pub struct InPred {
    pub lhs: Expr,
    pub negated: bool,
    pub subquery: Box<Query>,
}

/// `[NOT] EXISTS (subquery)` — an emptiness test on a (possibly
/// correlated) subquery.
#[derive(Debug, Clone, PartialEq)]
pub struct ExistsPred {
    pub negated: bool,
    pub subquery: Box<Query>,
}

/// `lhs [NOT] LIKE 'pattern'` — a string-pattern predicate (`%` matches
/// any run of characters, `_` matches one character).
#[derive(Debug, Clone, PartialEq)]
pub struct LikePred {
    pub lhs: Expr,
    pub negated: bool,
    pub pattern: String,
}

/// `lhs IS [NOT] NULL`.
#[derive(Debug, Clone, PartialEq)]
pub struct NullPred {
    pub lhs: Expr,
    pub negated: bool,
}

impl Query {
    /// All aggregate items in the select list.
    pub fn aggregates(&self) -> impl Iterator<Item = (&AggOp, Option<&ColRef>, bool)> {
        self.select.iter().filter_map(|s| match s {
            SelectItem::Aggregate { op, arg, distinct } => Some((op, arg.as_ref(), *distinct)),
            _ => None,
        })
    }

    pub fn has_aggregates(&self) -> bool {
        self.aggregates().next().is_some()
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A plain column.
    Column(ColRef),
    /// `op([DISTINCT] col)` or `COUNT(*)` (arg = None).
    Aggregate { op: AggOp, arg: Option<ColRef>, distinct: bool },
}

/// Aggregation operators of the paper's mutation space (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggOp {
    Max,
    Min,
    Sum,
    Avg,
    Count,
}

impl AggOp {
    pub const ALL: [AggOp; 5] = [AggOp::Max, AggOp::Min, AggOp::Sum, AggOp::Avg, AggOp::Count];

    pub fn sql_name(self) -> &'static str {
        match self {
            AggOp::Max => "MAX",
            AggOp::Min => "MIN",
            AggOp::Sum => "SUM",
            AggOp::Avg => "AVG",
            AggOp::Count => "COUNT",
        }
    }
}

/// An item of the FROM list: a named relation or an explicit join tree.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `table [AS alias]`
    Table { name: String, alias: Option<String> },
    /// `left <join-kind> right ON cond AND cond ...`
    Join { kind: JoinKind, left: Box<FromItem>, right: Box<FromItem>, on: Vec<Condition> },
}

impl FromItem {
    /// Distinct name this item binds (alias or table name) when it is a
    /// plain table.
    pub fn binding(&self) -> Option<&str> {
        match self {
            FromItem::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            FromItem::Join { .. } => None,
        }
    }

    /// All `(binding, base table)` pairs in this item, left-to-right.
    pub fn bindings(&self) -> Vec<(String, String)> {
        match self {
            FromItem::Table { name, alias } => {
                vec![(alias.clone().unwrap_or_else(|| name.clone()), name.clone())]
            }
            FromItem::Join { left, right, .. } => {
                let mut v = left.bindings();
                v.extend(right.bindings());
                v
            }
        }
    }
}

/// The four join types of the paper's join-type mutation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
}

impl JoinKind {
    pub const ALL: [JoinKind; 4] = [JoinKind::Inner, JoinKind::Left, JoinKind::Right, JoinKind::Full];

    pub fn sql_name(self) -> &'static str {
        match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT OUTER JOIN",
            JoinKind::Right => "RIGHT OUTER JOIN",
            JoinKind::Full => "FULL OUTER JOIN",
        }
    }
}

/// A comparison predicate `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    pub lhs: Expr,
    pub op: CompareOp,
    pub rhs: Expr,
}

/// Comparison operators (the paper's comparison-mutation space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompareOp {
    pub const ALL: [CompareOp; 6] =
        [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt, CompareOp::Le, CompareOp::Gt, CompareOp::Ge];

    pub fn sql_symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    pub fn from_symbol(s: &str) -> Option<CompareOp> {
        Some(match s {
            "=" => CompareOp::Eq,
            "<>" | "!=" => CompareOp::Ne,
            "<" => CompareOp::Lt,
            "<=" => CompareOp::Le,
            ">" => CompareOp::Gt,
            ">=" => CompareOp::Ge,
            _ => return None,
        })
    }
}

/// A scalar expression: a column, a literal, or column ± integer constant
/// (the "simple arithmetic expressions" of assumption A4).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColRef),
    Int(i64),
    Float(f64),
    Str(String),
    /// `expr + k` / `expr - k` folded to column + signed constant.
    ColumnPlus(ColRef, i64),
}

impl Expr {
    pub fn column(&self) -> Option<&ColRef> {
        match self {
            Expr::Column(c) | Expr::ColumnPlus(c, _) => Some(c),
            _ => None,
        }
    }
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColRef {
    pub fn new(table: Option<&str>, column: &str) -> Self {
        ColRef { table: table.map(str::to_string), column: column.to_string() }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Float(x) => write!(f, "{x}"),
            Expr::Str(s) => write!(f, "'{s}'"),
            Expr::ColumnPlus(c, k) => {
                if *k >= 0 {
                    write!(f, "{c} + {k}")
                } else {
                    write!(f, "{c} - {}", -k)
                }
            }
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.sql_symbol(), self.rhs)
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => f.write_str("*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate { op, arg, distinct } => {
                write!(f, "{}(", op.sql_name())?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                match arg {
                    Some(c) => write!(f, "{c}")?,
                    None => f.write_str("*")?,
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Table { name, alias } => match alias {
                Some(a) if a != name => write!(f, "{name} {a}"),
                _ => write!(f, "{name}"),
            },
            FromItem::Join { kind, left, right, on } => {
                let wrap = |x: &FromItem, f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    match x {
                        FromItem::Join { .. } => write!(f, "({x})"),
                        _ => write!(f, "{x}"),
                    }
                };
                wrap(left, f)?;
                write!(f, " {} ", kind.sql_name())?;
                wrap(right, f)?;
                f.write_str(" ON ")?;
                for (i, c) in on.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
        }
        f.write_str(" FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        let has_where = !self.where_clause.is_empty()
            || !self.where_in.is_empty()
            || !self.where_exists.is_empty()
            || !self.where_like.is_empty()
            || !self.where_null.is_empty();
        if has_where {
            f.write_str(" WHERE ")?;
            let mut first = true;
            let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
                if !first {
                    f.write_str(" AND ")?;
                }
                first = false;
                Ok(())
            };
            for c in &self.where_clause {
                sep(f)?;
                write!(f, "{c}")?;
            }
            for p in &self.where_like {
                sep(f)?;
                let not = if p.negated { "NOT " } else { "" };
                write!(f, "{} {not}LIKE '{}'", p.lhs, p.pattern)?;
            }
            for p in &self.where_null {
                sep(f)?;
                let not = if p.negated { "NOT " } else { "" };
                write!(f, "{} IS {not}NULL", p.lhs)?;
            }
            for p in &self.where_in {
                sep(f)?;
                let not = if p.negated { "NOT " } else { "" };
                write!(f, "{} {not}IN ({})", p.lhs, p.subquery)?;
            }
            for p in &self.where_exists {
                sep(f)?;
                let not = if p.negated { "NOT " } else { "" };
                write!(f, "{not}EXISTS ({})", p.subquery)?;
            }
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.having.is_empty() {
            f.write_str(" HAVING ")?;
            for (i, h) in self.having.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                write!(f, "{h}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for HavingCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.op.sql_name())?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        match &self.arg {
            Some(c) => write!(f, "{c}")?,
            None => f.write_str("*")?,
        }
        write!(f, ") {} {}", self.cmp.sql_symbol(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colref_display() {
        assert_eq!(ColRef::new(Some("a"), "x").to_string(), "a.x");
        assert_eq!(ColRef::new(None, "x").to_string(), "x");
    }

    #[test]
    fn condition_display() {
        let c = Condition {
            lhs: Expr::Column(ColRef::new(Some("a"), "x")),
            op: CompareOp::Le,
            rhs: Expr::ColumnPlus(ColRef::new(Some("b"), "y"), -3),
        };
        assert_eq!(c.to_string(), "a.x <= b.y - 3");
    }

    #[test]
    fn compare_op_roundtrip() {
        for op in CompareOp::ALL {
            assert_eq!(CompareOp::from_symbol(op.sql_symbol()), Some(op));
        }
        assert_eq!(CompareOp::from_symbol("!="), Some(CompareOp::Ne));
    }

    #[test]
    fn from_item_bindings() {
        let j = FromItem::Join {
            kind: JoinKind::Left,
            left: Box::new(FromItem::Table { name: "instructor".into(), alias: Some("i".into()) }),
            right: Box::new(FromItem::Table { name: "teaches".into(), alias: None }),
            on: vec![],
        };
        assert_eq!(
            j.bindings(),
            vec![("i".to_string(), "instructor".to_string()), ("teaches".to_string(), "teaches".to_string())]
        );
    }

    #[test]
    fn aggregate_display() {
        let s = SelectItem::Aggregate {
            op: AggOp::Count,
            arg: Some(ColRef::new(None, "x")),
            distinct: true,
        };
        assert_eq!(s.to_string(), "COUNT(DISTINCT x)");
        let star = SelectItem::Aggregate { op: AggOp::Count, arg: None, distinct: false };
        assert_eq!(star.to_string(), "COUNT(*)");
    }
}
