//! Parse errors with source positions.

use std::fmt;

/// A byte-offset range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Span covering both operands.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl ParseError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }

    /// Render the error with a caret line pointing into `source`.
    pub fn render(&self, source: &str) -> String {
        let mut line_start = 0usize;
        let mut line_no = 1usize;
        for (i, c) in source.char_indices() {
            if i >= self.span.start {
                break;
            }
            if c == '\n' {
                line_start = i + 1;
                line_no += 1;
            }
        }
        let line_end = source[line_start..].find('\n').map(|i| line_start + i).unwrap_or(source.len());
        let line = &source[line_start..line_end];
        let col = self.span.start.saturating_sub(line_start);
        let width = (self.span.end.min(line_end)).saturating_sub(self.span.start).max(1);
        format!(
            "parse error at line {line_no}, column {}: {}\n  {line}\n  {}{}",
            col + 1,
            self.message,
            " ".repeat(col),
            "^".repeat(width)
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}..{}: {}", self.span.start, self.span.end, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
    }

    #[test]
    fn render_points_at_offender() {
        let src = "SELECT *\nFROM theres_a_typo HERE";
        let err = ParseError::new("unexpected token", Span::new(27, 31));
        let out = err.render(src);
        assert!(out.contains("line 2"), "{out}");
        assert!(out.contains("^^^^"), "{out}");
    }
}
