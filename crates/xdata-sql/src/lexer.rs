//! SQL lexer.
//!
//! Produces a flat token stream with spans. Keywords are recognized
//! case-insensitively; identifiers are lower-cased (SQL folds unquoted
//! identifiers), string literals use single quotes with `''` escaping.

use crate::error::{ParseError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword or identifier (lower-cased); parser decides which.
    Word(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `=, <>, !=, <, <=, >, >=`
    Op(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Semicolon,
    Eof,
}

/// Token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenize `src` fully.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token { tok: Tok::LParen, span: Span::new(start, i + 1) });
                i += 1;
            }
            ')' => {
                out.push(Token { tok: Tok::RParen, span: Span::new(start, i + 1) });
                i += 1;
            }
            ',' => {
                out.push(Token { tok: Tok::Comma, span: Span::new(start, i + 1) });
                i += 1;
            }
            '.' => {
                out.push(Token { tok: Tok::Dot, span: Span::new(start, i + 1) });
                i += 1;
            }
            '*' => {
                out.push(Token { tok: Tok::Star, span: Span::new(start, i + 1) });
                i += 1;
            }
            '+' => {
                out.push(Token { tok: Tok::Plus, span: Span::new(start, i + 1) });
                i += 1;
            }
            '-' => {
                out.push(Token { tok: Tok::Minus, span: Span::new(start, i + 1) });
                i += 1;
            }
            ';' => {
                out.push(Token { tok: Tok::Semicolon, span: Span::new(start, i + 1) });
                i += 1;
            }
            '=' => {
                out.push(Token { tok: Tok::Op("=".into()), span: Span::new(start, i + 1) });
                i += 1;
            }
            '<' => {
                i += 1;
                let op = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    "<="
                } else if i < bytes.len() && bytes[i] == b'>' {
                    i += 1;
                    "<>"
                } else {
                    "<"
                };
                out.push(Token { tok: Tok::Op(op.into()), span: Span::new(start, i) });
            }
            '>' => {
                i += 1;
                let op = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    ">="
                } else {
                    ">"
                };
                out.push(Token { tok: Tok::Op(op.into()), span: Span::new(start, i) });
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    out.push(Token { tok: Tok::Op("<>".into()), span: Span::new(start, i) });
                } else {
                    return Err(ParseError::new("unexpected `!`", Span::new(start, start + 1)));
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new(
                            "unterminated string literal",
                            Span::new(start, i),
                        ));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                out.push(Token { tok: Tok::Str(s), span: Span::new(start, i) });
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len()
                    && (bytes[end].is_ascii_digit()
                        || (bytes[end] == b'.'
                            && end + 1 < bytes.len()
                            && bytes[end + 1].is_ascii_digit()
                            && !is_float))
                {
                    if bytes[end] == b'.' {
                        is_float = true;
                    }
                    end += 1;
                }
                let text = &src[i..end];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        ParseError::new(format!("bad numeric literal `{text}`"), Span::new(i, end))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("integer literal out of range `{text}`"), Span::new(i, end))
                    })?)
                };
                out.push(Token { tok, span: Span::new(i, end) });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                out.push(Token {
                    tok: Tok::Word(src[i..end].to_ascii_lowercase()),
                    span: Span::new(i, end),
                });
                i = end;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    Span::new(start, start + 1),
                ));
            }
        }
    }
    out.push(Token { tok: Tok::Eof, span: Span::new(src.len(), src.len()) });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn words_are_lowercased() {
        assert_eq!(
            toks("SELECT Foo"),
            vec![Tok::Word("select".into()), Tok::Word("foo".into()), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= <> != < <= > >="),
            vec![
                Tok::Op("=".into()),
                Tok::Op("<>".into()),
                Tok::Op("<>".into()),
                Tok::Op("<".into()),
                Tok::Op("<=".into()),
                Tok::Op(">".into()),
                Tok::Op(">=".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(toks("42 3.5"), vec![Tok::Int(42), Tok::Float(3.5), Tok::Eof]);
    }

    #[test]
    fn string_with_escaped_quote() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn punctuation_and_arith() {
        assert_eq!(
            toks("a.b, (x + 1) - 2 *"),
            vec![
                Tok::Word("a".into()),
                Tok::Dot,
                Tok::Word("b".into()),
                Tok::Comma,
                Tok::LParen,
                Tok::Word("x".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::RParen,
                Tok::Minus,
                Tok::Int(2),
                Tok::Star,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        assert_eq!(toks("a -- comment\n b"), vec![Tok::Word("a".into()), Tok::Word("b".into()), Tok::Eof]);
    }

    #[test]
    fn spans_track_positions() {
        let tokens = lex("ab cd").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(3, 5));
    }
}
