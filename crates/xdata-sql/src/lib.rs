//! # xdata-sql
//!
//! A hand-written lexer and recursive-descent parser for the query class of
//! the X-Data paper (*Generating Test Data for Killing SQL Mutants*, Shah et
//! al., §II): single-block SQL queries with
//!
//! * a `FROM` list mixing plain relations and explicit
//!   `[INNER|LEFT|RIGHT|FULL] [OUTER] JOIN ... ON` trees,
//! * a conjunctive `WHERE` clause of simple comparisons
//!   (`expr relop expr`, assumption A5),
//! * optional aggregation (`MAX, MIN, SUM, AVG, COUNT` and their
//!   `DISTINCT` variants) with `GROUP BY` and no `HAVING`
//!   (unconstrained aggregation, §V-F),
//!
//! plus `CREATE TABLE` DDL with `PRIMARY KEY` / `FOREIGN KEY ... REFERENCES`
//! so whole schemas can be declared in SQL (the paper's assumption A1).
//!
//! The paper used the Apache Derby parser; a dedicated parser for exactly
//! this class keeps the reproduction self-contained (see DESIGN.md).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{
    AggOp, ColRef, CompareOp, Condition, CreateTable, Expr, FromItem, InPred, JoinKind, Query,
    SelectItem, Statement,
};
pub use error::{ParseError, Span};
pub use parser::{parse_query, parse_schema, parse_script, parse_statement};
