//! Recursive-descent parser for queries and DDL.
//!
//! Grammar (the paper's query class, §II):
//!
//! ```text
//! statement   := query | create_table
//! query       := SELECT select_list FROM from_list [WHERE conj] [GROUP BY cols]
//! select_list := '*' | item (',' item)*
//! item        := agg '(' ['DISTINCT'] (col | '*') ')' | col
//! from_list   := from_item (',' from_item)*
//! from_item   := primary (join_kind primary ON conj)*        (left-assoc)
//! primary     := ident ['AS'? ident] | '(' from_item ')'
//! join_kind   := [INNER] JOIN | LEFT|RIGHT|FULL [OUTER] JOIN
//! conj        := cond (AND cond)*
//! cond        := expr relop expr
//!              | expr ['NOT'] IN '(' query ')'          (WHERE only)
//!              | ['NOT'] EXISTS '(' query ')'           (WHERE only)
//!              | expr ['NOT'] LIKE STRING               (WHERE only)
//!              | expr IS ['NOT'] NULL                   (WHERE only)
//! expr        := operand (('+'|'-') INT)*
//! operand     := col | INT | FLOAT | STRING | '-' INT
//! col         := ident ['.' ident]
//! ```

use xdata_catalog::SqlType;

use crate::ast::{
    AggOp, AstForeignKey, ColRef, CompareOp, Condition, CreateTable, ExistsPred, Expr, FromItem,
    HavingCond, InPred, Insert, JoinKind, LikePred, NullPred, Query, SelectItem, Statement,
};
use crate::error::{ParseError, Span};
use crate::lexer::{lex, Tok, Token};

/// Parse a single SELECT query.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    match parse_statement(src)? {
        Statement::Query(q) => Ok(q),
        Statement::CreateTable(_) | Statement::Insert(_) => {
            Err(ParseError::new("expected a SELECT query, found DDL/DML", Span::new(0, 6)))
        }
    }
}

/// Parse one statement (query or CREATE TABLE).
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated sequence of CREATE TABLE statements into a schema.
pub fn parse_schema(src: &str) -> Result<xdata_catalog::Schema, ParseError> {
    let (schema, data) = parse_script(src)?;
    if !data.is_empty() {
        return Err(ParseError::new(
            "INSERT statements not allowed here; use parse_script",
            Span::default(),
        ));
    }
    Ok(schema)
}

/// Parse a full SQL script: `CREATE TABLE` statements building a schema
/// plus `INSERT INTO ... VALUES` statements building a dataset (the §VI-A
/// input database).
pub fn parse_script(
    src: &str,
) -> Result<(xdata_catalog::Schema, xdata_catalog::Dataset), ParseError> {
    let mut p = Parser::new(src)?;
    let mut tables = Vec::new();
    let mut data = xdata_catalog::Dataset::new();
    loop {
        p.eat_semicolons();
        if p.at_eof() {
            break;
        }
        match p.statement()? {
            Statement::CreateTable(t) => tables.push(t),
            Statement::Insert(ins) => {
                for row in ins.rows {
                    data.push(&ins.table, row);
                }
            }
            Statement::Query(_) => {
                return Err(ParseError::new(
                    "expected CREATE TABLE or INSERT in schema script",
                    p.span(),
                ))
            }
        }
    }
    let schema = build_schema(&tables).map_err(|e| ParseError::new(e.to_string(), Span::default()))?;
    Ok((schema, data))
}

/// Turn parsed DDL into a validated catalog schema.
pub fn build_schema(
    tables: &[CreateTable],
) -> Result<xdata_catalog::Schema, xdata_catalog::CatalogError> {
    use xdata_catalog::{Attribute, Relation, Schema};
    let mut schema = Schema::new();
    for t in tables {
        let attrs: Vec<Attribute> = t
            .columns
            .iter()
            .map(|(n, ty, nullable)| {
                let a = Attribute::new(n.clone(), *ty);
                if *nullable {
                    a.nullable()
                } else {
                    a
                }
            })
            .collect();
        let pk: Vec<&str> = t.primary_key.iter().map(String::as_str).collect();
        schema.add_relation(Relation::new(t.name.clone(), attrs, &pk)?)?;
    }
    // Foreign keys second so forward references between tables work.
    for t in tables {
        for fk in &t.foreign_keys {
            let from: Vec<&str> = fk.columns.iter().map(String::as_str).collect();
            let to: Vec<&str> = fk.ref_columns.iter().map(String::as_str).collect();
            schema.add_foreign_key(&t.name, &from, &fk.ref_table, &to)?;
        }
    }
    Ok(schema)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser { toks: lex(src)?, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn eat_semicolons(&mut self) {
        while matches!(self.peek(), Tok::Semicolon) {
            self.advance();
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(ParseError::new(format!("unexpected trailing input `{:?}`", self.peek()), self.span()))
        }
    }

    /// Consume a keyword (already lower-cased by the lexer).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Word(w) if w == kw => {
                self.advance();
                Ok(())
            }
            other => Err(ParseError::new(
                format!("expected `{}`, found `{other:?}`", kw.to_uppercase()),
                self.span(),
            )),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Word(w) if w == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w == kw)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Word(w) => {
                if RESERVED.contains(&w.as_str()) {
                    return Err(ParseError::new(
                        format!("expected identifier, found keyword `{}`", w.to_uppercase()),
                        self.span(),
                    ));
                }
                self.advance();
                Ok(w)
            }
            other => {
                Err(ParseError::new(format!("expected identifier, found `{other:?}`"), self.span()))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_keyword("create") {
            Ok(Statement::CreateTable(self.create_table()?))
        } else if self.peek_keyword("insert") {
            Ok(Statement::Insert(self.insert()?))
        } else {
            Ok(Statement::Query(self.query()?))
        }
    }

    fn insert(&mut self) -> Result<Insert, ParseError> {
        self.keyword("insert")?;
        self.keyword("into")?;
        let table = self.ident()?;
        self.keyword("values")?;
        let mut rows = Vec::new();
        loop {
            match self.advance() {
                Tok::LParen => {}
                other => {
                    return Err(ParseError::new(
                        format!("expected `(` in VALUES, found `{other:?}`"),
                        self.span(),
                    ))
                }
            }
            let mut row = Vec::new();
            loop {
                let v = match self.advance() {
                    Tok::Int(i) => xdata_catalog::Value::Int(i),
                    Tok::Float(x) => xdata_catalog::Value::Double(x),
                    Tok::Str(sv) => xdata_catalog::Value::Str(sv),
                    Tok::Minus => match self.advance() {
                        Tok::Int(i) => xdata_catalog::Value::Int(-i),
                        Tok::Float(x) => xdata_catalog::Value::Double(-x),
                        other => {
                            return Err(ParseError::new(
                                format!("expected number after `-`, found `{other:?}`"),
                                self.span(),
                            ))
                        }
                    },
                    Tok::Word(w) if w == "null" => xdata_catalog::Value::Null,
                    other => {
                        return Err(ParseError::new(
                            format!("expected literal in VALUES, found `{other:?}`"),
                            self.span(),
                        ))
                    }
                };
                row.push(v);
                match self.advance() {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    other => {
                        return Err(ParseError::new(
                            format!("expected `,` or `)` in VALUES row, found `{other:?}`"),
                            self.span(),
                        ))
                    }
                }
            }
            rows.push(row);
            if matches!(self.peek(), Tok::Comma) {
                self.advance();
                continue;
            }
            break;
        }
        Ok(Insert { table, rows })
    }

    // ---- queries -------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("select")?;
        let distinct = self.try_keyword("distinct");
        let select = self.select_list()?;
        self.keyword("from")?;
        let from = self.from_list()?;
        let mut sinks = WhereSinks::default();
        let where_clause = if self.try_keyword("where") {
            self.condition_conj_with_in(Some(&mut sinks))?
        } else {
            Vec::new()
        };
        let group_by = if self.try_keyword("group") {
            self.keyword("by")?;
            let mut cols = vec![self.colref()?];
            while matches!(self.peek(), Tok::Comma) {
                self.advance();
                cols.push(self.colref()?);
            }
            cols
        } else {
            Vec::new()
        };
        let having = if self.try_keyword("having") {
            let mut conds = vec![self.having_cond()?];
            while self.try_keyword("and") {
                conds.push(self.having_cond()?);
            }
            conds
        } else {
            Vec::new()
        };
        Ok(Query {
            distinct,
            select,
            from,
            where_clause,
            where_in: sinks.ins,
            where_exists: sinks.exists,
            where_like: sinks.likes,
            where_null: sinks.nulls,
            group_by,
            having,
        })
    }

    /// `AGG([DISTINCT] col | *) relop INT`.
    fn having_cond(&mut self) -> Result<HavingCond, ParseError> {
        let name = match self.advance() {
            Tok::Word(w) => w,
            other => {
                return Err(ParseError::new(
                    format!("expected aggregate in HAVING, found `{other:?}`"),
                    self.span(),
                ))
            }
        };
        let op = match name.as_str() {
            "max" => AggOp::Max,
            "min" => AggOp::Min,
            "sum" => AggOp::Sum,
            "avg" => AggOp::Avg,
            "count" => AggOp::Count,
            other => {
                return Err(ParseError::new(
                    format!("HAVING supports aggregate comparisons only, found `{other}`"),
                    self.span(),
                ))
            }
        };
        match self.advance() {
            Tok::LParen => {}
            other => {
                return Err(ParseError::new(
                    format!("expected `(` after {} in HAVING, found `{other:?}`", op.sql_name()),
                    self.span(),
                ))
            }
        }
        let distinct = self.try_keyword("distinct");
        let arg = if matches!(self.peek(), Tok::Star) {
            if op != AggOp::Count || distinct {
                return Err(ParseError::new("only COUNT(*) may use `*`", self.span()));
            }
            self.advance();
            None
        } else {
            Some(self.colref()?)
        };
        match self.advance() {
            Tok::RParen => {}
            other => {
                return Err(ParseError::new(
                    format!("expected `)` in HAVING aggregate, found `{other:?}`"),
                    self.span(),
                ))
            }
        }
        let cmp = match self.advance() {
            Tok::Op(sym) => CompareOp::from_symbol(&sym).ok_or_else(|| {
                ParseError::new(format!("unknown comparison `{sym}`"), self.span())
            })?,
            other => {
                return Err(ParseError::new(
                    format!("expected comparison in HAVING, found `{other:?}`"),
                    self.span(),
                ))
            }
        };
        let value = match self.advance() {
            Tok::Int(i) => i,
            Tok::Minus => match self.advance() {
                Tok::Int(i) => -i,
                other => {
                    return Err(ParseError::new(
                        format!("expected integer after `-`, found `{other:?}`"),
                        self.span(),
                    ))
                }
            },
            other => {
                return Err(ParseError::new(
                    format!("HAVING compares against an integer constant, found `{other:?}`"),
                    self.span(),
                ))
            }
        };
        Ok(HavingCond { op, arg, distinct, cmp, value })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), Tok::Comma) {
            self.advance();
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if matches!(self.peek(), Tok::Star) {
            self.advance();
            return Ok(SelectItem::Star);
        }
        if let Tok::Word(w) = self.peek().clone() {
            let agg = match w.as_str() {
                "max" => Some(AggOp::Max),
                "min" => Some(AggOp::Min),
                "sum" => Some(AggOp::Sum),
                "avg" => Some(AggOp::Avg),
                "count" => Some(AggOp::Count),
                _ => None,
            };
            if let Some(op) = agg {
                // Only an aggregate if followed by '('.
                if matches!(self.toks[self.pos + 1].tok, Tok::LParen) {
                    self.advance(); // agg name
                    self.advance(); // (
                    let distinct = self.try_keyword("distinct");
                    let arg = if matches!(self.peek(), Tok::Star) {
                        if op != AggOp::Count {
                            return Err(ParseError::new(
                                format!("`{}(*)` is not valid SQL; only COUNT(*)", op.sql_name()),
                                self.span(),
                            ));
                        }
                        if distinct {
                            return Err(ParseError::new("COUNT(DISTINCT *) is not valid", self.span()));
                        }
                        self.advance();
                        None
                    } else {
                        Some(self.colref()?)
                    };
                    match self.advance() {
                        Tok::RParen => {}
                        other => {
                            return Err(ParseError::new(
                                format!("expected `)` after aggregate, found `{other:?}`"),
                                self.span(),
                            ))
                        }
                    }
                    return Ok(SelectItem::Aggregate { op, arg, distinct });
                }
            }
        }
        Ok(SelectItem::Column(self.colref()?))
    }

    // Parser methods are named after their grammar production; `from_*`
    // here means the FROM clause, not a conversion constructor.
    #[allow(clippy::wrong_self_convention)]
    fn from_list(&mut self) -> Result<Vec<FromItem>, ParseError> {
        let mut items = vec![self.from_item()?];
        while matches!(self.peek(), Tok::Comma) {
            self.advance();
            items.push(self.from_item()?);
        }
        Ok(items)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem, ParseError> {
        let mut left = self.from_primary()?;
        loop {
            let kind = if self.peek_keyword("join") {
                self.advance();
                JoinKind::Inner
            } else if self.peek_keyword("inner") {
                self.advance();
                self.keyword("join")?;
                JoinKind::Inner
            } else if self.peek_keyword("left") {
                self.advance();
                self.try_keyword("outer");
                self.keyword("join")?;
                JoinKind::Left
            } else if self.peek_keyword("right") {
                self.advance();
                self.try_keyword("outer");
                self.keyword("join")?;
                JoinKind::Right
            } else if self.peek_keyword("full") {
                self.advance();
                self.try_keyword("outer");
                self.keyword("join")?;
                JoinKind::Full
            } else {
                break;
            };
            let right = self.from_primary()?;
            self.keyword("on")?;
            let on = self.condition_conj()?;
            left = FromItem::Join { kind, left: Box::new(left), right: Box::new(right), on };
        }
        Ok(left)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_primary(&mut self) -> Result<FromItem, ParseError> {
        if matches!(self.peek(), Tok::LParen) {
            self.advance();
            let inner = self.from_item()?;
            match self.advance() {
                Tok::RParen => Ok(inner),
                other => Err(ParseError::new(
                    format!("expected `)` in FROM, found `{other:?}`"),
                    self.span(),
                )),
            }
        } else {
            let name = self.ident()?;
            // Optional alias: `t a`, `t AS a`.
            let alias = if self.try_keyword("as")
                || matches!(self.peek(), Tok::Word(w) if !RESERVED.contains(&w.as_str()))
            {
                Some(self.ident()?)
            } else {
                None
            };
            Ok(FromItem::Table { name, alias })
        }
    }

    fn condition_conj(&mut self) -> Result<Vec<Condition>, ParseError> {
        self.condition_conj_with_in(None)
    }

    /// Parse a conjunction; `[NOT] IN (SELECT ...)`, `[NOT] EXISTS`,
    /// `[NOT] LIKE` and `IS [NOT] NULL` conjuncts are only legal when a
    /// `sinks` target is supplied (i.e. in WHERE, not in ON).
    fn condition_conj_with_in(
        &mut self,
        mut sinks: Option<&mut WhereSinks>,
    ) -> Result<Vec<Condition>, ParseError> {
        // The paper writes `ON (i.id = t.id)`; allow parentheses around the
        // whole conjunction (expressions themselves never start with `(`).
        if matches!(self.peek(), Tok::LParen) {
            self.advance();
            let conds = self.condition_conj_with_in(sinks.as_deref_mut())?;
            match self.advance() {
                Tok::RParen => return Ok(conds),
                other => {
                    return Err(ParseError::new(
                        format!("expected `)` after condition, found `{other:?}`"),
                        self.span(),
                    ))
                }
            }
        }
        let mut conds = Vec::new();
        loop {
            if let Some(c) = self.condition_or_in(sinks.as_deref_mut())? { conds.push(c) }
            if !self.try_keyword("and") {
                break;
            }
        }
        Ok(conds)
    }

    /// Parse a parenthesized subquery: `( SELECT ... )`.
    fn subquery(&mut self, after: &str) -> Result<Query, ParseError> {
        match self.advance() {
            Tok::LParen => {}
            other => {
                return Err(ParseError::new(
                    format!("expected `(` after {after}, found `{other:?}`"),
                    self.span(),
                ))
            }
        }
        let sub = self.query()?;
        match self.advance() {
            Tok::RParen => {}
            other => {
                return Err(ParseError::new(
                    format!("expected `)` after {after} subquery, found `{other:?}`"),
                    self.span(),
                ))
            }
        }
        Ok(sub)
    }

    /// One conjunct: a plain comparison, or one of the WHERE-only forms
    /// (`[NOT] IN (subquery)`, `[NOT] EXISTS (subquery)`, `[NOT] LIKE`,
    /// `IS [NOT] NULL`) pushed to its sink (returning `None`).
    fn condition_or_in(
        &mut self,
        sinks: Option<&mut WhereSinks>,
    ) -> Result<Option<Condition>, ParseError> {
        let where_only = |this: &Parser, what: &str| {
            ParseError::new(
                format!("{what} is only supported in the WHERE clause"),
                this.span(),
            )
        };
        // Leading `[NOT] EXISTS (subquery)`: nothing else in the grammar
        // starts with NOT or EXISTS.
        if self.peek_keyword("exists") || self.peek_keyword("not") {
            let negated = self.try_keyword("not");
            self.keyword("exists")?;
            let sub = self.subquery("EXISTS")?;
            return match sinks {
                Some(s) => {
                    s.exists.push(ExistsPred { negated, subquery: Box::new(sub) });
                    Ok(None)
                }
                None => Err(where_only(self, "EXISTS (SELECT ...)")),
            };
        }
        let lhs = self.expr()?;
        // `IS [NOT] NULL`.
        if self.peek_keyword("is") {
            self.advance();
            let negated = self.try_keyword("not");
            self.keyword("null")?;
            return match sinks {
                Some(s) => {
                    s.nulls.push(NullPred { lhs, negated });
                    Ok(None)
                }
                None => Err(where_only(self, "IS [NOT] NULL")),
            };
        }
        // `NOT` after an expression must introduce `NOT IN` or `NOT LIKE`.
        let negated = self.try_keyword("not");
        if self.peek_keyword("in") {
            self.advance();
            let sub = self.subquery("IN")?;
            return match sinks {
                Some(s) => {
                    s.ins.push(InPred { lhs, negated, subquery: Box::new(sub) });
                    Ok(None)
                }
                None => Err(where_only(self, "IN (SELECT ...)")),
            };
        }
        if self.peek_keyword("like") {
            self.advance();
            let pattern = match self.advance() {
                Tok::Str(s) => s,
                other => {
                    return Err(ParseError::new(
                        format!("expected string pattern after LIKE, found `{other:?}`"),
                        self.span(),
                    ))
                }
            };
            return match sinks {
                Some(s) => {
                    s.likes.push(LikePred { lhs, negated, pattern });
                    Ok(None)
                }
                None => Err(where_only(self, "LIKE")),
            };
        }
        if negated {
            return Err(ParseError::new(
                format!("expected IN or LIKE after NOT, found `{:?}`", self.peek()),
                self.span(),
            ));
        }
        Ok(Some(self.condition_tail(lhs)?))
    }

    fn condition_tail(&mut self, lhs: Expr) -> Result<Condition, ParseError> {
        let op = match self.advance() {
            Tok::Op(s) => CompareOp::from_symbol(&s).ok_or_else(|| {
                ParseError::new(format!("unknown comparison operator `{s}`"), self.span())
            })?,
            other => {
                return Err(ParseError::new(
                    format!("expected comparison operator, found `{other:?}`"),
                    self.span(),
                ))
            }
        };
        let rhs = self.expr()?;
        Ok(Condition { lhs, op, rhs })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.operand()?;
        loop {
            let sign = match self.peek() {
                Tok::Plus => 1i64,
                Tok::Minus => -1i64,
                _ => break,
            };
            self.advance();
            let k = match self.advance() {
                Tok::Int(i) => i,
                other => {
                    return Err(ParseError::new(
                        format!(
                            "only column ± integer-constant arithmetic is supported \
                             (assumption A4), found `{other:?}`"
                        ),
                        self.span(),
                    ))
                }
            };
            e = match e {
                Expr::Column(c) => Expr::ColumnPlus(c, sign * k),
                Expr::ColumnPlus(c, k0) => Expr::ColumnPlus(c, k0 + sign * k),
                Expr::Int(i) => Expr::Int(i + sign * k),
                other => {
                    return Err(ParseError::new(
                        format!("cannot apply arithmetic to `{other}`"),
                        self.span(),
                    ))
                }
            };
        }
        Ok(e)
    }

    fn operand(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.advance();
                Ok(Expr::Int(i))
            }
            Tok::Minus => {
                self.advance();
                match self.advance() {
                    Tok::Int(i) => Ok(Expr::Int(-i)),
                    Tok::Float(x) => Ok(Expr::Float(-x)),
                    other => Err(ParseError::new(
                        format!("expected number after `-`, found `{other:?}`"),
                        self.span(),
                    )),
                }
            }
            Tok::Float(x) => {
                self.advance();
                Ok(Expr::Float(x))
            }
            Tok::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            Tok::Word(_) => Ok(Expr::Column(self.colref()?)),
            other => {
                Err(ParseError::new(format!("expected expression, found `{other:?}`"), self.span()))
            }
        }
    }

    fn colref(&mut self) -> Result<ColRef, ParseError> {
        let first = self.ident()?;
        if matches!(self.peek(), Tok::Dot) {
            self.advance();
            let col = self.ident()?;
            Ok(ColRef { table: Some(first), column: col })
        } else {
            Ok(ColRef { table: None, column: first })
        }
    }

    // ---- DDL -----------------------------------------------------------

    fn create_table(&mut self) -> Result<CreateTable, ParseError> {
        self.keyword("create")?;
        self.keyword("table")?;
        let name = self.ident()?;
        match self.advance() {
            Tok::LParen => {}
            other => {
                return Err(ParseError::new(
                    format!("expected `(` after table name, found `{other:?}`"),
                    self.span(),
                ))
            }
        }
        let mut columns = Vec::new();
        // Columns the user explicitly declared `NULL` — these stay nullable
        // even as foreign-key columns (§V-H's relaxation of A2).
        let mut explicit_null = Vec::new();
        let mut primary_key = Vec::new();
        let mut foreign_keys = Vec::new();
        loop {
            if self.peek_keyword("primary") {
                self.advance();
                self.keyword("key")?;
                primary_key = self.paren_ident_list()?;
            } else if self.peek_keyword("foreign") {
                self.advance();
                self.keyword("key")?;
                let columns = self.paren_ident_list()?;
                self.keyword("references")?;
                let ref_table = self.ident()?;
                let ref_columns = self.paren_ident_list()?;
                foreign_keys.push(AstForeignKey { columns, ref_table, ref_columns });
            } else {
                let col = self.ident()?;
                let ty = self.sql_type()?;
                let mut nullable = true;
                if self.peek_keyword("not") {
                    self.advance();
                    self.keyword("null")?;
                    nullable = false;
                } else if self.peek_keyword("null") {
                    self.advance();
                    explicit_null.push(col.clone());
                }
                if self.try_keyword("primary") {
                    self.keyword("key")?;
                    primary_key = vec![col.clone()];
                    nullable = false;
                }
                columns.push((col, ty, nullable));
            }
            match self.advance() {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => {
                    return Err(ParseError::new(
                        format!("expected `,` or `)` in CREATE TABLE, found `{other:?}`"),
                        self.span(),
                    ))
                }
            }
        }
        // Primary-key columns are always non-nullable; foreign-key columns
        // default to non-nullable (assumption A2) unless the user wrote an
        // explicit `NULL`, which opts into §V-H's relaxation.
        for (col, _, nullable) in &mut columns {
            let fk_default_non_null = foreign_keys
                .iter()
                .any(|fk| fk.columns.contains(col))
                && !explicit_null.contains(col);
            if primary_key.contains(col) || fk_default_non_null {
                *nullable = false;
            }
        }
        Ok(CreateTable { name, columns, primary_key, foreign_keys })
    }

    fn paren_ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        match self.advance() {
            Tok::LParen => {}
            other => {
                return Err(ParseError::new(format!("expected `(`, found `{other:?}`"), self.span()))
            }
        }
        let mut out = vec![self.ident()?];
        loop {
            match self.advance() {
                Tok::Comma => out.push(self.ident()?),
                Tok::RParen => break,
                other => {
                    return Err(ParseError::new(
                        format!("expected `,` or `)`, found `{other:?}`"),
                        self.span(),
                    ))
                }
            }
        }
        Ok(out)
    }

    fn sql_type(&mut self) -> Result<SqlType, ParseError> {
        let w = self.ident()?;
        let ty = match w.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "date" => SqlType::Int,
            "double" | "float" | "real" | "numeric" | "decimal" => SqlType::Double,
            "varchar" | "char" | "text" | "string" => SqlType::Varchar,
            other => {
                return Err(ParseError::new(format!("unknown SQL type `{other}`"), self.span()))
            }
        };
        // Optional length like VARCHAR(20) / NUMERIC(8,2).
        if matches!(self.peek(), Tok::LParen) {
            self.advance();
            loop {
                match self.advance() {
                    Tok::Int(_) | Tok::Comma => continue,
                    Tok::RParen => break,
                    other => {
                        return Err(ParseError::new(
                            format!("bad type parameter `{other:?}`"),
                            self.span(),
                        ))
                    }
                }
            }
        }
        Ok(ty)
    }
}

/// Collection points for the WHERE-only predicate forms that live outside
/// the plain `Condition` conjunction: `[NOT] IN (subquery)`,
/// `[NOT] EXISTS (subquery)`, `[NOT] LIKE` and `IS [NOT] NULL`.
#[derive(Default)]
struct WhereSinks {
    ins: Vec<InPred>,
    exists: Vec<ExistsPred>,
    likes: Vec<LikePred>,
    nulls: Vec<NullPred>,
}

/// Words that cannot be identifiers (would make the grammar ambiguous).
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "join", "inner", "left", "right", "full", "outer",
    "on", "and", "as", "create", "table", "primary", "foreign", "key", "references", "not",
    "null", "distinct", "having", "or", "order", "union", "in", "exists", "insert", "into", "values",
    "like", "is",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intro_query_parses() {
        let q = parse_query("SELECT * FROM instructor i, teaches t WHERE i.id = t.id").unwrap();
        assert_eq!(q.select, vec![SelectItem::Star]);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.where_clause.len(), 1);
        assert_eq!(q.where_clause[0].to_string(), "i.id = t.id");
    }

    #[test]
    fn paper_intro_mutant_parses() {
        // Verbatim syntax from the paper's introduction.
        for src in [
            "SELECT * FROM instructor i LEFT OUTER JOIN teaches t ON (i.id = t.id)",
            "SELECT * FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id",
        ] {
            let q = parse_query(src).unwrap();
            match &q.from[0] {
                FromItem::Join { kind, on, .. } => {
                    assert_eq!(*kind, JoinKind::Left);
                    assert_eq!(on.len(), 1);
                }
                x => panic!("unexpected {x:?}"),
            }
        }
    }

    #[test]
    fn join_chain_left_associates() {
        let q = parse_query(
            "SELECT a.x FROM a JOIN b ON a.x = b.x RIGHT JOIN c ON b.x = c.x",
        )
        .unwrap();
        match &q.from[0] {
            FromItem::Join { kind, left, .. } => {
                assert_eq!(*kind, JoinKind::Right);
                assert!(matches!(**left, FromItem::Join { kind: JoinKind::Inner, .. }));
            }
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn parenthesized_join_tree() {
        let q = parse_query(
            "SELECT * FROM a FULL OUTER JOIN (b JOIN c ON b.x = c.x) ON a.x = b.x",
        )
        .unwrap();
        match &q.from[0] {
            FromItem::Join { kind, right, .. } => {
                assert_eq!(*kind, JoinKind::Full);
                assert!(matches!(**right, FromItem::Join { .. }));
            }
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse_query(
            "SELECT dept, COUNT(DISTINCT id), SUM(salary), COUNT(*) FROM instructor GROUP BY dept",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        let aggs: Vec<_> = q.aggregates().collect();
        assert_eq!(aggs.len(), 3);
        assert_eq!(aggs[0].0, &AggOp::Count);
        assert!(aggs[0].2); // distinct
        assert!(aggs[2].1.is_none()); // COUNT(*)
    }

    #[test]
    fn arithmetic_folds_to_column_plus() {
        let q = parse_query("SELECT * FROM b, c WHERE b.x = c.x + 10 - 3").unwrap();
        assert_eq!(
            q.where_clause[0].rhs,
            Expr::ColumnPlus(ColRef::new(Some("c"), "x"), 7)
        );
    }

    #[test]
    fn string_and_comparison_ops() {
        let q = parse_query("SELECT * FROM instructor WHERE dept = 'CS' AND salary >= 50000")
            .unwrap();
        assert_eq!(q.where_clause.len(), 2);
        assert_eq!(q.where_clause[0].rhs, Expr::Str("CS".into()));
        assert_eq!(q.where_clause[1].op, CompareOp::Ge);
    }

    #[test]
    fn negative_literal() {
        let q = parse_query("SELECT * FROM r WHERE x > -5").unwrap();
        assert_eq!(q.where_clause[0].rhs, Expr::Int(-5));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT * FROM r WHERE x = 1 BANANA").is_err());
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse_query("SELECT *").is_err());
    }

    #[test]
    fn general_arithmetic_rejected_with_assumption_note() {
        let e = parse_query("SELECT * FROM r, s WHERE r.x = s.x + s.y").unwrap_err();
        assert!(e.message.contains("A4"), "{e}");
    }

    #[test]
    fn create_table_with_constraints() {
        let stmt = parse_statement(
            "CREATE TABLE teaches (
                id INT NOT NULL,
                course_id INT,
                sec_id INT,
                year INT,
                PRIMARY KEY (id, course_id, sec_id, year),
                FOREIGN KEY (id) REFERENCES instructor (id),
                FOREIGN KEY (course_id) REFERENCES course (course_id)
            );",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(t) => {
                assert_eq!(t.name, "teaches");
                assert_eq!(t.columns.len(), 4);
                assert_eq!(t.primary_key.len(), 4);
                assert_eq!(t.foreign_keys.len(), 2);
                // FK columns forced non-nullable (A2).
                assert!(t.columns.iter().all(|(_, _, nullable)| !nullable));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn inline_primary_key() {
        let stmt = parse_statement("CREATE TABLE d (id INT PRIMARY KEY, name VARCHAR(20))").unwrap();
        match stmt {
            Statement::CreateTable(t) => {
                assert_eq!(t.primary_key, vec!["id".to_string()]);
                assert!(t.columns[1].2); // name nullable
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parse_schema_builds_catalog() {
        let schema = parse_schema(
            "CREATE TABLE instructor (id INT PRIMARY KEY, dept VARCHAR(10));
             CREATE TABLE teaches (id INT, cid INT, PRIMARY KEY (id, cid),
                 FOREIGN KEY (id) REFERENCES instructor (id));",
        )
        .unwrap();
        assert!(schema.relation("teaches").is_some());
        assert_eq!(schema.foreign_keys().len(), 1);
    }

    #[test]
    fn schema_rejects_bad_fk_target() {
        let r = parse_schema(
            "CREATE TABLE a (x INT PRIMARY KEY);
             CREATE TABLE b (x INT, FOREIGN KEY (x) REFERENCES a (nope));",
        );
        assert!(r.is_err());
    }

    #[test]
    fn display_roundtrip_reparses() {
        let srcs = [
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
            "SELECT a.x FROM a LEFT OUTER JOIN b ON a.x = b.x WHERE a.y > 3",
            "SELECT dept, COUNT(*) FROM instructor GROUP BY dept",
            "SELECT * FROM a JOIN b ON a.x = b.x FULL OUTER JOIN c ON b.x = c.x",
        ];
        for s in srcs {
            let q1 = parse_query(s).unwrap();
            let q2 = parse_query(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "roundtrip failed for {s}: {q1}");
        }
    }

    #[test]
    fn reserved_word_as_identifier_rejected() {
        assert!(parse_query("SELECT * FROM select").is_err());
    }

    #[test]
    fn select_distinct_parses() {
        let q = parse_query("SELECT DISTINCT dept FROM instructor").unwrap();
        assert!(q.distinct);
        let q2 = parse_query("SELECT dept FROM instructor").unwrap();
        assert!(!q2.distinct);
        // Round-trips through Display.
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn having_parses() {
        let q = parse_query(
            "SELECT dept, COUNT(*) FROM instructor GROUP BY dept              HAVING COUNT(*) > 2 AND MIN(salary) >= 10",
        )
        .unwrap();
        assert_eq!(q.having.len(), 2);
        assert_eq!(q.having[0].op, AggOp::Count);
        assert!(q.having[0].arg.is_none());
        assert_eq!(q.having[0].cmp, CompareOp::Gt);
        assert_eq!(q.having[0].value, 2);
        assert_eq!(q.having[1].op, AggOp::Min);
        assert_eq!(q.having[1].value, 10);
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn having_rejects_non_aggregate() {
        assert!(parse_query(
            "SELECT dept, COUNT(*) FROM instructor GROUP BY dept HAVING salary > 2"
        )
        .is_err());
        assert!(parse_query(
            "SELECT dept, COUNT(*) FROM instructor GROUP BY dept HAVING COUNT(*) > dept"
        )
        .is_err());
    }

    #[test]
    fn having_distinct_and_negative_constant() {
        let q = parse_query(
            "SELECT dept, COUNT(*) FROM instructor GROUP BY dept              HAVING SUM(DISTINCT salary) <= -5",
        )
        .unwrap();
        assert!(q.having[0].distinct);
        assert_eq!(q.having[0].value, -5);
    }

    #[test]
    fn insert_statement_parses() {
        let stmt = parse_statement(
            "INSERT INTO instructor VALUES (1, 'Wu', 7, 60000), (2, NULL, -3, 3.5)",
        )
        .unwrap();
        match stmt {
            Statement::Insert(ins) => {
                assert_eq!(ins.table, "instructor");
                assert_eq!(ins.rows.len(), 2);
                assert_eq!(ins.rows[0][1], xdata_catalog::Value::Str("Wu".into()));
                assert_eq!(ins.rows[1][1], xdata_catalog::Value::Null);
                assert_eq!(ins.rows[1][2], xdata_catalog::Value::Int(-3));
                assert_eq!(ins.rows[1][3], xdata_catalog::Value::Double(3.5));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parse_script_builds_schema_and_data() {
        let (schema, data) = crate::parser::parse_script(
            "CREATE TABLE r (x INT PRIMARY KEY, name VARCHAR(10));
             INSERT INTO r VALUES (1, 'a');
             INSERT INTO r VALUES (2, 'b'), (3, 'c');",
        )
        .unwrap();
        assert!(schema.relation("r").is_some());
        assert_eq!(data.relation("r").unwrap().len(), 3);
        assert!(data.integrity_violations(&schema).is_empty());
    }

    #[test]
    fn parse_schema_rejects_inserts() {
        assert!(parse_schema(
            "CREATE TABLE r (x INT PRIMARY KEY); INSERT INTO r VALUES (1);"
        )
        .is_err());
    }

    #[test]
    fn alias_forms() {
        let q = parse_query("SELECT * FROM instructor AS i, teaches t").unwrap();
        assert_eq!(q.from[0].binding(), Some("i"));
        assert_eq!(q.from[1].binding(), Some("t"));
    }

    #[test]
    fn in_and_not_in_subqueries_parse() {
        let q = parse_query(
            "SELECT name FROM instructor WHERE id IN (SELECT s_id FROM advisor)",
        )
        .unwrap();
        assert_eq!(q.where_in.len(), 1);
        assert!(!q.where_in[0].negated);

        let q = parse_query(
            "SELECT name FROM instructor WHERE id NOT IN (SELECT s_id FROM advisor) \
             AND salary > 10",
        )
        .unwrap();
        assert_eq!(q.where_in.len(), 1);
        assert!(q.where_in[0].negated);
        assert_eq!(q.where_clause.len(), 1);
        assert!(q.to_string().contains("NOT IN ("), "{q}");
    }

    #[test]
    fn exists_and_not_exists_parse() {
        let q = parse_query(
            "SELECT i.name FROM instructor i WHERE EXISTS \
             (SELECT s_id FROM advisor a WHERE a.i_id = i.id)",
        )
        .unwrap();
        assert_eq!(q.where_exists.len(), 1);
        assert!(!q.where_exists[0].negated);

        let q = parse_query(
            "SELECT i.name FROM instructor i WHERE i.salary > 0 AND NOT EXISTS \
             (SELECT s_id FROM advisor a WHERE a.i_id = i.id)",
        )
        .unwrap();
        assert_eq!(q.where_exists.len(), 1);
        assert!(q.where_exists[0].negated);
        assert!(q.to_string().contains("NOT EXISTS ("), "{q}");
    }

    #[test]
    fn like_and_not_like_parse() {
        let q = parse_query("SELECT name FROM instructor WHERE name LIKE 'W%'").unwrap();
        assert_eq!(q.where_like.len(), 1);
        assert_eq!(q.where_like[0].pattern, "W%");
        assert!(!q.where_like[0].negated);

        let q =
            parse_query("SELECT name FROM instructor WHERE name NOT LIKE '%u' AND salary > 1")
                .unwrap();
        assert!(q.where_like[0].negated);
        assert!(q.to_string().contains("NOT LIKE '%u'"), "{q}");
        // The pattern must be a string literal.
        assert!(parse_query("SELECT name FROM instructor WHERE name LIKE 5").is_err());
    }

    #[test]
    fn is_null_and_is_not_null_parse() {
        let q = parse_query("SELECT * FROM teaches WHERE id IS NULL").unwrap();
        assert_eq!(q.where_null.len(), 1);
        assert!(!q.where_null[0].negated);

        let q = parse_query("SELECT * FROM teaches WHERE id IS NOT NULL").unwrap();
        assert!(q.where_null[0].negated);
        assert!(q.to_string().contains("IS NOT NULL"), "{q}");
    }

    #[test]
    fn where_only_forms_rejected_in_on() {
        for src in [
            "SELECT * FROM a JOIN b ON a.x IN (SELECT x FROM c)",
            "SELECT * FROM a JOIN b ON EXISTS (SELECT x FROM c)",
            "SELECT * FROM a JOIN b ON a.x LIKE 'y%'",
            "SELECT * FROM a JOIN b ON a.x IS NULL",
        ] {
            assert!(parse_query(src).is_err(), "{src}");
        }
    }

    #[test]
    fn dangling_not_rejected() {
        assert!(parse_query("SELECT * FROM a WHERE x NOT = 3").is_err());
        assert!(parse_query("SELECT * FROM a WHERE NOT x = 3").is_err());
    }
}
