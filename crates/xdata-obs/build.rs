//! Capture build provenance at compile time so every artifact the
//! pipeline writes (metrics reports, trace files, bench JSONs) can say
//! exactly which source revision and toolchain produced it. Both values
//! degrade to `"unknown"` rather than failing the build: the crate must
//! compile from a source tarball with no `.git` and under a toolchain
//! that hides `rustc` from the environment.

use std::process::Command;

fn capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    if line.is_empty() {
        None
    } else {
        Some(line.to_string())
    }
}

fn main() {
    let sha = capture("git", &["rev-parse", "--short=12", "HEAD"])
        .unwrap_or_else(|| "unknown".to_string());
    // A dirty tree is marked so a bench number can never silently claim to
    // come from a clean commit.
    let dirty = capture("git", &["status", "--porcelain"]).map(|s| !s.is_empty());
    let sha = match dirty {
        Some(true) => format!("{sha}-dirty"),
        _ => sha,
    };
    println!("cargo:rustc-env=XDATA_GIT_SHA={sha}");

    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version =
        capture(&rustc, &["--version"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=XDATA_RUSTC_VERSION={version}");

    // Re-capture when the checked-out commit moves; a stale sha on pure
    // source edits is acceptable (the -dirty marker covers those).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
