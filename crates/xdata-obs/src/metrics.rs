//! Metric data structures and the stable-JSON report writer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Power-of-two bucketed histogram: value `v` lands in bucket
/// `floor(log2(v)) + 1` (bucket 0 holds zeros), so bucket `b > 0` covers
/// `[2^(b-1), 2^b)`. 65 buckets cover the full `u64` range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    buckets: BTreeMap<u8, u64>,
}

impl Histogram {
    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> u8 {
        (64 - value.leading_zeros()) as u8
    }

    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
    }

    /// Count in bucket `b` (0 if empty).
    pub fn bucket(&self, b: u8) -> u64 {
        self.buckets.get(&b).copied().unwrap_or(0)
    }

    /// Non-empty `(bucket, count)` pairs in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u8, u64)> + '_ {
        self.buckets.iter().map(|(b, c)| (*b, *c))
    }
}

/// Aggregate of every span entered under one path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Times the span was entered — deterministic (plan-shaped).
    pub count: u64,
    /// Total / fastest / slowest wall-clock duration in nanoseconds.
    /// Timing-only: excluded from the deterministic report section.
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanAgg {
    pub(crate) fn merge_one(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
    }
}

/// Everything one recorded run produced. Obtained from
/// [`crate::take_report`]; serialize with [`MetricsReport::to_json`].
///
/// ## JSON schema (version 1)
///
/// ```json
/// {
///   "schema_version": 1,
///   "counters":   { "<name>": <u64>, ... },
///   "histograms": { "<name>": { "count": <u64>, "sum": <u64>,
///                               "buckets": [[<bucket>, <count>], ...] }, ... },
///   "spans":      { "<path>": { "count": <u64> }, ... },
///   "timings_ns": { "<path>": { "total": <u64>, "min": <u64>, "max": <u64> }, ... }
/// }
/// ```
///
/// All maps are key-sorted and `timings_ns` — the only section whose values
/// vary run-to-run — is last, so [`crate::strip_timings`] reduces the
/// document to its deterministic part.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    pub counters: BTreeMap<&'static str, u64>,
    pub histograms: BTreeMap<&'static str, Histogram>,
    pub spans: BTreeMap<String, SpanAgg>,
}

impl MetricsReport {
    /// Value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render the full report, timings included.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// Render only the deterministic part (no `timings_ns` section) —
    /// byte-identical across thread counts for the same workload.
    pub fn to_json_stripped(&self) -> String {
        self.render(false)
    }

    fn render(&self, timings: bool) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema_version\": 1,\n");
        s.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            sep(&mut s, &mut first);
            let _ = write!(s, "    \"{k}\": {v}");
        }
        close(&mut s, first);
        s.push_str(",\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            sep(&mut s, &mut first);
            let buckets: Vec<String> =
                h.buckets().map(|(b, c)| format!("[{b}, {c}]")).collect();
            let _ = write!(
                s,
                "    \"{k}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                h.count,
                h.sum,
                buckets.join(", ")
            );
        }
        close(&mut s, first);
        s.push_str(",\n  \"spans\": {");
        first = true;
        for (k, a) in &self.spans {
            sep(&mut s, &mut first);
            let _ = write!(s, "    \"{k}\": {{\"count\": {}}}", a.count);
        }
        close(&mut s, first);
        if timings {
            s.push_str(",\n  \"timings_ns\": {");
            first = true;
            for (k, a) in &self.spans {
                sep(&mut s, &mut first);
                let _ = write!(
                    s,
                    "    \"{k}\": {{\"total\": {}, \"min\": {}, \"max\": {}}}",
                    a.total_ns, a.min_ns, a.max_ns
                );
            }
            close(&mut s, first);
        }
        s.push_str("\n}\n");
        s
    }
}

fn sep(s: &mut String, first: &mut bool) {
    s.push_str(if *first { "\n" } else { ",\n" });
    *first = false;
}

fn close(s: &mut String, empty: bool) {
    s.push_str(if empty { "}" } else { "\n  }" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn span_agg_tracks_min_max() {
        let mut a = SpanAgg::default();
        a.merge_one(10);
        a.merge_one(3);
        a.merge_one(20);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 33);
        assert_eq!(a.min_ns, 3);
        assert_eq!(a.max_ns, 20);
    }

    #[test]
    fn empty_report_renders_valid_shape() {
        let r = MetricsReport::default();
        let j = r.to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"timings_ns\": {}"));
        assert_eq!(crate::strip_timings(&j), r.to_json_stripped());
    }
}
