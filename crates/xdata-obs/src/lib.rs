//! # xdata-obs
//!
//! A dependency-free, thread-safe observability layer for the X-Data
//! pipeline, with two complementary views of a run:
//!
//! * **Aggregate metrics** — hierarchical **spans** (monotonic wall-clock
//!   timing per pipeline phase), **counters** and **log2-bucket
//!   histograms**, collected into a [`MetricsReport`] that serializes to
//!   stable, sorted JSON.
//! * **Event timeline** — a per-thread **journal** of span begin/end
//!   pairs, instant events, counter deltas and cross-thread flow markers,
//!   drained into a [`TraceLog`] that exports to Chrome trace-event JSON
//!   (Perfetto / `chrome://tracing`) and folded stacks (flamegraphs), and
//!   feeds the offline `xdata trace` analyses.
//!
//! ## Global no-op recorder
//!
//! Instrumentation sites call [`counter`], [`observe`], [`span`],
//! [`instant`] and [`flow`] unconditionally. All sinks share one atomic
//! state word with a bit per sink (metrics collection, stderr span lines,
//! journal); when every sink is off (the default) each call is a single
//! relaxed atomic load and an early return — the uninstrumented hot path
//! stays at effectively zero overhead, which is what lets the solver and
//! the parallel kill loop carry permanent instrumentation. [`install`]
//! switches metrics collection on and [`take_report`] switches it off;
//! [`install_trace`] / [`take_trace`] do the same for the journal.
//!
//! ## Determinism contract
//!
//! The pipeline's output is byte-identical across `--jobs 1/2/4/8`, and
//! both views honour the same rule. For the metrics report every
//! **non-timing** field — counter values, histogram buckets, span
//! *counts*, the key sets — is a pure function of the workload,
//! independent of thread count and scheduling, because
//!
//! * counters and histograms are additive (merge order cannot matter), and
//!   every increment is itself deterministic per solve target / mutant;
//! * spans are aggregated **by path**, and the *set* of spans entered (one
//!   per plan item, one per mutant, one per phase) is fixed by the plan,
//!   not by the schedule.
//!
//! Only the `timings_ns` section varies run-to-run; it is emitted as the
//! final top-level JSON object so [`strip_timings`] can cut it off and the
//! remainder can be compared byte-for-byte.
//!
//! For the trace, the timed export necessarily varies run-to-run, but the
//! timing-stripped **structure** ([`TraceLog::to_structure`]: event kinds,
//! names, span labels, nesting, counts) is byte-identical across `--jobs`
//! — see that method for the two scheduling-domain exclusions that make
//! this hold.
//!
//! ## Span hierarchy and per-thread buffers
//!
//! Span paths are explicit `/`-separated static strings
//! (`"generate/solve"` is a child of `"generate"`), so parent links survive
//! crossing the `xdata-par` thread pool — a worker thread opening
//! `generate/solve` needs no thread-local context from the coordinating
//! thread. Finished spans accumulate in a per-thread buffer and merge into
//! the global aggregate when the thread's outermost span closes, keeping
//! lock traffic at one acquisition per top-level span rather than one per
//! span. The journal and the stderr trace lines follow the same policy:
//! buffer per thread, flush on outermost-span close.
//!
//! With stderr tracing enabled ([`set_trace`]) every span close prints a
//! `[xdata-trace tN]` line (thread ordinal, path, label, duration). Lines
//! from one thread are flushed as a single write when its outermost span
//! closes, so lines never interleave mid-record across threads; block
//! order across threads still follows the schedule — it is a debugging
//! aid, not an artifact.

mod journal;
mod metrics;
mod names;
mod span;
mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

pub use metrics::{Histogram, MetricsReport, SpanAgg};
pub use names::{preseed, ALL_COUNTERS, ALL_HISTOGRAMS, ALL_INSTANTS, FLOW_NAMES, PHASE_SPANS};
pub use span::{span, span_with, SpanGuard};
pub use trace::{
    build_meta, build_meta_json, parse_chrome_trace, parse_json, validate_chrome_trace,
    CriticalSegment, FlowPhase, Json, SpanInstance, TraceAnalysis, TraceEvent, TraceEventKind,
    TraceLog, TraceSummary,
};

/// Metrics collection is on ([`install`] .. [`take_report`]).
const METRICS: u32 = 1 << 0;
/// Span closes print `[xdata-trace tN]` lines to stderr ([`set_trace`]).
const STDERR: u32 = 1 << 1;
/// The event journal is on ([`install_trace`] .. [`take_trace`]).
const JOURNAL: u32 = 1 << 2;

/// One word holds every sink's enable bit, so an event site with all sinks
/// off pays exactly one relaxed load — the overhead contract asserted by
/// `disabled_event_sites_stay_cheap`.
static STATE: AtomicU32 = AtomicU32::new(0);

#[inline]
pub(crate) fn state() -> u32 {
    STATE.load(Ordering::Relaxed)
}

pub(crate) static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());
pub(crate) static HISTS: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());
pub(crate) static SPANS: Mutex<BTreeMap<String, SpanAgg>> = Mutex::new(BTreeMap::new());

/// Install a fresh global metrics recorder: clears any previous contents
/// and enables collection. Call once per run (e.g. when `--metrics-json`
/// is requested).
pub fn install() {
    COUNTERS.lock().expect("obs counters").clear();
    HISTS.lock().expect("obs hists").clear();
    SPANS.lock().expect("obs spans").clear();
    STATE.fetch_or(METRICS, Ordering::AcqRel);
}

/// Whether metrics collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    state() & METRICS != 0
}

/// Enable or disable `[xdata-trace tN]` stderr output on span close.
/// Independent of [`install`]: stderr tracing works with or without a
/// report. [`take_report`] turns it back off together with collection, so
/// one run's `--trace` cannot leak into the next run in the same process.
pub fn set_trace(on: bool) {
    if on {
        STATE.fetch_or(STDERR, Ordering::AcqRel);
    } else {
        STATE.fetch_and(!STDERR, Ordering::AcqRel);
    }
}

/// Whether stderr trace output is enabled.
#[inline]
pub fn trace_enabled() -> bool {
    state() & STDERR != 0
}

/// Start a fresh journal run: discards any previously journaled events and
/// enables event journaling. Call once per run (e.g. when `--trace-out`
/// is requested).
pub fn install_trace() {
    journal::reset();
    STATE.fetch_or(JOURNAL, Ordering::AcqRel);
}

/// Whether the event journal is enabled.
#[inline]
pub fn journal_enabled() -> bool {
    state() & JOURNAL != 0
}

/// Disable the journal and return everything journaled since
/// [`install_trace`] as a stable-ordered [`TraceLog`]. Returns `None` when
/// the journal was never enabled.
pub fn take_trace() -> Option<TraceLog> {
    if STATE.fetch_and(!JOURNAL, Ordering::AcqRel) & JOURNAL == 0 {
        return None;
    }
    Some(journal::take())
}

/// Disable collection — and stderr tracing, which is scoped to the same
/// run — and return everything recorded since [`install`]. Returns `None`
/// when no recorder was installed (stderr tracing is still reset).
pub fn take_report() -> Option<MetricsReport> {
    if STATE.fetch_and(!(METRICS | STDERR), Ordering::AcqRel) & METRICS == 0 {
        return None;
    }
    Some(MetricsReport {
        counters: std::mem::take(&mut *COUNTERS.lock().expect("obs counters")),
        histograms: std::mem::take(&mut *HISTS.lock().expect("obs hists")),
        spans: std::mem::take(&mut *SPANS.lock().expect("obs spans")),
    })
}

/// Add `delta` to counter `name` (creating it at 0 first). `delta == 0`
/// still creates the key — [`preseed`] relies on this to give reports a
/// stable key set across workloads. When the journal is on, non-zero
/// deltas are additionally journaled as timestamped counter events
/// (zero-delta preseeds are pure schema, not occurrences, and stay out of
/// the timeline).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    let s = state();
    if s == 0 {
        return;
    }
    if s & METRICS != 0 {
        *COUNTERS.lock().expect("obs counters").entry(name).or_insert(0) += delta;
    }
    if s & JOURNAL != 0 && delta != 0 {
        journal::counter(name, delta);
    }
}

/// Journal a point event (cache hit, verdict, restart, …) with a
/// lazily-built label. The closure runs only when the journal is on, so a
/// disabled site pays one atomic load and never formats the label.
#[inline]
pub fn instant(name: &'static str, label: impl FnOnce() -> String) {
    if state() & JOURNAL == 0 {
        return;
    }
    journal::instant(name, label());
}

/// Journal a flow marker connecting causally-related work across threads
/// (a plan target moving from the planning thread to its solving worker, a
/// session's turn order across gated targets). `id` disambiguates
/// concurrent flows with the same `name`; the Chrome exporter renders them
/// as arrows.
#[inline]
pub fn flow(name: &'static str, id: u64, phase: FlowPhase) {
    if state() & JOURNAL == 0 {
        return;
    }
    journal::flow(name, id, phase);
}

/// Record `value` into the log2-bucket histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    HISTS.lock().expect("obs hists").entry(name).or_default().record(value);
}

/// Record every value of `values` into the histogram `name` under a single
/// lock acquisition. Instrumentation sites that produce one sample per
/// hot-loop iteration (e.g. the solver's backjump depths, one per conflict)
/// buffer locally and flush once per solve through this.
#[inline]
pub fn observe_all(name: &'static str, values: &[u64]) {
    if !enabled() || values.is_empty() {
        return;
    }
    let mut hists = HISTS.lock().expect("obs hists");
    let h = hists.entry(name).or_default();
    for &v in values {
        h.record(v);
    }
}

/// Strip the run-varying `timings_ns` section from a rendered
/// [`MetricsReport`] JSON document, leaving only the deterministic part.
/// The writer emits `timings_ns` as the final top-level key precisely so
/// this is a clean suffix cut; byte-compare the results of two runs to
/// check metrics determinism.
pub fn strip_timings(json: &str) -> String {
    match json.find(",\n  \"timings_ns\"") {
        Some(i) => format!("{}\n}}\n", &json[..i]),
        None => json.to_string(),
    }
}

#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests touching the global recorder.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Turn every sink off, discarding pending state from earlier tests.
    fn all_off() {
        let _ = take_report();
        let _ = take_trace();
        set_trace(false);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let _l = lock();
        all_off();
        assert!(take_report().is_none());
        counter("x", 5);
        observe("h", 3);
        {
            let _s = span("phase");
        }
        assert!(take_report().is_none(), "nothing installed, nothing recorded");
    }

    /// The overhead contract for permanently-instrumented hot paths: with
    /// every sink disabled, an event site must take its single-atomic-load
    /// early return — in particular it must never build labels (that
    /// `format!` is the expensive part of a site). The closures panic to
    /// make a violation loud, and a coarse wall-clock bound guards against
    /// someone re-introducing unconditional lock traffic.
    #[test]
    fn disabled_event_sites_stay_cheap() {
        let _l = lock();
        all_off();
        instant("solver.restart", || panic!("label built with journal disabled"));
        {
            let _s = span_with("generate/solve", || panic!("label built with sinks disabled"));
        }
        flow("target", 7, FlowPhase::Start);

        const N: u32 = 1_000_000;
        let t0 = std::time::Instant::now();
        for i in 0..N {
            counter("core.targets.solved", u64::from(i & 1));
            instant("solver.restart", || unreachable!());
        }
        let per_site_ns = t0.elapsed().as_nanos() as f64 / f64::from(N) / 2.0;
        assert!(
            per_site_ns < 200.0,
            "disabled event site costs {per_site_ns:.1}ns — expected a bare atomic check"
        );
    }

    #[test]
    fn counters_and_histograms_round_trip() {
        let _l = lock();
        all_off();
        install();
        counter("a.b", 2);
        counter("a.b", 3);
        counter("zero.key", 0);
        observe("h", 0);
        observe("h", 1);
        observe("h", 1024);
        let r = take_report().expect("installed");
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("zero.key"), 0);
        assert_eq!(r.counter("missing"), 0);
        let h = &r.histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1025);
        // 0 → bucket 0, 1 → bucket 1, 1024 → bucket 11.
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(11), 1);
    }

    #[test]
    fn observe_all_matches_repeated_observe() {
        let _l = lock();
        all_off();
        install();
        observe_all("bulk", &[0, 1, 1, 1024]);
        observe_all("bulk", &[]);
        let r = take_report().expect("installed");
        let h = &r.histograms["bulk"];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1026);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(11), 1);
    }

    #[test]
    fn spans_aggregate_by_path() {
        let _l = lock();
        all_off();
        install();
        {
            let _outer = span("gen");
            for _ in 0..3 {
                let _inner = span("gen/solve");
            }
        }
        let r = take_report().expect("installed");
        assert_eq!(r.spans["gen"].count, 1);
        assert_eq!(r.spans["gen/solve"].count, 3);
        assert!(r.spans["gen"].total_ns >= r.spans["gen/solve"].total_ns);
    }

    #[test]
    fn json_is_stable_and_strippable() {
        let _l = lock();
        all_off();
        install();
        counter("b", 1);
        counter("a", 2);
        observe("h", 7);
        {
            let _s = span("phase");
        }
        let r = take_report().expect("installed");
        let with = r.to_json();
        let without = strip_timings(&with);
        assert!(with.contains("\"timings_ns\""));
        assert!(!without.contains("\"timings_ns\""));
        // Keys are sorted.
        assert!(with.find("\"a\"").unwrap() < with.find("\"b\"").unwrap());
        // Stripped JSON of an identical (re-recorded) run is byte-identical.
        install();
        counter("a", 2);
        counter("b", 1);
        observe("h", 7);
        {
            let _s = span("phase");
        }
        let r2 = take_report().expect("installed");
        assert_eq!(strip_timings(&r.to_json()), strip_timings(&r2.to_json()));
        assert_eq!(without, r.to_json_stripped());
    }

    #[test]
    fn cross_thread_spans_merge() {
        let _l = lock();
        all_off();
        install();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _w = span("gen/solve");
                });
            }
        });
        let r = take_report().expect("installed");
        assert_eq!(r.spans["gen/solve"].count, 4);
    }

    #[test]
    fn preseed_creates_stable_key_set() {
        let _l = lock();
        all_off();
        install();
        preseed();
        let r = take_report().expect("installed");
        for name in ALL_COUNTERS {
            assert_eq!(r.counter(name), 0, "{name}");
        }
        for path in PHASE_SPANS {
            assert_eq!(r.spans[*path].count, 0, "{path}");
        }
    }

    /// Regression test for the flag-leak bug: a first run with `--trace`
    /// used to leave the stderr-trace bit set after `take_report()`, so a
    /// second, untraced run in the same process kept printing (and kept
    /// paying for label construction). Collection and stderr tracing are
    /// scoped to the same run, so taking the report must reset both.
    #[test]
    fn take_report_resets_stderr_trace_flag() {
        let _l = lock();
        all_off();
        install();
        set_trace(true);
        assert!(trace_enabled());
        let _ = take_report().expect("installed");
        assert!(!trace_enabled(), "take_report must reset set_trace state");
        assert!(!enabled());
        // And the reset happens even when nothing was installed.
        set_trace(true);
        assert!(take_report().is_none());
        assert!(!trace_enabled());
    }

    #[test]
    fn journal_round_trips_spans_instants_counters_flows() {
        let _l = lock();
        all_off();
        install_trace();
        {
            let _outer = span_with("generate", String::new);
            flow("target", 3, FlowPhase::Start);
            {
                let _inner = span_with("generate/solve", || "dataset A".to_string());
                instant("core.skeleton_cache.hit", || "shape 2x1".to_string());
                counter("solver.decisions", 17);
                counter("solver.decisions", 0); // zero delta: schema only, not an event
            }
            flow("target", 3, FlowPhase::Finish);
        }
        let log = take_trace().expect("journal installed");
        assert!(take_trace().is_none(), "journal is taken exactly once");

        let kinds: Vec<&TraceEventKind> = log.events.iter().map(|e| &e.kind).collect();
        assert_eq!(log.events.len(), 8, "B f B i C E f E... got {kinds:?}");
        assert!(matches!(kinds[0], TraceEventKind::Begin { path, .. } if path == "generate"));
        assert!(
            matches!(kinds[2], TraceEventKind::Begin { path, label }
                if path == "generate/solve" && label == "dataset A")
        );
        assert!(log.events.iter().any(|e| matches!(
            &e.kind,
            TraceEventKind::Counter { name, delta: 17 } if name == "solver.decisions"
        )));
        assert_eq!(
            log.events
                .iter()
                .filter(|e| matches!(&e.kind, TraceEventKind::Flow { .. }))
                .count(),
            2
        );
        // Per-thread timestamps are monotonic and normalized to 0.
        assert_eq!(log.events.iter().map(|e| e.ts_ns).min(), Some(0));
        assert!(log.events.windows(2).all(|w| w[0].tid != w[1].tid || w[0].ts_ns <= w[1].ts_ns));
        // Build metadata rides along.
        assert!(log.meta.contains_key("git_sha"));
        assert!(log.meta.contains_key("rustc"));

        // The Chrome export round-trips through our own parser and passes
        // the structural validator.
        let json = log.to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("export validates");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.flows, 2);
        assert!(summary.has_metadata);
        let back = parse_chrome_trace(&json).expect("export parses");
        assert_eq!(back.to_structure(), log.to_structure());
        assert_eq!(back.meta.get("git_sha"), log.meta.get("git_sha"));
    }

    #[test]
    fn journal_runs_do_not_bleed_into_each_other() {
        let _l = lock();
        all_off();
        install_trace();
        {
            let _s = span_with("generate", String::new);
            instant("solver.restart", || "run 1".to_string());
        }
        let first = take_trace().expect("installed");
        assert_eq!(first.events.len(), 3);

        // A straggler event after the trace was taken is dropped…
        instant("solver.restart", || "stale".to_string());
        // …and a fresh run starts empty.
        install_trace();
        {
            let _s = span_with("generate", String::new);
        }
        let second = take_trace().expect("installed");
        assert_eq!(second.events.len(), 2, "second run must not inherit events");
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let log = TraceLog {
            meta: BTreeMap::new(),
            events: vec![
                ev(0, 0, TraceEventKind::Begin { path: "a".into(), label: String::new() }),
                ev(0, 100, TraceEventKind::Begin { path: "a/b".into(), label: String::new() }),
                ev(0, 400, TraceEventKind::End { path: "a/b".into() }),
                ev(0, 1000, TraceEventKind::End { path: "a".into() }),
            ],
        };
        assert_eq!(log.to_folded(), "a 700\na;a/b 300\n");
    }

    #[test]
    fn critical_path_total_matches_root_duration() {
        // Root [0,1000] on tid 0; solves [100,400] on tid 1 and [300,900]
        // on tid 2 (overlapping). The backward walk should attribute
        // [300,900] to the second solve, [100,300] to the first, and the
        // uncovered/self stretches to the root span — summing exactly to
        // the root duration.
        let log = TraceLog {
            meta: BTreeMap::new(),
            events: vec![
                ev(0, 0, TraceEventKind::Begin { path: "generate".into(), label: String::new() }),
                ev(0, 1000, TraceEventKind::End { path: "generate".into() }),
                ev(1, 100, TraceEventKind::Begin {
                    path: "generate/solve".into(),
                    label: "t1".into(),
                }),
                ev(1, 400, TraceEventKind::End { path: "generate/solve".into() }),
                ev(2, 300, TraceEventKind::Begin {
                    path: "generate/solve".into(),
                    label: "t2".into(),
                }),
                ev(2, 900, TraceEventKind::End { path: "generate/solve".into() }),
            ],
        };
        let a = log.analyze(5);
        assert_eq!(a.root_dur_ns, 1000);
        let total: u64 = a.critical_path.iter().map(|s| s.dur_ns).sum();
        assert_eq!(total, a.root_dur_ns, "critical path must tile the root span exactly");
        let labels: Vec<&str> = a.critical_path.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"t1") && labels.contains(&"t2"));
        assert_eq!(a.per_target.len(), 2);
        assert_eq!(a.per_target[0], ("t2".to_string(), 600, 1));
        assert_eq!(a.slowest[0].label, "t2");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        // Unbalanced: an E with no open B.
        let bad = r#"{"traceEvents": [
            {"name": "x", "cat": "span", "ph": "E", "ts": 1, "pid": 0, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("no open span"));
        // A span left open.
        let open = r#"{"traceEvents": [
            {"name": "x", "cat": "span", "ph": "B", "ts": 1, "pid": 0, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(open).unwrap_err().contains("left open"));
        // Timestamp regression within a thread.
        let regress = r#"{"traceEvents": [
            {"name": "x", "ph": "B", "ts": 5, "pid": 0, "tid": 0},
            {"name": "x", "ph": "E", "ts": 4, "pid": 0, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(regress).unwrap_err().contains("regressed"));
        // A flow finish with no start.
        let flow = r#"{"traceEvents": [
            {"name": "target", "ph": "f", "id": 9, "ts": 1, "pid": 0, "tid": 0, "bp": "e"}
        ]}"#;
        assert!(validate_chrome_trace(flow).unwrap_err().contains("before any start"));
    }

    #[test]
    fn json_parser_handles_escapes_and_numbers() {
        let v = parse_json(r#"{"a": "x\n\"yé", "b": [1, 2.5, -3], "c": null, "d": true}"#)
            .expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x\n\"yé"));
        assert_eq!(v.get("b").unwrap(), &Json::Arr(vec![
            Json::Num("1".into()),
            Json::Num("2.5".into()),
            Json::Num("-3".into()),
        ]));
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1, 2] garbage").is_err());
        // Chrome timestamps: microseconds with fractional part → ns.
        assert_eq!(Json::Num("12.345".into()).as_ts_ns(), Some(12_345));
        assert_eq!(Json::Num("12.3".into()).as_ts_ns(), Some(12_300));
        assert_eq!(Json::Num("7".into()).as_ts_ns(), Some(7_000));
    }

    fn ev(tid: u32, ts_ns: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { tid, ts_ns, kind }
    }
}
