//! # xdata-obs
//!
//! A dependency-free, thread-safe observability layer for the X-Data
//! pipeline: hierarchical **spans** (monotonic wall-clock timing per
//! pipeline phase), **counters** and **log2-bucket histograms**, collected
//! into a [`MetricsReport`] that serializes to stable, sorted JSON.
//!
//! ## Global no-op recorder
//!
//! Instrumentation sites call [`counter`], [`observe`] and [`span`]
//! unconditionally. When no recorder is installed (the default) every call
//! is a single relaxed atomic load and an early return — the uninstrumented
//! hot path stays at effectively zero overhead, which is what lets the
//! solver and the parallel kill loop carry permanent instrumentation.
//! [`install`] switches collection on; [`take_report`] switches it off and
//! returns everything recorded in between.
//!
//! ## Determinism contract
//!
//! The pipeline's output is byte-identical across `--jobs 1/2/4/8`, and the
//! metrics report honours the same rule: every **non-timing** field —
//! counter values, histogram buckets, span *counts*, the key sets — is a
//! pure function of the workload, independent of thread count and
//! scheduling. This holds because
//!
//! * counters and histograms are additive (merge order cannot matter), and
//!   every increment is itself deterministic per solve target / mutant;
//! * spans are aggregated **by path**, and the *set* of spans entered (one
//!   per plan item, one per mutant, one per phase) is fixed by the plan,
//!   not by the schedule.
//!
//! Only the `timings_ns` section varies run-to-run; it is emitted as the
//! final top-level JSON object so [`strip_timings`] can cut it off and the
//! remainder can be compared byte-for-byte.
//!
//! ## Span hierarchy and per-thread buffers
//!
//! Span paths are explicit `/`-separated static strings
//! (`"generate/solve"` is a child of `"generate"`), so parent links survive
//! crossing the `xdata-par` thread pool — a worker thread opening
//! `generate/solve` needs no thread-local context from the coordinating
//! thread. Finished spans accumulate in a per-thread buffer and merge into
//! the global aggregate when the thread's outermost span closes, keeping
//! lock traffic at one acquisition per top-level span rather than one per
//! span.
//!
//! With tracing enabled ([`set_trace`]) every span close also prints a
//! `[xdata-trace]` line to stderr (path, label, duration) — scheduling
//! order, so *not* deterministic; it is a debugging aid, not an artifact.

mod metrics;
mod names;
mod span;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub use metrics::{Histogram, MetricsReport, SpanAgg};
pub use names::{preseed, ALL_COUNTERS, ALL_HISTOGRAMS, PHASE_SPANS};
pub use span::{span, span_with, SpanGuard};

/// Whether a recorder is installed (collection on).
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Whether span closes additionally print `[xdata-trace]` lines to stderr.
static TRACE: AtomicBool = AtomicBool::new(false);

pub(crate) static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());
pub(crate) static HISTS: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());
pub(crate) static SPANS: Mutex<BTreeMap<String, SpanAgg>> = Mutex::new(BTreeMap::new());

/// Install a fresh global recorder: clears any previous contents and
/// enables collection. Call once per run (e.g. when `--metrics-json` or
/// `--trace` is requested).
pub fn install() {
    COUNTERS.lock().expect("obs counters").clear();
    HISTS.lock().expect("obs hists").clear();
    SPANS.lock().expect("obs spans").clear();
    ACTIVE.store(true, Ordering::Release);
}

/// Whether collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Enable or disable `[xdata-trace]` stderr output on span close.
/// Independent of [`install`]: tracing works with or without a report.
pub fn set_trace(on: bool) {
    TRACE.store(on, Ordering::Release);
}

/// Whether trace output is enabled.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE.load(Ordering::Relaxed)
}

/// Disable collection and return everything recorded since [`install`].
/// Returns `None` when no recorder was installed.
pub fn take_report() -> Option<MetricsReport> {
    if !ACTIVE.swap(false, Ordering::AcqRel) {
        return None;
    }
    Some(MetricsReport {
        counters: std::mem::take(&mut *COUNTERS.lock().expect("obs counters")),
        histograms: std::mem::take(&mut *HISTS.lock().expect("obs hists")),
        spans: std::mem::take(&mut *SPANS.lock().expect("obs spans")),
    })
}

/// Add `delta` to counter `name` (creating it at 0 first). `delta == 0`
/// still creates the key — [`preseed`] relies on this to give reports a
/// stable key set across workloads.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    *COUNTERS.lock().expect("obs counters").entry(name).or_insert(0) += delta;
}

/// Record `value` into the log2-bucket histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    HISTS.lock().expect("obs hists").entry(name).or_default().record(value);
}

/// Record every value of `values` into the histogram `name` under a single
/// lock acquisition. Instrumentation sites that produce one sample per
/// hot-loop iteration (e.g. the solver's backjump depths, one per conflict)
/// buffer locally and flush once per solve through this.
#[inline]
pub fn observe_all(name: &'static str, values: &[u64]) {
    if !enabled() || values.is_empty() {
        return;
    }
    let mut hists = HISTS.lock().expect("obs hists");
    let h = hists.entry(name).or_default();
    for &v in values {
        h.record(v);
    }
}

/// Strip the run-varying `timings_ns` section from a rendered
/// [`MetricsReport`] JSON document, leaving only the deterministic part.
/// The writer emits `timings_ns` as the final top-level key precisely so
/// this is a clean suffix cut; byte-compare the results of two runs to
/// check metrics determinism.
pub fn strip_timings(json: &str) -> String {
    match json.find(",\n  \"timings_ns\"") {
        Some(i) => format!("{}\n}}\n", &json[..i]),
        None => json.to_string(),
    }
}

#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests touching the global recorder.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let _l = lock();
        assert!(take_report().is_none());
        counter("x", 5);
        observe("h", 3);
        {
            let _s = span("phase");
        }
        assert!(take_report().is_none(), "nothing installed, nothing recorded");
    }

    #[test]
    fn counters_and_histograms_round_trip() {
        let _l = lock();
        install();
        counter("a.b", 2);
        counter("a.b", 3);
        counter("zero.key", 0);
        observe("h", 0);
        observe("h", 1);
        observe("h", 1024);
        let r = take_report().expect("installed");
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("zero.key"), 0);
        assert_eq!(r.counter("missing"), 0);
        let h = &r.histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1025);
        // 0 → bucket 0, 1 → bucket 1, 1024 → bucket 11.
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(11), 1);
    }

    #[test]
    fn observe_all_matches_repeated_observe() {
        let _l = lock();
        install();
        observe_all("bulk", &[0, 1, 1, 1024]);
        observe_all("bulk", &[]);
        let r = take_report().expect("installed");
        let h = &r.histograms["bulk"];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1026);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(11), 1);
    }

    #[test]
    fn spans_aggregate_by_path() {
        let _l = lock();
        install();
        {
            let _outer = span("gen");
            for _ in 0..3 {
                let _inner = span("gen/solve");
            }
        }
        let r = take_report().expect("installed");
        assert_eq!(r.spans["gen"].count, 1);
        assert_eq!(r.spans["gen/solve"].count, 3);
        assert!(r.spans["gen"].total_ns >= r.spans["gen/solve"].total_ns);
    }

    #[test]
    fn json_is_stable_and_strippable() {
        let _l = lock();
        install();
        counter("b", 1);
        counter("a", 2);
        observe("h", 7);
        {
            let _s = span("phase");
        }
        let r = take_report().expect("installed");
        let with = r.to_json();
        let without = strip_timings(&with);
        assert!(with.contains("\"timings_ns\""));
        assert!(!without.contains("\"timings_ns\""));
        // Keys are sorted.
        assert!(with.find("\"a\"").unwrap() < with.find("\"b\"").unwrap());
        // Stripped JSON of an identical (re-recorded) run is byte-identical.
        install();
        counter("a", 2);
        counter("b", 1);
        observe("h", 7);
        {
            let _s = span("phase");
        }
        let r2 = take_report().expect("installed");
        assert_eq!(strip_timings(&r.to_json()), strip_timings(&r2.to_json()));
        assert_eq!(without, r.to_json_stripped());
    }

    #[test]
    fn cross_thread_spans_merge() {
        let _l = lock();
        install();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _w = span("gen/solve");
                });
            }
        });
        let r = take_report().expect("installed");
        assert_eq!(r.spans["gen/solve"].count, 4);
    }

    #[test]
    fn preseed_creates_stable_key_set() {
        let _l = lock();
        install();
        preseed();
        let r = take_report().expect("installed");
        for name in ALL_COUNTERS {
            assert_eq!(r.counter(name), 0, "{name}");
        }
        for path in PHASE_SPANS {
            assert_eq!(r.spans[*path].count, 0, "{path}");
        }
    }
}
