//! Span guards, the thread-local span buffer, and stderr trace output.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static LOCAL: RefCell<LocalBuf> =
        const { RefCell::new(LocalBuf { depth: 0, done: Vec::new(), lines: String::new() }) };
}

/// Per-thread buffer of finished spans and pending stderr trace lines.
/// Both merge out when the thread's outermost span closes, so nested spans
/// (one per solve target, say) cost a `Vec::push`, not a lock acquisition
/// — and trace lines from different threads never interleave mid-block.
struct LocalBuf {
    depth: u32,
    done: Vec<(&'static str, u64)>,
    lines: String,
}

/// Open a span at `path`. Paths are explicit `/`-separated hierarchies
/// (`"generate/solve"` is a child of `"generate"`) so parenthood survives
/// crossing thread-pool boundaries without thread-local context. The span
/// closes — and records its duration — when the guard drops.
#[inline]
pub fn span(path: &'static str) -> SpanGuard {
    span_with(path, String::new)
}

/// [`span`] with a lazily-built label (e.g. the solve target's
/// description) for the journal and the stderr trace lines. The closure
/// runs only when one of those sinks is on, so the label costs nothing
/// otherwise; the label never enters the metrics report (labels are
/// per-item, the report aggregates per path).
#[inline]
pub fn span_with(path: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    let s = crate::state();
    if s == 0 {
        return SpanGuard { path, start: None, label: String::new(), journaled: false };
    }
    LOCAL.with(|l| l.borrow_mut().depth += 1);
    let label = if s & (crate::STDERR | crate::JOURNAL) != 0 { label() } else { String::new() };
    let journaled = s & crate::JOURNAL != 0;
    if journaled {
        crate::journal::begin(path, label.clone());
    }
    SpanGuard { path, start: Some(Instant::now()), label, journaled }
}

/// An open span; closes when dropped.
pub struct SpanGuard {
    path: &'static str,
    /// `None` when the span was opened with every sink off (fully inert
    /// guard).
    start: Option<Instant>,
    label: String,
    /// Whether a journal `Begin` was recorded at open — if so the matching
    /// `End` is recorded at drop even if the journal was disabled in
    /// between, keeping the journal's depth tracking balanced (the stale
    /// events themselves are discarded at flush).
    journaled: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        if self.journaled {
            crate::journal::end(self.path);
        }
        let stderr_line = crate::trace_enabled();
        LOCAL.with(|l| {
            let mut buf = l.borrow_mut();
            if stderr_line {
                let label = if self.label.is_empty() {
                    String::new()
                } else {
                    format!(" — {}", self.label)
                };
                buf.lines.push_str(&format!(
                    "[xdata-trace t{}] {} {:.3}ms{label}\n",
                    crate::journal::thread_ordinal(),
                    self.path,
                    dur_ns as f64 / 1e6
                ));
            }
            buf.done.push((self.path, dur_ns));
            buf.depth = buf.depth.saturating_sub(1);
            if buf.depth == 0 {
                let done = std::mem::take(&mut buf.done);
                let lines = std::mem::take(&mut buf.lines);
                drop(buf);
                flush(done, lines);
            }
        });
    }
}

/// Merge a thread's finished spans into the global aggregate and write its
/// buffered trace lines as one block. The span merge is a no-op when the
/// recorder was uninstalled while the spans were open (their timings would
/// belong to a run that already took its report).
fn flush(done: Vec<(&'static str, u64)>, lines: String) {
    if !lines.is_empty() {
        // One write for the whole block: lines from concurrently-flushing
        // threads stay contiguous per thread instead of interleaving
        // record-by-record.
        eprint!("{lines}");
    }
    if !crate::enabled() {
        return;
    }
    let mut spans = crate::SPANS.lock().expect("obs spans");
    for (path, dur_ns) in done {
        spans.entry(path.to_string()).or_default().merge_one(dur_ns);
    }
}

/// Pre-register span `path` with a zero count, giving reports a stable key
/// set whether or not the phase ran.
pub(crate) fn preseed_span(path: &str) {
    if !crate::enabled() {
        return;
    }
    crate::SPANS.lock().expect("obs spans").entry(path.to_string()).or_default();
}
