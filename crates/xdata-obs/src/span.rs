//! Span guards, the thread-local span buffer, and trace output.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf { depth: 0, done: Vec::new() }) };
}

/// Per-thread buffer of finished spans. Merged into the global aggregate
/// when the thread's outermost span closes, so nested spans (one per solve
/// target, say) cost a `Vec::push`, not a lock acquisition.
struct LocalBuf {
    depth: u32,
    done: Vec<(&'static str, u64)>,
}

/// Open a span at `path`. Paths are explicit `/`-separated hierarchies
/// (`"generate/solve"` is a child of `"generate"`) so parenthood survives
/// crossing thread-pool boundaries without thread-local context. The span
/// closes — and records its duration — when the guard drops.
#[inline]
pub fn span(path: &'static str) -> SpanGuard {
    span_with(path, String::new)
}

/// [`span`] with a lazily-built label for trace output (e.g. the solve
/// target's description). The closure runs only when tracing is on, so the
/// label costs nothing otherwise; the label never enters the metrics
/// report (labels are per-item, the report aggregates per path).
#[inline]
pub fn span_with(path: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    let tracing = crate::trace_enabled();
    if !crate::enabled() && !tracing {
        return SpanGuard { path, start: None, label: String::new() };
    }
    LOCAL.with(|l| l.borrow_mut().depth += 1);
    SpanGuard {
        path,
        start: Some(Instant::now()),
        label: if tracing { label() } else { String::new() },
    }
}

/// An open span; closes when dropped.
pub struct SpanGuard {
    path: &'static str,
    /// `None` when the span was opened with recording and tracing both off
    /// (fully inert guard).
    start: Option<Instant>,
    label: String,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        if crate::trace_enabled() {
            let label = if self.label.is_empty() {
                String::new()
            } else {
                format!(" — {}", self.label)
            };
            eprintln!(
                "[xdata-trace] {} {:.3}ms{label}",
                self.path,
                dur_ns as f64 / 1e6
            );
        }
        LOCAL.with(|l| {
            let mut buf = l.borrow_mut();
            buf.done.push((self.path, dur_ns));
            buf.depth = buf.depth.saturating_sub(1);
            if buf.depth == 0 {
                let done = std::mem::take(&mut buf.done);
                drop(buf);
                flush(done);
            }
        });
    }
}

/// Merge a thread's finished spans into the global aggregate. A no-op when
/// the recorder was uninstalled while the spans were open (their timings
/// would belong to a run that already took its report).
fn flush(done: Vec<(&'static str, u64)>) {
    if !crate::enabled() {
        return;
    }
    let mut spans = crate::SPANS.lock().expect("obs spans");
    for (path, dur_ns) in done {
        spans.entry(path.to_string()).or_default().merge_one(dur_ns);
    }
}

/// Pre-register span `path` with a zero count, giving reports a stable key
/// set whether or not the phase ran.
pub(crate) fn preseed_span(path: &str) {
    if !crate::enabled() {
        return;
    }
    crate::SPANS.lock().expect("obs spans").entry(path.to_string()).or_default();
}
