//! Canonical metric names used by the X-Data pipeline.
//!
//! Instrumentation sites reference these literals directly (the recorder
//! keys on `&'static str`); this module is the registry that keeps the
//! report's key set stable: [`preseed`] zero-initializes every canonical
//! counter, histogram and phase span so a `generate`-only run still emits
//! the `kill.*` keys (at zero) and vice versa — consumers can rely on the
//! schema without probing for key existence.

/// Every canonical counter, sorted. Solver counters are recorded inside
/// `xdata-solver` (per ground solve), `core.*` by `xdata-core::generate`
/// and `xdata-core::grade`, `engine.*` by the join executor, `kill.*` by
/// `xdata-engine::kill_report_jobs`, and `serve.*` by the `xdata-serve`
/// daemon (connection/request lifecycle and warm-cache occupancy).
pub const ALL_COUNTERS: &[&str] = &[
    "core.grade.candidates",
    "core.grade.dedup_hit",
    "core.grade.dedup_miss",
    "core.partial_suites",
    "core.rows_emitted",
    "core.skeleton_cache.hit",
    "core.skeleton_cache.miss",
    "core.solve_memo.hit",
    "core.solve_memo.miss",
    "core.targets.faulted",
    "core.targets.null_witness",
    "core.targets.planned",
    "core.targets.skipped",
    "core.targets.solved",
    "core.targets.timed_out",
    "engine.hash_join.build_rows",
    "engine.hash_join.fallback_nodes",
    "engine.hash_join.nodes",
    "engine.hash_join.probe_rows",
    "engine.subquery.fallback_preds",
    "engine.subquery.hash_preds",
    "engine.subquery.probe_rows",
    "kill.datasets",
    "kill.killed.agg",
    "kill.killed.cmp",
    "kill.killed.distinct",
    "kill.killed.having_agg",
    "kill.killed.having_cmp",
    "kill.killed.join",
    "kill.killed.like",
    "kill.killed.null_check",
    "kill.killed.subquery",
    "kill.mutants",
    "kill.survived.agg",
    "kill.survived.cmp",
    "kill.survived.distinct",
    "kill.survived.having_agg",
    "kill.survived.having_cmp",
    "kill.survived.join",
    "kill.survived.like",
    "kill.survived.null_check",
    "kill.survived.subquery",
    "kill.unevaluated",
    "serve.connections",
    "serve.deadline_clamped",
    "serve.errors",
    "serve.rejected_frames",
    "serve.requests",
    "serve.requests.evaluate",
    "serve.requests.generate",
    "serve.requests.grade_batch",
    "serve.requests.ping",
    "serve.warm.memo_entries",
    "serve.warm.sessions",
    "solver.cancel_checks",
    "solver.clause_db.dropped",
    "solver.clause_db.kept",
    "solver.conflicts",
    "solver.decisions",
    "solver.ground_solves",
    "solver.instantiations",
    "solver.learned_clauses",
    "solver.phase_saves",
    "solver.propagations",
    "solver.restarts",
    "solver.session.assumption_solves",
    "solver.session.reused_clauses",
    "solver.string_constraints",
    "solver.theory_relaxations",
    "solver.unfold_expansions",
    "solver.unknown_exits",
];

/// Every canonical histogram. `solver.cancel_latency` (nanoseconds past a
/// wall-clock deadline when the cooperative check noticed) only receives
/// samples when a *real* deadline expires — synthetic chaos cancellation
/// records nothing, keeping fault-injected runs byte-comparable.
pub const ALL_HISTOGRAMS: &[&str] = &[
    "core.dataset_rows",
    "solver.backjump_depth",
    "solver.cancel_latency",
    "solver.clause_lbd",
    "solver.ground_atoms",
];

/// Every canonical span path (the pipeline phases).
/// `generate/solve/gate` wraps a session-eligible target's wait on the
/// turn gate, separating queueing from solving in the timeline. The
/// `grade/*` spans cover the batch-grading fast path: `grade/reference`
/// executes the instructor query per dataset, `grade/grid` fans the
/// deduplicated candidate×dataset matrix over the worker pool.
pub const PHASE_SPANS: &[&str] = &[
    "generate",
    "generate/plan",
    "generate/solve",
    "generate/solve/gate",
    "grade",
    "grade/grid",
    "grade/reference",
    "kill",
    "kill/mutant",
    "kill/originals",
];

/// Every canonical instant (point) event name the journal can record,
/// sorted. Instants exist only in the event timeline — they never appear
/// in the aggregate metrics report (their aggregate counterparts are the
/// `core.*`/`solver.*`/`kill.*` counters above).
///
/// * `core.target.skip` — a target resolved without a dataset; the label
///   carries the `SkipReason`.
/// * `kill.verdict` — one mutant classified; the label carries
///   `killed`/`survived` plus the mutant class.
/// * `par.claim` — a pool worker claimed a work item; the label carries
///   the queue-wait since the batch was submitted. Scheduling-domain, so
///   excluded from the deterministic trace structure.
/// * `solver.restart` — a CDCL core restarted (conflict-driven, Luby).
/// * `solver.session.turn` — a session handover: a gated target's turn
///   arrived on its shared incremental engine.
/// * `solver.solve` — one ground solve finished; the label carries the
///   verdict and decision/conflict totals (per-decision events would bloat
///   traces by orders of magnitude; the batch is the compromise).
pub const ALL_INSTANTS: &[&str] = &[
    "core.target.skip",
    "kill.verdict",
    "par.claim",
    "solver.restart",
    "solver.session.turn",
    "solver.solve",
];

/// Every canonical flow name, sorted. `target` arrows connect a plan
/// item's planning-time start to the worker that solved it (flow id =
/// plan index); `session` arrows chain the turn order of gated targets
/// sharing one incremental solver session (flow id = copies-class id,
/// offset into its own namespace by the instrumentation so the two flow
/// families cannot collide).
pub const FLOW_NAMES: &[&str] = &["session", "target"];

/// Zero-initialize every canonical key. Call right after [`crate::install`]
/// when a stable report schema matters (the CLI does); without it the
/// report contains only the keys the run actually touched.
pub fn preseed() {
    for &name in ALL_COUNTERS {
        crate::counter(name, 0);
    }
    if crate::enabled() {
        let mut hists = crate::HISTS.lock().expect("obs hists");
        for &name in ALL_HISTOGRAMS {
            hists.entry(name).or_default();
        }
    }
    for path in PHASE_SPANS {
        crate::span::preseed_span(path);
    }
}
