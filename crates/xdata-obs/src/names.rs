//! Canonical metric names used by the X-Data pipeline.
//!
//! Instrumentation sites reference these literals directly (the recorder
//! keys on `&'static str`); this module is the registry that keeps the
//! report's key set stable: [`preseed`] zero-initializes every canonical
//! counter, histogram and phase span so a `generate`-only run still emits
//! the `kill.*` keys (at zero) and vice versa — consumers can rely on the
//! schema without probing for key existence.

/// Every canonical counter, sorted. Solver counters are recorded inside
/// `xdata-solver` (per ground solve), `core.*` by `xdata-core::generate`,
/// `kill.*` by `xdata-engine::kill_report_jobs`.
pub const ALL_COUNTERS: &[&str] = &[
    "core.partial_suites",
    "core.rows_emitted",
    "core.skeleton_cache.hit",
    "core.skeleton_cache.miss",
    "core.solve_memo.hit",
    "core.solve_memo.miss",
    "core.targets.faulted",
    "core.targets.planned",
    "core.targets.skipped",
    "core.targets.solved",
    "core.targets.timed_out",
    "kill.datasets",
    "kill.killed.agg",
    "kill.killed.cmp",
    "kill.killed.distinct",
    "kill.killed.having_agg",
    "kill.killed.having_cmp",
    "kill.killed.join",
    "kill.mutants",
    "kill.survived.agg",
    "kill.survived.cmp",
    "kill.survived.distinct",
    "kill.survived.having_agg",
    "kill.survived.having_cmp",
    "kill.survived.join",
    "kill.unevaluated",
    "solver.cancel_checks",
    "solver.clause_db.dropped",
    "solver.clause_db.kept",
    "solver.conflicts",
    "solver.decisions",
    "solver.ground_solves",
    "solver.instantiations",
    "solver.learned_clauses",
    "solver.phase_saves",
    "solver.propagations",
    "solver.restarts",
    "solver.session.assumption_solves",
    "solver.session.reused_clauses",
    "solver.theory_relaxations",
    "solver.unfold_expansions",
    "solver.unknown_exits",
];

/// Every canonical histogram. `solver.cancel_latency` (nanoseconds past a
/// wall-clock deadline when the cooperative check noticed) only receives
/// samples when a *real* deadline expires — synthetic chaos cancellation
/// records nothing, keeping fault-injected runs byte-comparable.
pub const ALL_HISTOGRAMS: &[&str] = &[
    "core.dataset_rows",
    "solver.backjump_depth",
    "solver.cancel_latency",
    "solver.clause_lbd",
    "solver.ground_atoms",
];

/// Every canonical span path (the pipeline phases).
pub const PHASE_SPANS: &[&str] =
    &["generate", "generate/plan", "generate/solve", "kill", "kill/mutant", "kill/originals"];

/// Zero-initialize every canonical key. Call right after [`crate::install`]
/// when a stable report schema matters (the CLI does); without it the
/// report contains only the keys the run actually touched.
pub fn preseed() {
    for &name in ALL_COUNTERS {
        crate::counter(name, 0);
    }
    if crate::enabled() {
        let mut hists = crate::HISTS.lock().expect("obs hists");
        for &name in ALL_HISTOGRAMS {
            hists.entry(name).or_default();
        }
    }
    for path in PHASE_SPANS {
        crate::span::preseed_span(path);
    }
}
