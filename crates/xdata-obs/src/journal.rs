//! The per-thread **event journal** behind event-timeline tracing.
//!
//! Aggregate metrics (`metrics.rs`) answer "how much, in total"; the
//! journal answers "what happened, when, on which thread". Every
//! instrumentation site that records a counter or opens a span also — when
//! the journal is enabled — appends a timestamped event to a thread-local
//! buffer: span begin/end pairs, instant (point) events, counter deltas,
//! and flow markers connecting causally-related work across threads.
//!
//! ## Cost discipline
//!
//! With the journal (and every other sink) disabled, an event site is a
//! single relaxed atomic load and an early return — the same contract the
//! metrics recorder has always had, asserted by the
//! `disabled_event_sites_stay_cheap` guard test. With the journal enabled,
//! an event is a `Vec::push` into thread-local storage; the global mutex is
//! taken only when a thread's outermost span closes (or for the rare event
//! recorded outside any span), mirroring the span buffer's flush policy.
//!
//! ## Draining
//!
//! [`crate::take_trace`] disables the journal and assembles the flushed
//! chunks into a [`crate::TraceLog`]: events grouped per thread in record
//! order (per-thread timestamps are therefore monotonic), threads ordered
//! by their stable ordinal, timestamps normalized to the earliest event.
//! Buffers left over from a previous run (a thread that died with the
//! journal off, a run that was never drained) are discarded by run-id
//! mismatch, so consecutive traced runs in one process cannot bleed into
//! each other.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::trace::{FlowPhase, TraceEvent, TraceEventKind, TraceLog};

/// Process-lifetime monotonic epoch; all journal timestamps are nanoseconds
/// since this instant. Normalization to the run's own start happens at
/// drain time, keeping the hot path at one `Instant::elapsed` call.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch.
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Stable per-thread ordinal, assigned on first use and used as the trace
/// track id. The main thread almost always claims 0 (it records the first
/// event); worker ordinals depend on spawn order, which only affects track
/// numbering in the timed export, never the stripped structure.
pub(crate) fn thread_ordinal() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static ORDINAL: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// Current journal run id; bumped by [`reset`] so thread-local buffers from
/// an earlier run can be recognized and discarded.
static RUN: AtomicU64 = AtomicU64::new(0);

/// One journal entry. Names and paths are `&'static str` on the hot path;
/// they widen to `String` only at drain time.
pub(crate) enum JEvent {
    Begin { path: &'static str, label: String, ts: u64 },
    End { path: &'static str, ts: u64 },
    Instant { name: &'static str, label: String, ts: u64 },
    Counter { name: &'static str, delta: u64, ts: u64 },
    Flow { name: &'static str, id: u64, phase: FlowPhase, ts: u64 },
}

struct ThreadJournal {
    /// Run id the buffered events belong to.
    run: u64,
    /// Open-span depth as seen by the journal (Begin minus End); the flush
    /// trigger.
    depth: u32,
    events: Vec<JEvent>,
}

thread_local! {
    static TLS: RefCell<ThreadJournal> =
        const { RefCell::new(ThreadJournal { run: 0, depth: 0, events: Vec::new() }) };
}

/// Flushed per-thread chunks of the current run, in flush order (each
/// thread's chunks are chronological; threads interleave arbitrarily).
static CHUNKS: Mutex<Vec<(u32, Vec<JEvent>)>> = Mutex::new(Vec::new());

/// Start a fresh journal run: discard any chunks from a previous run and
/// invalidate stale thread-local buffers via the run id.
pub(crate) fn reset() {
    let mut chunks = CHUNKS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    chunks.clear();
    RUN.fetch_add(1, Ordering::AcqRel);
}

fn with_tls(f: impl FnOnce(&mut ThreadJournal)) {
    TLS.with(|t| {
        let mut j = t.borrow_mut();
        let run = RUN.load(Ordering::Acquire);
        if j.run != run {
            // A buffer from a previous run that was never flushed (or the
            // thread's first event of this run): start clean.
            j.run = run;
            j.depth = 0;
            j.events.clear();
        }
        f(&mut j);
    });
}

/// Merge a thread's buffered events into the global chunk list. A no-op
/// when the journal was disabled (or reset) while the events were buffered.
fn flush(j: &mut ThreadJournal) {
    if j.events.is_empty() {
        return;
    }
    let events = std::mem::take(&mut j.events);
    if !crate::journal_enabled() || j.run != RUN.load(Ordering::Acquire) {
        return; // this run's trace was already taken; drop the stragglers
    }
    let mut chunks = CHUNKS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    chunks.push((thread_ordinal(), events));
}

pub(crate) fn begin(path: &'static str, label: String) {
    with_tls(|j| {
        j.events.push(JEvent::Begin { path, label, ts: now_ns() });
        j.depth += 1;
    });
}

pub(crate) fn end(path: &'static str) {
    with_tls(|j| {
        j.events.push(JEvent::End { path, ts: now_ns() });
        j.depth = j.depth.saturating_sub(1);
        if j.depth == 0 {
            flush(j);
        }
    });
}

pub(crate) fn instant(name: &'static str, label: String) {
    with_tls(|j| {
        j.events.push(JEvent::Instant { name, label, ts: now_ns() });
        if j.depth == 0 {
            flush(j);
        }
    });
}

pub(crate) fn counter(name: &'static str, delta: u64) {
    with_tls(|j| {
        j.events.push(JEvent::Counter { name, delta, ts: now_ns() });
        if j.depth == 0 {
            flush(j);
        }
    });
}

pub(crate) fn flow(name: &'static str, id: u64, phase: FlowPhase) {
    with_tls(|j| {
        j.events.push(JEvent::Flow { name, id, phase, ts: now_ns() });
        if j.depth == 0 {
            flush(j);
        }
    });
}

/// Drain everything flushed since [`reset`] into a stable-ordered
/// [`TraceLog`]: events sorted by (thread ordinal, record order), then
/// timestamps normalized so the earliest event is `t = 0`.
pub(crate) fn take() -> TraceLog {
    let chunks: Vec<(u32, Vec<JEvent>)> = {
        let mut g = CHUNKS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *g)
    };
    // Group per thread, preserving chunk (and therefore record) order: each
    // thread flushes its chunks chronologically, so concatenation keeps
    // per-thread timestamps monotonic.
    let mut per_thread: std::collections::BTreeMap<u32, Vec<JEvent>> =
        std::collections::BTreeMap::new();
    for (tid, events) in chunks {
        per_thread.entry(tid).or_default().extend(events);
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    for (tid, list) in per_thread {
        for e in list {
            let (ts_ns, kind) = match e {
                JEvent::Begin { path, label, ts } => {
                    (ts, TraceEventKind::Begin { path: path.to_string(), label })
                }
                JEvent::End { path, ts } => (ts, TraceEventKind::End { path: path.to_string() }),
                JEvent::Instant { name, label, ts } => {
                    (ts, TraceEventKind::Instant { name: name.to_string(), label })
                }
                JEvent::Counter { name, delta, ts } => {
                    (ts, TraceEventKind::Counter { name: name.to_string(), delta })
                }
                JEvent::Flow { name, id, phase, ts } => {
                    (ts, TraceEventKind::Flow { name: name.to_string(), id, phase })
                }
            };
            events.push(TraceEvent { tid, ts_ns, kind });
        }
    }
    let t0 = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    for e in &mut events {
        e.ts_ns -= t0;
    }
    let mut log = TraceLog { meta: crate::trace::build_meta(&[]), events };
    log.meta.insert("schema".to_string(), "xdata-trace v1".to_string());
    log
}
