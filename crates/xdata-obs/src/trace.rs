//! Trace log model, exporters, validator and offline analysis.
//!
//! The journal (`journal.rs`) drains into a [`TraceLog`]: a flat,
//! stable-ordered event list plus build metadata. This module gives that
//! log its external faces:
//!
//! * [`TraceLog::to_chrome_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto or `chrome://tracing`. Threads become tracks, spans become
//!   `B`/`E` pairs, targets and sessions become flow arrows.
//! * [`TraceLog::to_folded`] — folded-stacks text (`stack;path weight`)
//!   consumable by any flamegraph renderer. Weights are self-time in
//!   nanoseconds.
//! * [`TraceLog::to_structure`] — the timing-stripped structural view
//!   (event kinds, names, owners, nesting, counts) that must be
//!   byte-identical across `--jobs`; the trace analogue of
//!   `MetricsReport::to_json_stripped`.
//! * [`parse_chrome_trace`] / [`validate_chrome_trace`] — a dependency-free
//!   JSON parser and a structural checker (balanced begin/end, monotonic
//!   per-thread timestamps, flow starts preceding steps/finishes) used by
//!   tests, CI and `xdata trace --validate`.
//! * [`TraceLog::analyze`] — offline analysis backing the `xdata trace`
//!   subcommand: critical-path extraction, per-target and per-mutant-class
//!   breakdowns, turn-gate wait attribution, top-K slowest solves.
//!
//! Everything here is hand-rolled: the workspace has zero external
//! dependencies by design, so the exporters emit JSON via string building
//! and the importer is a small recursive-descent parser.

use std::collections::BTreeMap;

/// Phase of a flow event: `Start` opens an arrow, `Step` continues it on
/// another thread, `Finish` terminates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    Start,
    Step,
    Finish,
}

impl FlowPhase {
    /// Chrome trace-event phase letter (`s`/`t`/`f`).
    pub fn ph(self) -> char {
        match self {
            FlowPhase::Start => 's',
            FlowPhase::Step => 't',
            FlowPhase::Finish => 'f',
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            FlowPhase::Start => "start",
            FlowPhase::Step => "step",
            FlowPhase::Finish => "finish",
        }
    }

    fn rank(self) -> u8 {
        match self {
            FlowPhase::Start => 0,
            FlowPhase::Step => 1,
            FlowPhase::Finish => 2,
        }
    }
}

/// What a single trace event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened. `path` is the canonical hierarchical span path
    /// (e.g. `generate/solve`); `label` the dynamic annotation (target
    /// description, skip reason, …), empty when there is none.
    Begin { path: String, label: String },
    /// The matching span closed.
    End { path: String },
    /// A point event (cache hit, verdict, restart, …).
    Instant { name: String, label: String },
    /// A counter increment, journaled with the delta (totals are
    /// reconstructed by the exporter).
    Counter { name: String, delta: u64 },
    /// A flow marker connecting causally-related events across threads.
    Flow { name: String, id: u64, phase: FlowPhase },
}

/// One journaled event: which thread, when (nanoseconds since the run's
/// first event), and what.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub tid: u32,
    pub ts_ns: u64,
    pub kind: TraceEventKind,
}

/// A drained trace: build metadata plus events ordered by
/// (thread ordinal, per-thread record order). Per-thread timestamps are
/// monotonic; cross-thread ordering is by timestamp only.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    pub meta: BTreeMap<String, String>,
    pub events: Vec<TraceEvent>,
}

/// Build provenance captured at compile time (see `build.rs`), plus the
/// feature flags the caller knows were active. Embedded in trace files,
/// metrics artifacts and bench JSONs so every number is attributable to a
/// source revision and toolchain.
pub fn build_meta(features: &[&str]) -> BTreeMap<String, String> {
    let mut m = BTreeMap::new();
    m.insert("git_sha".to_string(), env!("XDATA_GIT_SHA").to_string());
    m.insert("rustc".to_string(), env!("XDATA_RUSTC_VERSION").to_string());
    m.insert("features".to_string(), features.join(","));
    m
}

/// [`build_meta`] rendered as a JSON object (sorted keys), for embedding
/// in hand-rolled artifact writers: `{"features": "...", ...}`.
pub fn build_meta_json(features: &[&str]) -> String {
    let meta = build_meta(features);
    let mut out = String::from("{");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&escape_json(k));
        out.push_str("\": \"");
        out.push_str(&escape_json(v));
        out.push('"');
    }
    out.push('}');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds rendered as Chrome's microsecond timestamps with three
/// decimals, preserving full journal precision.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl TraceLog {
    /// Export as Chrome trace-event JSON (the "JSON object format" with a
    /// `traceEvents` array plus `metadata`). Threads map to `tid` tracks
    /// under a single `pid 0`; counter events carry both the journaled
    /// delta and the running total so Perfetto plots a cumulative series.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"metadata\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(&escape_json(k));
            out.push_str("\": \"");
            out.push_str(&escape_json(v));
            out.push('"');
        }
        out.push_str("\n  },\n  \"traceEvents\": [");
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let common = format!("\"ts\": {}, \"pid\": 0, \"tid\": {}", fmt_us(e.ts_ns), e.tid);
            match &e.kind {
                TraceEventKind::Begin { path, label } => {
                    out.push_str(&format!(
                        "{{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"B\", {common}, \
                         \"args\": {{\"label\": \"{}\"}}}}",
                        escape_json(path),
                        escape_json(label),
                    ));
                }
                TraceEventKind::End { path } => {
                    out.push_str(&format!(
                        "{{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"E\", {common}}}",
                        escape_json(path),
                    ));
                }
                TraceEventKind::Instant { name, label } => {
                    out.push_str(&format!(
                        "{{\"name\": \"{}\", \"cat\": \"instant\", \"ph\": \"i\", \"s\": \"t\", \
                         {common}, \"args\": {{\"label\": \"{}\"}}}}",
                        escape_json(name),
                        escape_json(label),
                    ));
                }
                TraceEventKind::Counter { name, delta } => {
                    let total = totals.entry(name.as_str()).or_insert(0);
                    *total += delta;
                    out.push_str(&format!(
                        "{{\"name\": \"{}\", \"cat\": \"counter\", \"ph\": \"C\", {common}, \
                         \"args\": {{\"delta\": {delta}, \"total\": {total}}}}}",
                        escape_json(name),
                    ));
                }
                TraceEventKind::Flow { name, id, phase } => {
                    // Steps and finishes bind to the enclosing slice's end
                    // ("bp": "e"), the binding Perfetto renders most
                    // usefully for handover arrows.
                    let bp = match phase {
                        FlowPhase::Start => "",
                        _ => ", \"bp\": \"e\"",
                    };
                    out.push_str(&format!(
                        "{{\"name\": \"{}\", \"cat\": \"flow\", \"ph\": \"{}\", \"id\": {id}, \
                         {common}{bp}}}",
                        escape_json(name),
                        phase.ph(),
                    ));
                }
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Replay each thread's span stack and return every completed span
    /// instance. Spans left open (a partial run cancelled mid-span would
    /// never journal the `End` only if the thread died — the chaos harness
    /// converts injected panics into clean unwinds, so in practice stacks
    /// balance) are dropped.
    pub fn span_instances(&self) -> Vec<SpanInstance> {
        let mut stacks: BTreeMap<u32, Vec<(String, String, u64)>> = BTreeMap::new();
        let mut done = Vec::new();
        for e in &self.events {
            match &e.kind {
                TraceEventKind::Begin { path, label } => {
                    stacks
                        .entry(e.tid)
                        .or_default()
                        .push((path.clone(), label.clone(), e.ts_ns));
                }
                TraceEventKind::End { .. } => {
                    if let Some((path, label, start)) = stacks.entry(e.tid).or_default().pop() {
                        done.push(SpanInstance {
                            tid: e.tid,
                            path,
                            label,
                            start_ns: start,
                            end_ns: e.ts_ns,
                        });
                    }
                }
                _ => {}
            }
        }
        done
    }

    /// Export as folded stacks for flamegraph renderers: one line per
    /// distinct stack, `path;path;... self_time_ns`. Span labels are
    /// deliberately excluded (frame cardinality would explode); the `xdata
    /// trace` breakdowns carry the per-label view instead.
    pub fn to_folded(&self) -> String {
        // (stack string, child time) per open frame, replayed per thread.
        let mut stacks: BTreeMap<u32, Vec<(String, u64, u64)>> = BTreeMap::new();
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for e in &self.events {
            match &e.kind {
                TraceEventKind::Begin { path, .. } => {
                    let stack = stacks.entry(e.tid).or_default();
                    let joined = match stack.last() {
                        Some((parent, _, _)) => format!("{parent};{path}"),
                        None => path.clone(),
                    };
                    stack.push((joined, e.ts_ns, 0));
                }
                TraceEventKind::End { .. } => {
                    let stack = stacks.entry(e.tid).or_default();
                    if let Some((joined, start, child)) = stack.pop() {
                        let total = e.ts_ns.saturating_sub(start);
                        *agg.entry(joined).or_insert(0) += total.saturating_sub(child);
                        if let Some((_, _, parent_child)) = stack.last_mut() {
                            *parent_child += total;
                        }
                    }
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (stack, self_ns) in agg {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// The timing-stripped structural view: event kinds, names, owner
    /// spans, span labels, nesting and counts — everything except
    /// timestamps and thread/scheduling identity. Byte-identical across
    /// `--jobs` for the same input; the trace-level determinism gate.
    ///
    /// Two classes of events are aggregated without their dynamic labels
    /// or owners:
    ///
    /// * `par.*` events describe the scheduling domain itself (which
    ///   worker claimed which slot), which is exactly what `--jobs`
    ///   changes; they are counted under their name only.
    /// * instants and counters keep their owning span *path* but not its
    ///   label: with memoized solves the computing target is
    ///   first-arriver-wins, so owner labels are racy even though the
    ///   event multiset is not.
    pub fn to_structure(&self) -> String {
        let mut spans: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut instants: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut counters: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        let mut flows: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
        let mut stacks: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for e in &self.events {
            let owner = |stacks: &BTreeMap<u32, Vec<String>>| -> String {
                stacks
                    .get(&e.tid)
                    .and_then(|s| s.last())
                    .cloned()
                    .unwrap_or_else(|| "-".to_string())
            };
            match &e.kind {
                TraceEventKind::Begin { path, label } => {
                    *spans.entry((path.clone(), label.clone())).or_insert(0) += 1;
                    stacks.entry(e.tid).or_default().push(path.clone());
                }
                TraceEventKind::End { .. } => {
                    stacks.entry(e.tid).or_default().pop();
                }
                TraceEventKind::Instant { name, .. } => {
                    if !name.starts_with("par.") {
                        *instants.entry((name.clone(), owner(&stacks))).or_insert(0) += 1;
                    }
                }
                TraceEventKind::Counter { name, delta } => {
                    let entry = counters.entry((name.clone(), owner(&stacks))).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += delta;
                }
                TraceEventKind::Flow { name, phase, .. } => {
                    *flows.entry((name.clone(), phase.as_str())).or_insert(0) += 1;
                }
            }
        }
        let mut out = String::from("trace-structure v1\n");
        for ((path, label), n) in spans {
            out.push_str(&format!("span {path} [{label}] x{n}\n"));
        }
        for ((name, owner), n) in instants {
            out.push_str(&format!("instant {name} @{owner} x{n}\n"));
        }
        for ((name, owner), (n, sum)) in counters {
            out.push_str(&format!("counter {name} @{owner} x{n} sum={sum}\n"));
        }
        for ((name, phase), n) in flows {
            out.push_str(&format!("flow {name} {phase} x{n}\n"));
        }
        out
    }

    /// Offline analysis backing `xdata trace`: critical path, per-target
    /// and per-mutant-class time, turn-gate waits and the top-`k` slowest
    /// solves.
    pub fn analyze(&self, k: usize) -> TraceAnalysis {
        let spans = self.span_instances();
        let root_start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let root_end = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);

        // Critical path by boundary sweep: span starts/ends partition
        // `[root_start, root_end]` into intervals; each interval is charged
        // to the *innermost* span active across it — globally, over all
        // threads — where innermost means latest start (ties: earliest end,
        // i.e. most specific; then path/label for determinism). Intervals
        // covered by no span become `(idle)`. Adjacent intervals charged to
        // the same span instance merge. The intervals tile the root span
        // exactly, so the segment total matches the root duration by
        // construction.
        let mut bounds: Vec<u64> = spans.iter().flat_map(|s| [s.start_ns, s.end_ns]).collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut segments: Vec<CriticalSegment> = Vec::new();
        let mut last_choice: Option<usize> = None;
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a == b {
                continue;
            }
            let choice = spans
                .iter()
                .enumerate()
                .filter(|(_, s)| s.start_ns <= a && s.end_ns >= b)
                .max_by_key(|(_, s)| {
                    (s.start_ns, std::cmp::Reverse(s.end_ns), &s.path, &s.label)
                })
                .map(|(i, _)| i);
            let (path, label) = match choice {
                Some(i) => (spans[i].path.clone(), spans[i].label.clone()),
                None => ("(idle)".to_string(), String::new()),
            };
            match segments.last_mut() {
                Some(seg) if choice == last_choice && choice.is_some() => seg.dur_ns += b - a,
                _ => segments.push(CriticalSegment { path, label, dur_ns: b - a }),
            }
            last_choice = choice;
        }

        let group = |path: &str, label_of: &dyn Fn(&SpanInstance) -> Option<String>| {
            let mut m: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for s in spans.iter().filter(|s| s.path == path) {
                if let Some(key) = label_of(s) {
                    let e = m.entry(key).or_insert((0, 0));
                    e.0 += s.end_ns - s.start_ns;
                    e.1 += 1;
                }
            }
            let mut v: Vec<(String, u64, u64)> =
                m.into_iter().map(|(k, (ns, n))| (k, ns, n)).collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        };

        let per_target = group("generate/solve", &|s| Some(s.label.clone()));
        // Mutant spans are labelled `#i description [class]`; group by the
        // trailing class tag.
        let per_class = group("kill/mutant", &|s| {
            let l = s.label.rfind('[')?;
            let r = s.label.rfind(']')?;
            (l < r).then(|| s.label[l + 1..r].to_string())
        });
        let gate_wait = group("generate/solve/gate", &|s| Some(s.label.clone()));

        let mut slowest: Vec<SpanInstance> =
            spans.iter().filter(|s| s.path == "generate/solve").cloned().collect();
        slowest.sort_by(|a, b| {
            (b.end_ns - b.start_ns).cmp(&(a.end_ns - a.start_ns)).then(a.label.cmp(&b.label))
        });
        slowest.truncate(k);

        TraceAnalysis {
            root_dur_ns: root_end - root_start,
            critical_path: segments,
            per_target,
            per_class,
            gate_wait,
            slowest,
        }
    }
}

/// One completed span occurrence, reconstructed from a begin/end pair.
#[derive(Debug, Clone)]
pub struct SpanInstance {
    pub tid: u32,
    pub path: String,
    pub label: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// One segment of the extracted critical path, in chronological order.
#[derive(Debug, Clone)]
pub struct CriticalSegment {
    pub path: String,
    pub label: String,
    pub dur_ns: u64,
}

/// Result of [`TraceLog::analyze`]. All breakdown vectors are
/// `(key, total_ns, count)` sorted by descending total.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    pub root_dur_ns: u64,
    pub critical_path: Vec<CriticalSegment>,
    pub per_target: Vec<(String, u64, u64)>,
    pub per_class: Vec<(String, u64, u64)>,
    pub gate_wait: Vec<(String, u64, u64)>,
    pub slowest: Vec<SpanInstance>,
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON import + structural validation (dependency-free).
// ---------------------------------------------------------------------------

/// Minimal JSON value for the hand-rolled parser. Numbers are kept as
/// their source text so microsecond timestamps round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse::<u64>().ok().or_else(|| {
                // Tolerate a fractional rendering of an integral value.
                n.parse::<f64>().ok().map(|f| f as u64)
            }),
            _ => None,
        }
    }

    /// Serialize back to compact JSON text. Object keys are emitted in
    /// insertion order and strings re-escaped, so a value built
    /// programmatically (e.g. a wire-protocol frame) renders
    /// deterministically; [`parse_json`] ∘ `render` is the identity on the
    /// JSON data model.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// A Chrome `ts` (microseconds, possibly fractional) as nanoseconds.
    pub fn as_ts_ns(&self) -> Option<u64> {
        let Json::Num(n) = self else { return None };
        let (int, frac) = match n.split_once('.') {
            Some((i, f)) => (i, f),
            None => (n.as_str(), ""),
        };
        let us: u64 = int.parse().ok()?;
        let mut frac_ns = 0u64;
        for (i, c) in frac.bytes().enumerate().take(3) {
            if !c.is_ascii_digit() {
                return None;
            }
            frac_ns += u64::from(c - b'0') * 10u64.pow(2 - i as u32);
        }
        Some(us * 1_000 + frac_ns)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        Ok(Json::Num(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parse arbitrary JSON text (used on whole trace files).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage after JSON value"));
    }
    Ok(v)
}

/// Parse a Chrome trace-event JSON file back into a [`TraceLog`], for the
/// `xdata trace` subcommand. Only the event kinds our exporter writes are
/// reconstructed; unknown phases are rejected so a mangled file fails
/// loudly rather than analyzing as silence.
pub fn parse_chrome_trace(text: &str) -> Result<TraceLog, String> {
    let root = parse_json(text)?;
    let mut meta = BTreeMap::new();
    if let Some(Json::Obj(fields)) = root.get("metadata") {
        for (k, v) in fields {
            if let Json::Str(s) = v {
                meta.insert(k.clone(), s.clone());
            }
        }
    }
    let Some(Json::Arr(items)) = root.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let ctx = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing name"))?
            .to_string();
        let ph = item.get("ph").and_then(Json::as_str).ok_or_else(|| ctx("missing ph"))?;
        let ts_ns = item
            .get("ts")
            .and_then(Json::as_ts_ns)
            .ok_or_else(|| ctx("missing or malformed ts"))?;
        let tid =
            item.get("tid").and_then(Json::as_u64).ok_or_else(|| ctx("missing tid"))? as u32;
        let label = || {
            item.get("args")
                .and_then(|a| a.get("label"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        };
        let kind = match ph {
            "B" => TraceEventKind::Begin { path: name, label: label() },
            "E" => TraceEventKind::End { path: name },
            "i" | "I" => TraceEventKind::Instant { name, label: label() },
            "C" => TraceEventKind::Counter {
                name,
                delta: item
                    .get("args")
                    .and_then(|a| a.get("delta"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            },
            "s" | "t" | "f" => {
                let phase = match ph {
                    "s" => FlowPhase::Start,
                    "t" => FlowPhase::Step,
                    _ => FlowPhase::Finish,
                };
                let id =
                    item.get("id").and_then(Json::as_u64).ok_or_else(|| ctx("flow missing id"))?;
                TraceEventKind::Flow { name, id, phase }
            }
            other => return Err(ctx(&format!("unsupported phase '{other}'"))),
        };
        events.push(TraceEvent { tid, ts_ns, kind });
    }
    Ok(TraceLog { meta, events })
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    pub events: usize,
    pub threads: usize,
    pub spans: usize,
    pub flows: usize,
    pub has_metadata: bool,
}

/// Structural checker for a Chrome trace-event JSON file: parses it,
/// then verifies (1) per-thread timestamps are monotonically
/// non-decreasing in array order, (2) every `E` closes a matching `B`
/// (same span path, same thread) and no span is left open, and (3) every
/// flow step/finish is preceded — in time — by a start with the same id.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = parse_json(text)?;
    let has_metadata = matches!(root.get("metadata"), Some(Json::Obj(_)));
    let log = parse_chrome_trace(text)?;

    let mut last_ts: BTreeMap<u32, u64> = BTreeMap::new();
    let mut stacks: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut span_count = 0usize;
    let mut flow_events: Vec<(u64, u8, u64)> = Vec::new(); // (ts, phase rank, id)
    for (i, e) in log.events.iter().enumerate() {
        let prev = last_ts.entry(e.tid).or_insert(0);
        if e.ts_ns < *prev {
            return Err(format!(
                "event {i}: timestamp regressed on tid {} ({} < {})",
                e.tid, e.ts_ns, *prev
            ));
        }
        *prev = e.ts_ns;
        match &e.kind {
            TraceEventKind::Begin { path, .. } => {
                span_count += 1;
                stacks.entry(e.tid).or_default().push(path.clone());
            }
            TraceEventKind::End { path } => match stacks.entry(e.tid).or_default().pop() {
                Some(open) if &open == path => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: E for '{path}' does not match open span '{open}' on tid {}",
                        e.tid
                    ));
                }
                None => {
                    return Err(format!("event {i}: E for '{path}' with no open span on tid {}", e.tid));
                }
            },
            TraceEventKind::Flow { id, phase, .. } => {
                flow_events.push((e.ts_ns, phase.rank(), *id));
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span '{open}' left open on tid {tid}"));
        }
    }
    // Flow starts must precede their steps/finishes in time (cross-thread,
    // so checked on the time axis, not array order).
    flow_events.sort();
    let mut started: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (ts, rank, id) in &flow_events {
        if *rank == 0 {
            started.insert(*id);
        } else if !started.contains(id) {
            return Err(format!("flow id {id} has a step/finish at {ts}ns before any start"));
        }
    }

    Ok(TraceSummary {
        events: log.events.len(),
        threads: last_ts.len(),
        spans: span_count,
        flows: flow_events.len(),
        has_metadata,
    })
}
