//! Annotated join trees.
//!
//! A [`JoinTree`] is a binary tree over relation occurrences whose internal
//! nodes carry a join kind and the join conditions applied at that node.
//! Join predicates are applied "at the earliest possible point in the tree"
//! (§II): [`JoinTree::annotate`] derives per-node conditions from the
//! equivalence classes and retained predicates of a [`crate::NormQuery`].
//!
//! [`JoinTree::canonical_key`] folds semantically equivalent trees together:
//! inner joins are commutative and associative, `A ⟖ B ≡ B ⟕ A`, and full
//! outer joins are commutative — so mutants that differ only by such
//! rewrites count once (the paper's mutant counts likewise collapse
//! equivalent join orders).

use std::fmt;

use xdata_sql::{CompareOp, JoinKind};

use crate::ir::{AttrRef, Operand, Pred};

/// A join tree over relation occurrences.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinTree {
    /// A relation occurrence (index into `NormQuery::occurrences`).
    Leaf(usize),
    Node { kind: JoinKind, left: Box<JoinTree>, right: Box<JoinTree>, conds: Vec<Pred> },
}

impl JoinTree {
    pub fn node(kind: JoinKind, left: JoinTree, right: JoinTree, conds: Vec<Pred>) -> JoinTree {
        JoinTree::Node { kind, left: Box::new(left), right: Box::new(right), conds }
    }

    /// Occurrence indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            JoinTree::Leaf(i) => out.push(*i),
            JoinTree::Node { left, right, .. } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    /// Bitmask of occurrence indices (occurrence count ≤ 64 is enforced at
    /// normalization).
    pub fn leaf_mask(&self) -> u64 {
        self.leaves().iter().fold(0u64, |m, i| m | (1 << i))
    }

    /// Number of join nodes.
    pub fn node_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Node { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }

    /// Join kind of node `idx` in preorder (0 = root).
    pub fn kind_at(&self, idx: usize) -> Option<JoinKind> {
        fn walk(t: &JoinTree, idx: &mut usize) -> Option<JoinKind> {
            match t {
                JoinTree::Leaf(_) => None,
                JoinTree::Node { kind, left, right, .. } => {
                    if *idx == 0 {
                        return Some(*kind);
                    }
                    *idx -= 1;
                    walk(left, idx).or_else(|| walk(right, idx))
                }
            }
        }
        let mut i = idx;
        walk(self, &mut i)
    }

    /// A copy of the tree with the join kind of preorder node `idx`
    /// replaced by `kind`.
    pub fn with_kind_at(&self, idx: usize, kind: JoinKind) -> JoinTree {
        fn walk(t: &JoinTree, idx: &mut isize, new_kind: JoinKind) -> JoinTree {
            match t {
                JoinTree::Leaf(i) => JoinTree::Leaf(*i),
                JoinTree::Node { kind, left, right, conds } => {
                    let my = *idx == 0;
                    *idx -= 1;
                    JoinTree::Node {
                        kind: if my { new_kind } else { *kind },
                        left: Box::new(walk(left, idx, new_kind)),
                        right: Box::new(walk(right, idx, new_kind)),
                        conds: conds.clone(),
                    }
                }
            }
        }
        let mut i = idx as isize;
        walk(self, &mut i, kind)
    }

    /// Derive the join conditions applied at each node from equivalence
    /// classes and retained multi-relation predicates, placing each at the
    /// earliest node where its relations have met. Consumes a bare
    /// (condition-free) tree shape and returns the annotated tree.
    pub fn annotate(&self, eq_classes: &[Vec<AttrRef>], preds: &[Pred]) -> JoinTree {
        match self {
            JoinTree::Leaf(i) => JoinTree::Leaf(*i),
            JoinTree::Node { kind, left, right, .. } => {
                let l = left.annotate(eq_classes, preds);
                let r = right.annotate(eq_classes, preds);
                let lm = l.leaf_mask();
                let rm = r.leaf_mask();
                let mut conds = Vec::new();
                // One representative link per equivalence class that spans
                // the two sides (members within each side were linked at
                // lower nodes by induction).
                for ec in eq_classes {
                    let ml: Vec<&AttrRef> = ec.iter().filter(|a| lm & (1 << a.occ) != 0).collect();
                    let mr: Vec<&AttrRef> = ec.iter().filter(|a| rm & (1 << a.occ) != 0).collect();
                    if let (Some(a), Some(b)) = (ml.first(), mr.first()) {
                        conds.push(Pred {
                            lhs: Operand::attr(**a),
                            op: CompareOp::Eq,
                            rhs: Operand::attr(**b),
                        });
                    }
                }
                // Multi-relation predicates that span the two sides.
                let both = lm | rm;
                for p in preds {
                    let occs = p.occurrences();
                    if occs.len() < 2 {
                        continue;
                    }
                    let pm = occs.iter().fold(0u64, |m, o| m | (1 << o));
                    if pm & both == pm && pm & lm != 0 && pm & rm != 0 {
                        conds.push(p.clone());
                    }
                }
                JoinTree::Node { kind: *kind, left: Box::new(l), right: Box::new(r), conds }
            }
        }
    }

    /// Canonical semantic key: inner-join regions flatten to sorted
    /// multisets, `Right(a, b)` normalizes to `Left(b, a)`, `Full` and
    /// `Inner` sort their children. Two trees with equal keys compute the
    /// same result for every database.
    pub fn canonical_key(&self) -> String {
        match self {
            JoinTree::Leaf(i) => i.to_string(),
            JoinTree::Node { kind, left, right, .. } => match kind {
                JoinKind::Inner => {
                    let mut parts = Vec::new();
                    self.flatten_inner(&mut parts);
                    parts.sort();
                    format!("I({})", parts.join(","))
                }
                JoinKind::Full => {
                    let mut parts = [left.canonical_key(), right.canonical_key()];
                    parts.sort();
                    format!("F({})", parts.join(","))
                }
                JoinKind::Left => {
                    format!("L({},{})", left.canonical_key(), right.canonical_key())
                }
                JoinKind::Right => {
                    // a ⟖ b ≡ b ⟕ a.
                    format!("L({},{})", right.canonical_key(), left.canonical_key())
                }
            },
        }
    }

    fn flatten_inner(&self, out: &mut Vec<String>) {
        match self {
            JoinTree::Node { kind: JoinKind::Inner, left, right, .. } => {
                left.flatten_inner(out);
                right.flatten_inner(out);
            }
            other => out.push(other.canonical_key()),
        }
    }

    /// Render with occurrence names.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> TreeDisplay<'a> {
        TreeDisplay { tree: self, names }
    }
}

/// Helper for name-resolved rendering.
pub struct TreeDisplay<'a> {
    tree: &'a JoinTree,
    names: &'a [String],
}

impl fmt::Display for TreeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn sym(k: JoinKind) -> &'static str {
            match k {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT-OUTER-JOIN",
                JoinKind::Right => "RIGHT-OUTER-JOIN",
                JoinKind::Full => "FULL-OUTER-JOIN",
            }
        }
        fn go(t: &JoinTree, names: &[String], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                JoinTree::Leaf(i) => {
                    f.write_str(names.get(*i).map(String::as_str).unwrap_or("?"))
                }
                JoinTree::Node { kind, left, right, .. } => {
                    f.write_str("(")?;
                    go(left, names, f)?;
                    write!(f, " {} ", sym(*kind))?;
                    go(right, names, f)?;
                    f.write_str(")")
                }
            }
        }
        go(self.tree, self.names, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: usize) -> JoinTree {
        JoinTree::Leaf(i)
    }

    fn inner(l: JoinTree, r: JoinTree) -> JoinTree {
        JoinTree::node(JoinKind::Inner, l, r, vec![])
    }

    #[test]
    fn leaves_and_mask() {
        let t = inner(leaf(0), inner(leaf(2), leaf(1)));
        assert_eq!(t.leaves(), vec![0, 2, 1]);
        assert_eq!(t.leaf_mask(), 0b111);
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn preorder_kind_access_and_mutation() {
        let t = JoinTree::node(JoinKind::Left, inner(leaf(0), leaf(1)), leaf(2), vec![]);
        assert_eq!(t.kind_at(0), Some(JoinKind::Left));
        assert_eq!(t.kind_at(1), Some(JoinKind::Inner));
        assert_eq!(t.kind_at(2), None);
        let m = t.with_kind_at(1, JoinKind::Full);
        assert_eq!(m.kind_at(0), Some(JoinKind::Left));
        assert_eq!(m.kind_at(1), Some(JoinKind::Full));
    }

    #[test]
    fn inner_regions_flatten_in_canonical_key() {
        // ((0 ⋈ 1) ⋈ 2) and (0 ⋈ (2 ⋈ 1)) are the same inner-join region.
        let a = inner(inner(leaf(0), leaf(1)), leaf(2));
        let b = inner(leaf(0), inner(leaf(2), leaf(1)));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn right_join_normalizes_to_left() {
        let r = JoinTree::node(JoinKind::Right, leaf(0), leaf(1), vec![]);
        let l = JoinTree::node(JoinKind::Left, leaf(1), leaf(0), vec![]);
        assert_eq!(r.canonical_key(), l.canonical_key());
        // But Left(0,1) differs from Left(1,0).
        let l2 = JoinTree::node(JoinKind::Left, leaf(0), leaf(1), vec![]);
        assert_ne!(l.canonical_key(), l2.canonical_key());
    }

    #[test]
    fn full_join_is_commutative_in_key() {
        let a = JoinTree::node(JoinKind::Full, leaf(0), leaf(1), vec![]);
        let b = JoinTree::node(JoinKind::Full, leaf(1), leaf(0), vec![]);
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn outer_join_blocks_inner_flattening() {
        // 0 ⋈ (1 ⟕ 2) must not merge with (0 ⋈ 1) ⟕ 2.
        let a = inner(leaf(0), JoinTree::node(JoinKind::Left, leaf(1), leaf(2), vec![]));
        let b = JoinTree::node(JoinKind::Left, inner(leaf(0), leaf(1)), leaf(2), vec![]);
        assert_ne!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn annotate_places_eq_class_links_at_meeting_node() {
        // Occurrences 0,1,2; eq class {0.0, 1.0, 2.0}; tree ((0,1),2).
        let ec = vec![vec![AttrRef::new(0, 0), AttrRef::new(1, 0), AttrRef::new(2, 0)]];
        let t = inner(inner(leaf(0), leaf(1)), leaf(2)).annotate(&ec, &[]);
        match &t {
            JoinTree::Node { conds, left, .. } => {
                assert_eq!(conds.len(), 1, "one representative link at root");
                match &**left {
                    JoinTree::Node { conds, .. } => assert_eq!(conds.len(), 1),
                    x => panic!("unexpected {x:?}"),
                }
            }
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn annotate_places_nonequi_pred_at_earliest_node() {
        use xdata_catalog::Value;
        // pred between occ 0 and 2 goes to the root of ((0,1),2).
        let p = Pred {
            lhs: Operand::attr(AttrRef::new(0, 0)),
            op: CompareOp::Lt,
            rhs: Operand::Attr { attr: AttrRef::new(2, 0), offset: 10 },
        };
        let sel = Pred {
            lhs: Operand::attr(AttrRef::new(1, 1)),
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::Int(3)),
        };
        let t = inner(inner(leaf(0), leaf(1)), leaf(2)).annotate(&[], &[p.clone(), sel]);
        match &t {
            JoinTree::Node { conds, left, .. } => {
                assert_eq!(conds.as_slice(), &[p]);
                match &**left {
                    // Selection predicates never land on join nodes.
                    JoinTree::Node { conds, .. } => assert!(conds.is_empty()),
                    x => panic!("unexpected {x:?}"),
                }
            }
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn display_renders_tree_shape() {
        let names = vec!["instructor".to_string(), "teaches".to_string(), "course".to_string()];
        let t = inner(inner(leaf(0), leaf(1)), leaf(2));
        assert_eq!(
            t.display_with(&names).to_string(),
            "((instructor JOIN teaches) JOIN course)"
        );
    }
}
