//! Errors raised during query normalization and validation.

use std::fmt;

/// Normalization / validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelAlgError {
    /// The FROM clause references a relation not in the schema.
    UnknownRelation(String),
    /// A column reference could not be resolved.
    UnknownColumn(String),
    /// An unqualified column name matches several relation occurrences.
    AmbiguousColumn(String),
    /// Two FROM items bind the same name.
    DuplicateBinding(String),
    /// A predicate compares incomparable types (e.g. string vs int).
    TypeMismatch(String),
    /// Assumption A7/A8 violated: a full outer join whose input contributes
    /// no column to the select list.
    FullOuterJoinProjection(String),
    /// The query uses a feature outside the paper's class (§II / A3–A6).
    Unsupported(String),
    /// GROUP BY / aggregate structure is inconsistent.
    BadAggregation(String),
}

impl fmt::Display for RelAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelAlgError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            RelAlgError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            RelAlgError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            RelAlgError::DuplicateBinding(b) => {
                write!(f, "duplicate relation binding `{b}` in FROM clause")
            }
            RelAlgError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            RelAlgError::FullOuterJoinProjection(m) => write!(
                f,
                "assumption A7/A8 violated (full outer join input must contribute \
                 a select-list column): {m}"
            ),
            RelAlgError::Unsupported(m) => write!(f, "outside the supported query class: {m}"),
            RelAlgError::BadAggregation(m) => write!(f, "bad aggregation: {m}"),
        }
    }
}

impl std::error::Error for RelAlgError {}
