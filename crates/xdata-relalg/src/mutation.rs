//! The mutation space of §II.
//!
//! * **Join-type mutants** — every (equivalent join tree, node, alternative
//!   join kind) triple, deduplicated by semantic canonical form
//!   ([`crate::JoinTree::canonical_key`]). For queries with explicit outer
//!   joins the tree shape is fixed (outer joins do not commute in general)
//!   and only node kinds mutate.
//! * **Comparison mutants** — every comparison operator of every WHERE
//!   conjunct replaced by each of the five alternatives.
//! * **Aggregation mutants** — every aggregate replaced by each other
//!   member of the eight-operator space (`COUNT(*)` does not mutate: the
//!   other operators need a column argument).

use xdata_sql::{CompareOp, JoinKind};

use crate::enumerate::enumerate_trees;
use crate::ir::{AggFunc, LikePred, NormQuery, SelectSpec, SubPred, SubqueryKind};
use crate::tree::JoinTree;

/// A join-type mutant: a concrete tree with exactly one mutated node.
#[derive(Debug, Clone)]
pub struct JoinMutant {
    /// The full annotated tree to execute (kind already mutated).
    pub tree: JoinTree,
    /// Preorder index of the mutated node in `tree`.
    pub node: usize,
    pub from: JoinKind,
    pub to: JoinKind,
    /// Semantic canonical key used for deduplication.
    pub key: String,
    /// How many raw `(tree, node, kind)` triples collapsed into this
    /// canonical mutant. The paper's Table I counts raw triples across all
    /// join orderings; `multiplicity` recovers that counting.
    pub multiplicity: usize,
}

/// A comparison-operator mutant of WHERE conjunct `pred_idx`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmpMutant {
    pub pred_idx: usize,
    pub from: CompareOp,
    pub to: CompareOp,
}

/// An aggregation-operator mutant of aggregate item `agg_idx`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggMutant {
    pub agg_idx: usize,
    pub from: AggFunc,
    pub to: AggFunc,
}

/// A comparison-operator mutant of HAVING conjunct `having_idx`
/// (constrained aggregation — this reproduction's extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HavingCmpMutant {
    pub having_idx: usize,
    pub from: CompareOp,
    pub to: CompareOp,
}

/// An aggregation-operator mutant inside a HAVING conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HavingAggMutant {
    pub having_idx: usize,
    pub from: AggFunc,
    pub to: AggFunc,
}

/// The duplicate-count mutant: `SELECT` ⇄ `SELECT DISTINCT` (the paper's
/// footnote-2 future work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctMutant {
    /// The mutant's `DISTINCT` flag (negation of the original's).
    pub to: bool,
}

/// A subquery-connective mutant of retained subquery `sub_idx`:
/// `IN` ↔ `EXISTS` ↔ `NOT`-variants (§V-H space). Subqueries with a
/// membership link mutate across all four connectives; plain `EXISTS`
/// predicates (no link) only flip their negation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubMutant {
    pub sub_idx: usize,
    pub from: (SubqueryKind, bool),
    pub to: (SubqueryKind, bool),
}

/// A LIKE-pattern mutant of retained predicate `like_idx`: the `%`-prefix /
/// `%`-suffix / literalized variants of a simple `[%]core[%]` pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikeMutant {
    pub like_idx: usize,
    pub from: String,
    pub to: String,
}

/// An `IS NULL` ↔ `IS NOT NULL` mutant of null check `null_idx`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullCheckMutant {
    pub null_idx: usize,
    /// The mutant's negation flag (flip of the original's).
    pub to: bool,
}

/// Any single mutation.
#[derive(Debug, Clone)]
pub enum Mutant {
    Join(JoinMutant),
    Cmp(CmpMutant),
    Agg(AggMutant),
    HavingCmp(HavingCmpMutant),
    HavingAgg(HavingAggMutant),
    Distinct(DistinctMutant),
    Sub(SubMutant),
    Like(LikeMutant),
    NullCheck(NullCheckMutant),
}

impl Mutant {
    /// Human-readable description.
    pub fn describe(&self, q: &NormQuery) -> String {
        let names: Vec<String> = q.occurrences.iter().map(|o| o.name.clone()).collect();
        match self {
            Mutant::Join(m) => format!(
                "join mutant: node {} {} -> {} in {}",
                m.node,
                m.from.sql_name(),
                m.to.sql_name(),
                m.tree.display_with(&names)
            ),
            Mutant::Cmp(m) => format!(
                "comparison mutant: predicate #{} `{}` -> `{}`",
                m.pred_idx,
                m.from.sql_symbol(),
                m.to.sql_symbol()
            ),
            Mutant::Agg(m) => format!(
                "aggregate mutant: item #{} {} -> {}",
                m.agg_idx,
                m.from.display_name(),
                m.to.display_name()
            ),
            Mutant::HavingCmp(m) => format!(
                "having comparison mutant: conjunct #{} `{}` -> `{}`",
                m.having_idx,
                m.from.sql_symbol(),
                m.to.sql_symbol()
            ),
            Mutant::HavingAgg(m) => format!(
                "having aggregate mutant: conjunct #{} {} -> {}",
                m.having_idx,
                m.from.display_name(),
                m.to.display_name()
            ),
            Mutant::Distinct(m) => {
                if m.to {
                    "duplicate mutant: SELECT -> SELECT DISTINCT".to_string()
                } else {
                    "duplicate mutant: SELECT DISTINCT -> SELECT".to_string()
                }
            }
            Mutant::Sub(m) => format!(
                "subquery connective mutant: subquery #{} {} -> {}",
                m.sub_idx,
                connective_name(m.from),
                connective_name(m.to)
            ),
            Mutant::Like(m) => format!(
                "LIKE pattern mutant: predicate #{} '{}' -> '{}'",
                m.like_idx, m.from, m.to
            ),
            Mutant::NullCheck(m) => format!(
                "null check mutant: check #{} IS {}NULL -> IS {}NULL",
                m.null_idx,
                if m.to { "" } else { "NOT " },
                if m.to { "NOT " } else { "" }
            ),
        }
    }
}

fn connective_name((kind, negated): (SubqueryKind, bool)) -> &'static str {
    match (kind, negated) {
        (SubqueryKind::In, false) => "IN",
        (SubqueryKind::In, true) => "NOT IN",
        (SubqueryKind::Exists, false) => "EXISTS",
        (SubqueryKind::Exists, true) => "NOT EXISTS",
    }
}

/// Options controlling mutant generation.
#[derive(Debug, Clone, Copy)]
pub struct MutationOptions {
    /// Include mutations *to* full outer join. The paper's experiments
    /// "ignore the mutation to full outer join" (§VI-C), so benchmarks turn
    /// this off; the generator still kills them (§V-A: the two datasets per
    /// condition also kill full-outer mutants).
    pub include_full: bool,
    /// Include this reproduction's extension classes (duplicate-count
    /// SELECT ⇄ SELECT DISTINCT mutants). Benchmarks reproducing the
    /// paper's tables turn this off to keep the counting comparable.
    pub include_extensions: bool,
    /// Cap on the number of enumerated join trees.
    pub tree_limit: usize,
}

impl Default for MutationOptions {
    fn default() -> Self {
        MutationOptions { include_full: true, include_extensions: true, tree_limit: 200_000 }
    }
}

/// The complete single-mutation space of a query.
#[derive(Debug, Clone, Default)]
pub struct MutationSpace {
    pub join: Vec<JoinMutant>,
    pub cmp: Vec<CmpMutant>,
    pub agg: Vec<AggMutant>,
    pub having_cmp: Vec<HavingCmpMutant>,
    pub having_agg: Vec<HavingAggMutant>,
    pub dup: Vec<DistinctMutant>,
    pub sub: Vec<SubMutant>,
    pub like: Vec<LikeMutant>,
    pub null_check: Vec<NullCheckMutant>,
}

impl MutationSpace {
    pub fn len(&self) -> usize {
        self.join.len()
            + self.cmp.len()
            + self.agg.len()
            + self.having_cmp.len()
            + self.having_agg.len()
            + self.dup.len()
            + self.sub.len()
            + self.like.len()
            + self.null_check.len()
    }

    /// Mutant count under the paper's raw convention: every `(join tree,
    /// node, kind)` triple across all join orderings counts separately
    /// (canonically-equal mutants are not merged).
    pub fn raw_len(&self) -> usize {
        self.join.iter().map(|m| m.multiplicity).sum::<usize>()
            + self.cmp.len()
            + self.agg.len()
            + self.having_cmp.len()
            + self.having_agg.len()
            + self.dup.len()
            + self.sub.len()
            + self.like.len()
            + self.null_check.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = Mutant> + '_ {
        self.join
            .iter()
            .cloned()
            .map(Mutant::Join)
            .chain(self.cmp.iter().cloned().map(Mutant::Cmp))
            .chain(self.agg.iter().cloned().map(Mutant::Agg))
            .chain(self.having_cmp.iter().cloned().map(Mutant::HavingCmp))
            .chain(self.having_agg.iter().cloned().map(Mutant::HavingAgg))
            .chain(self.dup.iter().cloned().map(Mutant::Distinct))
            .chain(self.sub.iter().cloned().map(Mutant::Sub))
            .chain(self.like.iter().cloned().map(Mutant::Like))
            .chain(self.null_check.iter().cloned().map(Mutant::NullCheck))
    }
}

/// Generate the mutation space of `q`.
pub fn mutation_space(q: &NormQuery, opts: MutationOptions) -> MutationSpace {
    let (having_cmp, having_agg) = having_mutants(q);
    MutationSpace {
        join: join_mutants(q, opts),
        cmp: cmp_mutants(q),
        agg: agg_mutants(q),
        having_cmp,
        having_agg,
        dup: if opts.include_extensions { dup_mutants(q) } else { Vec::new() },
        sub: sub_mutants(q),
        like: like_mutants(q),
        null_check: null_check_mutants(q),
    }
}

/// Subquery-connective mutants: a linked subquery (`IN` form) mutates to
/// each other member of the four-connective space; an unlinked `EXISTS`
/// only flips its negation (there is no membership operand to re-link).
fn sub_mutants(q: &NormQuery) -> Vec<SubMutant> {
    let mut out = Vec::new();
    for (idx, s) in q.subs.iter().enumerate() {
        let from = (s.kind, s.negated);
        if s.link.is_some() {
            for to in SubPred::CONNECTIVES {
                if to != from {
                    out.push(SubMutant { sub_idx: idx, from, to });
                }
            }
        } else {
            out.push(SubMutant { sub_idx: idx, from, to: (s.kind, !s.negated) });
        }
    }
    out
}

/// LIKE-pattern mutants: for a simple `[%]core[%]` pattern, the other
/// three members of the {core, core%, %core, %core%} family. Patterns with
/// `_` or an interior `%` have no structural family and do not mutate.
fn like_mutants(q: &NormQuery) -> Vec<LikeMutant> {
    let mut out = Vec::new();
    for (idx, l) in q.likes.iter().enumerate() {
        let Some((_, _, core)) = LikePred::simple_shape(&l.pattern) else {
            continue;
        };
        for (lead, trail) in [(false, false), (true, false), (false, true), (true, true)] {
            let to = format!(
                "{}{}{}",
                if lead { "%" } else { "" },
                core,
                if trail { "%" } else { "" }
            );
            if to != l.pattern {
                out.push(LikeMutant { like_idx: idx, from: l.pattern.clone(), to });
            }
        }
    }
    out
}

fn null_check_mutants(q: &NormQuery) -> Vec<NullCheckMutant> {
    q.null_checks
        .iter()
        .enumerate()
        .map(|(idx, n)| NullCheckMutant { null_idx: idx, to: !n.negated })
        .collect()
}

/// Materialize a subquery-connective mutant. The membership link is kept
/// in the descriptor even for `EXISTS` forms (the connective decides
/// whether it participates), so mutation is an involution.
pub fn apply_sub_mutant(q: &NormQuery, m: &SubMutant) -> NormQuery {
    let mut q2 = q.clone();
    q2.subs[m.sub_idx].kind = m.to.0;
    q2.subs[m.sub_idx].negated = m.to.1;
    q2
}

/// Materialize a LIKE-pattern mutant.
pub fn apply_like_mutant(q: &NormQuery, m: &LikeMutant) -> NormQuery {
    let mut q2 = q.clone();
    q2.likes[m.like_idx].pattern = m.to.clone();
    q2
}

/// Materialize an `IS NULL` ↔ `IS NOT NULL` mutant.
pub fn apply_null_check_mutant(q: &NormQuery, m: &NullCheckMutant) -> NormQuery {
    let mut q2 = q.clone();
    q2.null_checks[m.null_idx].negated = m.to;
    q2
}

/// The SELECT ⇄ SELECT DISTINCT mutant. Aggregation queries are excluded:
/// grouped output rows are distinct by key already, making the mutation
/// equivalent whenever the whole group key is projected.
fn dup_mutants(q: &NormQuery) -> Vec<DistinctMutant> {
    match &q.select {
        SelectSpec::Aggregation { .. } => Vec::new(),
        _ => vec![DistinctMutant { to: !q.distinct }],
    }
}

/// Materialize the duplicate-count mutant.
pub fn apply_distinct_mutant(q: &NormQuery, m: &DistinctMutant) -> NormQuery {
    let mut q2 = q.clone();
    q2.distinct = m.to;
    q2
}

fn having_mutants(q: &NormQuery) -> (Vec<HavingCmpMutant>, Vec<HavingAggMutant>) {
    let SelectSpec::Aggregation { having, .. } = &q.select else {
        return (Vec::new(), Vec::new());
    };
    let mut cmps = Vec::new();
    let mut aggs = Vec::new();
    for (idx, h) in having.iter().enumerate() {
        for to in CompareOp::ALL {
            if to != h.cmp {
                cmps.push(HavingCmpMutant { having_idx: idx, from: h.cmp, to });
            }
        }
        if h.arg.is_some() {
            for to in AggFunc::ALL {
                if to != h.func {
                    aggs.push(HavingAggMutant { having_idx: idx, from: h.func, to });
                }
            }
        }
    }
    (cmps, aggs)
}

/// Materialize a HAVING comparison mutant.
pub fn apply_having_cmp_mutant(q: &NormQuery, m: &HavingCmpMutant) -> NormQuery {
    let mut q2 = q.clone();
    if let SelectSpec::Aggregation { having, .. } = &mut q2.select {
        having[m.having_idx].cmp = m.to;
    }
    q2
}

/// Materialize a HAVING aggregate mutant.
pub fn apply_having_agg_mutant(q: &NormQuery, m: &HavingAggMutant) -> NormQuery {
    let mut q2 = q.clone();
    if let SelectSpec::Aggregation { having, .. } = &mut q2.select {
        having[m.having_idx].func = m.to;
    }
    q2
}

fn join_mutants(q: &NormQuery, opts: MutationOptions) -> Vec<JoinMutant> {
    if q.occurrences.len() < 2 {
        return Vec::new();
    }
    let trees: Vec<JoinTree> = if q.has_outer {
        vec![q.tree.clone()]
    } else {
        let ts = enumerate_trees(q, opts.tree_limit);
        if ts.is_empty() {
            // Disconnected join graph (explicit cross product): fall back
            // to the tree as written.
            vec![q.tree.clone()]
        } else {
            ts
        }
    };
    let mut seen = std::collections::HashMap::new();
    // Never emit a mutant semantically equal to some original-equivalent
    // tree: for inner-only queries every enumerated all-inner tree is the
    // original.
    for t in &trees {
        seen.insert(t.canonical_key(), usize::MAX);
    }
    let mut out: Vec<JoinMutant> = Vec::new();
    for tree in &trees {
        for node in 0..tree.node_count() {
            let from = tree.kind_at(node).expect("node index in range");
            for to in JoinKind::ALL {
                if to == from || (!opts.include_full && to == JoinKind::Full) {
                    continue;
                }
                let m = tree.with_kind_at(node, to);
                let key = m.canonical_key();
                match seen.get(&key) {
                    Some(&idx) => {
                        if idx != usize::MAX {
                            out[idx].multiplicity += 1;
                        }
                    }
                    None => {
                        seen.insert(key.clone(), out.len());
                        out.push(JoinMutant { tree: m, node, from, to, key, multiplicity: 1 });
                    }
                }
            }
        }
    }
    out
}

fn cmp_mutants(q: &NormQuery) -> Vec<CmpMutant> {
    let mut out = Vec::new();
    for (idx, p) in q.preds.iter().enumerate() {
        for to in CompareOp::ALL {
            if to != p.op {
                out.push(CmpMutant { pred_idx: idx, from: p.op, to });
            }
        }
    }
    out
}

fn agg_mutants(q: &NormQuery) -> Vec<AggMutant> {
    let SelectSpec::Aggregation { aggs, .. } = &q.select else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (idx, a) in aggs.iter().enumerate() {
        if a.arg.is_none() {
            continue; // COUNT(*) — no column to aggregate differently
        }
        let from = a.func;
        for to in AggFunc::ALL {
            if to != from {
                out.push(AggMutant { agg_idx: idx, from, to });
            }
        }
    }
    out
}

/// Materialize a comparison mutant as a modified query (predicates and the
/// execution tree both updated).
pub fn apply_cmp_mutant(q: &NormQuery, m: &CmpMutant) -> NormQuery {
    let mut q2 = q.clone();
    q2.preds[m.pred_idx].op = m.to;
    // Re-derive the execution tree so node conditions see the new operator.
    if q.has_outer {
        q2.tree = replace_pred_in_tree(&q.tree, &q.preds[m.pred_idx], &q2.preds[m.pred_idx]);
    } else {
        q2.tree = strip_conds(&q.tree).annotate(&q2.eq_classes, &q2.preds);
    }
    q2
}

/// Materialize an aggregate mutant as a modified query.
pub fn apply_agg_mutant(q: &NormQuery, m: &AggMutant) -> NormQuery {
    let mut q2 = q.clone();
    if let SelectSpec::Aggregation { aggs, .. } = &mut q2.select {
        aggs[m.agg_idx].func = m.to;
    }
    q2
}

fn strip_conds(t: &JoinTree) -> JoinTree {
    match t {
        JoinTree::Leaf(i) => JoinTree::Leaf(*i),
        JoinTree::Node { kind, left, right, .. } => {
            JoinTree::node(*kind, strip_conds(left), strip_conds(right), vec![])
        }
    }
}

fn replace_pred_in_tree(
    t: &JoinTree,
    old: &crate::ir::Pred,
    new: &crate::ir::Pred,
) -> JoinTree {
    match t {
        JoinTree::Leaf(i) => JoinTree::Leaf(*i),
        JoinTree::Node { kind, left, right, conds } => JoinTree::Node {
            kind: *kind,
            left: Box::new(replace_pred_in_tree(left, old, new)),
            right: Box::new(replace_pred_in_tree(right, old, new)),
            conds: conds.iter().map(|c| if c == old { new.clone() } else { c.clone() }).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use xdata_catalog::university;
    use xdata_sql::parse_query;

    fn norm(sql: &str) -> NormQuery {
        normalize(&parse_query(sql).unwrap(), &university::schema()).unwrap()
    }

    #[test]
    fn single_join_space() {
        let q = norm("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        let ms = mutation_space(&q, MutationOptions::default());
        // One tree, one node, three alternative kinds; Right(i,t) ≡
        // Left(t,i) is still distinct from Left(i,t), Full is symmetric.
        assert_eq!(ms.join.len(), 3);
        assert!(ms.cmp.is_empty(), "equijoin pooled into eq class");
        assert!(ms.agg.is_empty());
    }

    #[test]
    fn exclude_full_matches_paper_eval() {
        let q = norm("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        let ms = mutation_space(&q, MutationOptions { include_full: false, tree_limit: 1000, ..Default::default() });
        assert_eq!(ms.join.len(), 2);
    }

    #[test]
    fn chain_of_three_join_mutants() {
        let q = norm(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
        );
        let ms = mutation_space(&q, MutationOptions::default());
        // 2 trees × 2 nodes × 3 kinds = 12, minus canonical duplicates.
        assert!(ms.join.len() >= 10, "got {}", ms.join.len());
        // All keys unique.
        let mut keys: Vec<&String> = ms.join.iter().map(|m| &m.key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), ms.join.len());
    }

    #[test]
    fn mutant_growth_is_superlinear() {
        let q3 = norm(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
        );
        let q4 = norm(
            "SELECT * FROM instructor i, teaches t, course c, takes k \
             WHERE i.id = t.id AND t.course_id = c.course_id AND c.course_id = k.course_id",
        );
        let m3 = mutation_space(&q3, MutationOptions::default()).join.len();
        let m4 = mutation_space(&q4, MutationOptions::default()).join.len();
        assert!(m4 > 2 * m3, "expected exponential-ish growth: {m3} -> {m4}");
    }

    #[test]
    fn outer_query_tree_is_fixed() {
        let q = norm(
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id",
        );
        let ms = mutation_space(&q, MutationOptions::default());
        // Fixed tree, 1 node, 3 mutants (to Inner, Right, Full).
        assert_eq!(ms.join.len(), 3);
        assert!(ms.join.iter().any(|m| m.to == JoinKind::Inner));
    }

    #[test]
    fn cmp_mutants_cover_all_alternatives() {
        let q = norm("SELECT * FROM instructor WHERE salary > 50000");
        let ms = mutation_space(&q, MutationOptions::default());
        assert_eq!(ms.cmp.len(), 5);
        assert!(ms.cmp.iter().all(|m| m.from == CompareOp::Gt && m.to != CompareOp::Gt));
    }

    #[test]
    fn agg_mutants_cover_space() {
        let q = norm("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id");
        let ms = mutation_space(&q, MutationOptions::default());
        assert_eq!(ms.agg.len(), 7);
        let q2 = norm("SELECT COUNT(*) FROM teaches");
        let ms2 = mutation_space(&q2, MutationOptions::default());
        assert!(ms2.agg.is_empty(), "COUNT(*) does not mutate");
    }

    #[test]
    fn apply_cmp_mutant_updates_tree() {
        let q = norm("SELECT * FROM teaches b, course c WHERE b.course_id = c.course_id + 10");
        let ms = mutation_space(&q, MutationOptions::default());
        let m = &ms.cmp[0];
        let q2 = apply_cmp_mutant(&q, m);
        assert_eq!(q2.preds[m.pred_idx].op, m.to);
        // The tree's node condition was re-derived with the new op.
        fn ops_in(t: &JoinTree, out: &mut Vec<CompareOp>) {
            if let JoinTree::Node { conds, left, right, .. } = t {
                out.extend(conds.iter().map(|c| c.op));
                ops_in(left, out);
                ops_in(right, out);
            }
        }
        let mut ops = Vec::new();
        ops_in(&q2.tree, &mut ops);
        assert!(ops.contains(&m.to));
        assert!(!ops.contains(&m.from));
    }

    #[test]
    fn apply_agg_mutant_updates_select() {
        let q = norm("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id");
        let ms = mutation_space(&q, MutationOptions::default());
        let m = ms.agg.iter().find(|m| m.to.distinct).unwrap();
        let q2 = apply_agg_mutant(&q, m);
        match &q2.select {
            SelectSpec::Aggregation { aggs, .. } => assert_eq!(aggs[0].func, m.to),
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn sub_mutants_cover_connective_space() {
        let q = norm("SELECT name FROM instructor WHERE id IN (SELECT s_id FROM advisor)");
        let ms = mutation_space(&q, MutationOptions::default());
        // IN with a link mutates to NOT IN, EXISTS, NOT EXISTS.
        assert_eq!(ms.sub.len(), 3);
        let tos: Vec<_> = ms.sub.iter().map(|m| m.to).collect();
        assert!(tos.contains(&(SubqueryKind::In, true)));
        assert!(tos.contains(&(SubqueryKind::Exists, false)));
        assert!(tos.contains(&(SubqueryKind::Exists, true)));
        let q2 = apply_sub_mutant(&q, &ms.sub[0]);
        assert_eq!((q2.subs[0].kind, q2.subs[0].negated), ms.sub[0].to);
        // Link survives the mutation so it can mutate back.
        assert!(q2.subs[0].link.is_some());
    }

    #[test]
    fn unlinked_exists_only_flips_negation() {
        let q = norm(
            "SELECT i.name FROM instructor i WHERE EXISTS \
             (SELECT s_id FROM advisor a WHERE a.i_id = i.id)",
        );
        let ms = mutation_space(&q, MutationOptions::default());
        assert_eq!(ms.sub.len(), 1);
        assert_eq!(ms.sub[0].to, (SubqueryKind::Exists, true));
    }

    #[test]
    fn like_mutants_cover_shape_family() {
        let q = norm("SELECT name FROM instructor WHERE name LIKE 'W%'");
        let ms = mutation_space(&q, MutationOptions::default());
        assert_eq!(ms.like.len(), 3);
        let tos: Vec<&str> = ms.like.iter().map(|m| m.to.as_str()).collect();
        assert!(tos.contains(&"W"), "{tos:?}");
        assert!(tos.contains(&"%W"), "{tos:?}");
        assert!(tos.contains(&"%W%"), "{tos:?}");
        let q2 = apply_like_mutant(&q, &ms.like[0]);
        assert_eq!(q2.likes[0].pattern, ms.like[0].to);
    }

    #[test]
    fn wildcard_core_patterns_do_not_mutate() {
        for pat in ["a%b", "a_b", "%", "%%"] {
            let q = norm(&format!("SELECT name FROM instructor WHERE name LIKE '{pat}'"));
            let ms = mutation_space(&q, MutationOptions::default());
            assert!(ms.like.is_empty(), "pattern {pat} has no structural family");
        }
    }

    #[test]
    fn null_check_mutants_flip() {
        let q = norm("SELECT * FROM teaches WHERE id IS NULL");
        let ms = mutation_space(&q, MutationOptions::default());
        assert_eq!(ms.null_check.len(), 1);
        assert!(ms.null_check[0].to);
        let q2 = apply_null_check_mutant(&q, &ms.null_check[0]);
        assert!(q2.null_checks[0].negated);
    }

    #[test]
    fn describe_is_informative() {
        let q = norm("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        let ms = mutation_space(&q, MutationOptions::default());
        let d = Mutant::Join(ms.join[0].clone()).describe(&q);
        assert!(d.contains("JOIN"), "{d}");
    }
}
