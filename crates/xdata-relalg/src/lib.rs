//! # xdata-relalg
//!
//! Relational-algebra middle layer of the X-Data reproduction: normalizes
//! parsed queries into the representation the paper's algorithms work on,
//! and generates the paper's mutation space.
//!
//! * [`NormQuery`] — the normalized query: relation occurrences (repeated
//!   relations get distinct names, §V-A), **equivalence classes** of
//!   attributes from equi-join conditions (§IV-B, Figure 2), the remaining
//!   predicates (non-equi joins and selections, pushed to the lowest
//!   possible level, §II), the join tree, and the aggregation spec.
//! * [`JoinTree`] — annotated join trees with per-node join kinds and
//!   conditions; semantic canonicalization modulo inner-join
//!   commutativity/associativity.
//! * [`enumerate::enumerate_trees`] — all equivalent join trees derivable
//!   from the join graph (including edges implied by equivalence classes —
//!   the Figure 2 motivation).
//! * [`mutation::MutationSpace`] — join-type, comparison-operator and
//!   aggregation-operator mutants (§II), deduplicated by canonical form.

pub mod decorrelate;
pub mod enumerate;
pub mod error;
pub mod fingerprint;
pub mod ir;
pub mod mutation;
pub mod normalize;
pub mod tree;

pub use error::RelAlgError;
pub use fingerprint::{canonical_form, structural_hash};
pub use ir::{
    AggFunc, AttrRef, HavingPred, LikePred, NormQuery, NullCheck, Occurrence, Operand, Pred,
    SelectSpec, SubCond, SubPred, SubqueryKind,
};
pub use mutation::{
    AggMutant, CmpMutant, DistinctMutant, JoinMutant, LikeMutant, Mutant, MutationSpace,
    NullCheckMutant, SubMutant,
};
pub use normalize::normalize;
pub use tree::JoinTree;
