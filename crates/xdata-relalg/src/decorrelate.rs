//! Lowering of `[NOT] IN (SELECT ...)` / `[NOT] EXISTS (SELECT ...)`
//! conjuncts into retained [`SubPred`] descriptors (§V-H: "Simple
//! subqueries which can be decorrelated into joins can be handled by
//! decorrelating the query and then applying our algorithms").
//!
//! Earlier revisions rewrote positive `IN` into an actual join merge; that
//! rewrite destroys the structure the subquery-connective mutation family
//! needs (`IN` ↔ `EXISTS` ↔ `NOT`-variants swap a *connective*, not a join
//! kind), so the subquery is now kept as a first-class predicate and the
//! solver lowers it with the same bounded quantifiers it already uses for
//! foreign keys and NOT-EXISTS targets. The accepted shape is the exactly
//! lowerable class:
//!
//! * the subquery reads a **single base relation** (no joins),
//! * without aggregation, GROUP BY, HAVING or further nesting,
//! * every WHERE conjunct links one subquery column to an *outer* operand
//!   (attribute or constant) — the correlated case — or compares it to a
//!   constant,
//! * `IN` additionally selects exactly one plain column.
//!
//! Duplicate-safety needs no primary-key side condition any more:
//! membership semantics are evaluated as membership, never as a join.

use std::collections::BTreeMap;

use xdata_catalog::{Schema, SqlType, Value};
use xdata_sql::{ColRef, CompareOp, Expr, FromItem, Query, SelectItem};

use crate::error::RelAlgError;
use crate::ir::{AttrRef, Occurrence, Operand, SubCond, SubPred, SubqueryKind};

/// Resolution context for outer-query column references inside subquery
/// conditions (implemented by the normalizer).
pub(crate) struct OuterScope<'a> {
    pub schema: &'a Schema,
    pub by_binding: &'a BTreeMap<String, usize>,
    pub occurrences: &'a [Occurrence],
}

impl OuterScope<'_> {
    fn resolve_colref(&self, c: &ColRef) -> Result<(AttrRef, SqlType), RelAlgError> {
        match &c.table {
            Some(t) => {
                let occ = *self
                    .by_binding
                    .get(t)
                    .ok_or_else(|| RelAlgError::UnknownRelation(t.clone()))?;
                let base = &self.occurrences[occ].base;
                let rel = self
                    .schema
                    .relation(base)
                    .ok_or_else(|| RelAlgError::UnknownRelation(base.clone()))?;
                let col = rel
                    .attr_pos(&c.column)
                    .ok_or_else(|| RelAlgError::UnknownColumn(c.to_string()))?;
                Ok((AttrRef::new(occ, col), rel.attr(col).ty))
            }
            None => {
                let mut found = None;
                for (i, occ) in self.occurrences.iter().enumerate() {
                    let rel = self
                        .schema
                        .relation(&occ.base)
                        .ok_or_else(|| RelAlgError::UnknownRelation(occ.base.clone()))?;
                    if let Some(col) = rel.attr_pos(&c.column) {
                        if found.is_some() {
                            return Err(RelAlgError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some((AttrRef::new(i, col), rel.attr(col).ty));
                    }
                }
                found.ok_or_else(|| RelAlgError::UnknownColumn(c.column.clone()))
            }
        }
    }

    fn resolve_expr(&self, e: &Expr) -> Result<(Operand, Option<SqlType>), RelAlgError> {
        match e {
            Expr::Column(c) => {
                let (a, ty) = self.resolve_colref(c)?;
                Ok((Operand::attr(a), Some(ty)))
            }
            Expr::ColumnPlus(c, k) => {
                let (a, ty) = self.resolve_colref(c)?;
                if ty == SqlType::Varchar {
                    return Err(RelAlgError::TypeMismatch(format!(
                        "arithmetic on string column `{c}`"
                    )));
                }
                Ok((Operand::Attr { attr: a, offset: *k }, Some(ty)))
            }
            Expr::Int(i) => Ok((Operand::Const(Value::Int(*i)), None)),
            Expr::Str(s) => Ok((Operand::Const(Value::Str(s.clone())), None)),
            Expr::Float(_) => Err(RelAlgError::Unsupported(
                "floating-point literals (the constraint solver operates over integers; \
                 scale the schema to integer units)"
                    .into(),
            )),
        }
    }
}

/// Lower every `[NOT] IN` and `[NOT] EXISTS` conjunct of `query` into a
/// [`SubPred`]. Outer columns resolve through `outer`.
pub(crate) fn lower_subqueries(
    query: &Query,
    outer: &OuterScope<'_>,
) -> Result<Vec<SubPred>, RelAlgError> {
    let mut out = Vec::new();
    for inp in &query.where_in {
        out.push(lower_one(
            SubqueryKind::In,
            inp.negated,
            Some(&inp.lhs),
            &inp.subquery,
            outer,
        )?);
    }
    for exp in &query.where_exists {
        out.push(lower_one(SubqueryKind::Exists, exp.negated, None, &exp.subquery, outer)?);
    }
    Ok(out)
}

/// One side of a subquery condition, classified by scope.
enum Side {
    /// A column of the subquery relation (inner scope shadows outer).
    Sub { col: usize, offset: i64 },
    /// An outer-query operand.
    Outer(Operand, Option<SqlType>),
}

fn lower_one(
    kind: SubqueryKind,
    negated: bool,
    link_lhs: Option<&Expr>,
    sub: &Query,
    outer: &OuterScope<'_>,
) -> Result<SubPred, RelAlgError> {
    let conn = match (kind, negated) {
        (SubqueryKind::In, false) => "IN",
        (SubqueryKind::In, true) => "NOT IN",
        (SubqueryKind::Exists, false) => "EXISTS",
        (SubqueryKind::Exists, true) => "NOT EXISTS",
    };
    // Shape: a single base relation, conjunctive WHERE, nothing else.
    if !sub.group_by.is_empty() || sub.has_aggregates() || !sub.having.is_empty() {
        return Err(RelAlgError::Unsupported(format!(
            "{conn} over an aggregated subquery"
        )));
    }
    if !sub.where_in.is_empty()
        || !sub.where_exists.is_empty()
        || !sub.where_like.is_empty()
        || !sub.where_null.is_empty()
    {
        return Err(RelAlgError::Unsupported(format!(
            "nested IN/EXISTS/LIKE/IS NULL inside a {conn} subquery"
        )));
    }
    let (table, alias) = match sub.from.as_slice() {
        [FromItem::Table { name, alias }] => (name.clone(), alias.clone()),
        _ => {
            return Err(RelAlgError::Unsupported(format!(
                "{conn} subquery must select from exactly one relation"
            )))
        }
    };
    let rel = outer
        .schema
        .relation(&table)
        .ok_or_else(|| RelAlgError::UnknownRelation(table.clone()))?;
    let binding = alias.unwrap_or_else(|| table.clone());

    // The membership link (IN only).
    let link = match (kind, link_lhs) {
        (SubqueryKind::In, Some(lhs)) => {
            let sel_col = match sub.select.as_slice() {
                [SelectItem::Column(c)] => {
                    if let Some(t) = &c.table {
                        if *t != binding {
                            return Err(RelAlgError::UnknownColumn(c.to_string()));
                        }
                    }
                    c.column.clone()
                }
                _ => {
                    return Err(RelAlgError::Unsupported(format!(
                        "{conn} subquery must select exactly one plain column"
                    )))
                }
            };
            let col = rel
                .attr_pos(&sel_col)
                .ok_or_else(|| RelAlgError::UnknownColumn(format!("{table}.{sel_col}")))?;
            let (l, lt) = outer.resolve_expr(lhs)?;
            check_cmp_types(lt, Some(rel.attr(col).ty), &l, CompareOp::Eq)?;
            Some((l, col))
        }
        (SubqueryKind::Exists, None) => None,
        _ => unreachable!("link_lhs is Some iff kind is In"),
    };

    // Classify each conjunct side against the subquery relation's scope.
    let classify = |e: &Expr| -> Result<Side, RelAlgError> {
        let sub_col = |c: &ColRef| -> Option<usize> {
            match &c.table {
                Some(t) if *t == binding => rel.attr_pos(&c.column),
                Some(_) => None,
                None => rel.attr_pos(&c.column),
            }
        };
        match e {
            Expr::Column(c) => {
                if let Some(col) = sub_col(c) {
                    return Ok(Side::Sub { col, offset: 0 });
                }
            }
            Expr::ColumnPlus(c, k) => {
                if let Some(col) = sub_col(c) {
                    return Ok(Side::Sub { col, offset: *k });
                }
            }
            _ => {}
        }
        let (o, ty) = outer.resolve_expr(e)?;
        Ok(Side::Outer(o, ty))
    };

    let mut conds = Vec::new();
    for c in &sub.where_clause {
        let (l, r) = (classify(&c.lhs)?, classify(&c.rhs)?);
        let (col, offset, op, rhs, rty) = match (l, r) {
            (Side::Sub { col, offset }, Side::Outer(o, ty)) => (col, offset, c.op, o, ty),
            (Side::Outer(o, ty), Side::Sub { col, offset }) => {
                (col, offset, mirror(c.op), o, ty)
            }
            (Side::Sub { .. }, Side::Sub { .. }) => {
                return Err(RelAlgError::Unsupported(format!(
                    "subquery-local join predicate inside a {conn} subquery \
                     (conditions must link one subquery column to an outer operand \
                     or constant)"
                )))
            }
            (Side::Outer(..), Side::Outer(..)) => {
                return Err(RelAlgError::Unsupported(format!(
                    "{conn} subquery condition references no subquery column"
                )))
            }
        };
        if offset != 0 {
            return Err(RelAlgError::Unsupported(format!(
                "arithmetic on a subquery column inside a {conn} subquery"
            )));
        }
        check_cmp_types(Some(rel.attr(col).ty), rty, &rhs, op)?;
        conds.push(SubCond { col, op, rhs });
    }

    Ok(SubPred { kind, negated, link, base: table, alias: binding, conds })
}

fn mirror(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Eq => CompareOp::Eq,
        CompareOp::Ne => CompareOp::Ne,
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::Le => CompareOp::Ge,
        CompareOp::Ge => CompareOp::Le,
    }
}

/// Type rules mirroring the normalizer's: no string↔number comparison, and
/// strings compare only with `=` / `<>` (dictionary-coded integers carry
/// no meaningful order).
fn check_cmp_types(
    sub_ty: Option<SqlType>,
    other_ty: Option<SqlType>,
    other: &Operand,
    op: CompareOp,
) -> Result<(), RelAlgError> {
    let str_involved = sub_ty == Some(SqlType::Varchar)
        || other_ty == Some(SqlType::Varchar)
        || matches!(other, Operand::Const(Value::Str(_)));
    if let (Some(a), Some(b)) = (sub_ty, other_ty) {
        if !a.comparable_with(b) {
            return Err(RelAlgError::TypeMismatch(format!("cannot compare {a} with {b}")));
        }
    }
    if str_involved {
        let num_involved = sub_ty.map(SqlType::is_numeric).unwrap_or(false)
            || other_ty.map(SqlType::is_numeric).unwrap_or(false)
            || matches!(other, Operand::Const(Value::Int(_)));
        if num_involved {
            return Err(RelAlgError::TypeMismatch("string compared with number".into()));
        }
        if !matches!(op, CompareOp::Eq | CompareOp::Ne) {
            return Err(RelAlgError::Unsupported(
                "ordered comparison on strings (only = and <> are supported for \
                 string attributes)"
                    .into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize;
    use crate::NormQuery;
    use xdata_catalog::university;
    use xdata_sql::parse_query;

    fn norm(sql: &str) -> Result<NormQuery, RelAlgError> {
        normalize(&parse_query(sql).unwrap(), &university::schema_with_fk_count(0))
    }

    #[test]
    fn simple_in_is_retained() {
        let q = norm(
            "SELECT name FROM instructor WHERE id IN (SELECT i_id FROM advisor \
             WHERE s_id > 10)",
        )
        .unwrap();
        assert_eq!(q.subs.len(), 1);
        let s = &q.subs[0];
        assert_eq!(s.kind, SubqueryKind::In);
        assert!(!s.negated);
        assert_eq!(s.base, "advisor");
        assert!(s.link.is_some());
        assert_eq!(s.conds.len(), 1);
        // The outer query itself keeps one occurrence: the subquery is a
        // predicate, not a join merge.
        assert_eq!(q.occurrences.len(), 1);
    }

    #[test]
    fn non_pk_membership_column_accepted() {
        // The old join rewrite demanded a PK column for duplicate safety;
        // membership evaluation has no such constraint.
        let q = norm(
            "SELECT name FROM instructor WHERE dept_id IN (SELECT dept_id FROM student)",
        )
        .unwrap();
        assert_eq!(q.subs.len(), 1);
    }

    #[test]
    fn correlated_exists_resolves_outer_attr() {
        let q = norm(
            "SELECT i.name FROM instructor i WHERE EXISTS \
             (SELECT s_id FROM advisor a WHERE a.i_id = i.id)",
        )
        .unwrap();
        let s = &q.subs[0];
        assert_eq!(s.kind, SubqueryKind::Exists);
        assert_eq!(s.link, None);
        assert_eq!(s.conds.len(), 1);
        assert!(s.conds[0].rhs.attr_ref().is_some(), "correlated rhs is an outer attr");
    }

    #[test]
    fn negated_forms_parse_through() {
        let q = norm(
            "SELECT name FROM instructor WHERE id NOT IN (SELECT s_id FROM advisor)",
        )
        .unwrap();
        assert!(q.subs[0].negated);
        let q = norm(
            "SELECT i.name FROM instructor i WHERE NOT EXISTS \
             (SELECT s_id FROM advisor a WHERE a.s_id = i.id)",
        )
        .unwrap();
        assert!(q.subs[0].negated);
        assert_eq!(q.subs[0].kind, SubqueryKind::Exists);
    }

    #[test]
    fn flipped_condition_orientation_normalizes() {
        // `outer op sub` mirrors into `sub op' outer`.
        let q = norm(
            "SELECT i.name FROM instructor i WHERE EXISTS \
             (SELECT s_id FROM advisor a WHERE i.id < a.i_id)",
        )
        .unwrap();
        assert_eq!(q.subs[0].conds[0].op, CompareOp::Gt);
    }

    #[test]
    fn nested_subquery_rejected() {
        let e = norm(
            "SELECT name FROM instructor WHERE id IN (SELECT s_id FROM advisor \
             WHERE s_id IN (SELECT s_id FROM advisor))",
        )
        .unwrap_err();
        assert!(matches!(e, RelAlgError::Unsupported(_)), "{e}");
    }

    #[test]
    fn aggregated_subquery_rejected() {
        let e = norm(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT s_id FROM advisor GROUP BY s_id)",
        );
        assert!(e.is_err());
    }

    #[test]
    fn multi_relation_subquery_rejected() {
        let e = norm(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT s_id FROM advisor, student WHERE s_id = sid)",
        )
        .unwrap_err();
        assert!(matches!(e, RelAlgError::Unsupported(_)));
    }

    #[test]
    fn sub_local_join_condition_rejected() {
        let e = norm(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT s_id FROM advisor WHERE s_id = i_id)",
        )
        .unwrap_err();
        assert!(matches!(e, RelAlgError::Unsupported(_)), "{e}");
    }

    #[test]
    fn type_mismatch_on_membership_rejected() {
        let e = norm(
            "SELECT name FROM instructor WHERE name IN (SELECT s_id FROM advisor)",
        )
        .unwrap_err();
        assert!(matches!(e, RelAlgError::TypeMismatch(_)), "{e}");
    }

    #[test]
    fn queries_without_subqueries_have_empty_subs() {
        let q = norm("SELECT * FROM instructor WHERE salary > 10").unwrap();
        assert!(q.subs.is_empty());
    }
}
