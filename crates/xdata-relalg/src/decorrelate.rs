//! Decorrelation of `IN (SELECT ...)` subqueries into joins (§V-H:
//! "Simple subqueries which can be decorrelated into joins can be handled
//! by decorrelating the query and then applying our algorithms").
//!
//! The rewrite `outer WHERE x IN (SELECT k FROM r WHERE σ)` →
//! `outer, r WHERE x = r.k AND σ` is only *bag-semantics-exact* when the
//! subquery cannot produce duplicate matches for one outer row. We accept
//! exactly the statically-safe case: the subquery is a single relation
//! (no joins), without aggregation, selecting a column that is the
//! relation's single-column primary key. Correlated predicates in the
//! subquery's WHERE clause are allowed — after merging they resolve
//! against the combined scope.

use xdata_catalog::Schema;
use xdata_sql::{ColRef, CompareOp, Condition, Expr, FromItem, Query, SelectItem};

use crate::error::RelAlgError;

/// Rewrite all `IN` conjuncts of `query` into joins. Queries without `IN`
/// are returned unchanged (cheaply cloned).
pub fn decorrelate(query: &Query, schema: &Schema) -> Result<Query, RelAlgError> {
    if query.where_in.is_empty() {
        return Ok(query.clone());
    }
    let mut out = query.clone();
    out.where_in.clear();
    // Scope: (binding, base relation) pairs visible to membership
    // left-hand sides — the original FROM plus every merged subquery
    // relation so far. Used to qualify unqualified lhs columns *before*
    // merging makes them ambiguous.
    let mut scope: Vec<(String, String)> = Vec::new();
    for item in &query.from {
        scope.extend(item.bindings());
    }
    let mut existing: Vec<String> = scope.iter().map(|(b, _)| b.clone()).collect();
    let qualify_outer = |scope: &[(String, String)],
                         schema: &Schema,
                         e: &Expr|
     -> Result<Expr, RelAlgError> {
        let fix = |c: &ColRef| -> Result<ColRef, RelAlgError> {
            if c.table.is_some() {
                return Ok(c.clone());
            }
            let mut found: Option<&str> = None;
            for (binding, base) in scope {
                if let Some(rel) = schema.relation(base) {
                    if rel.attr_pos(&c.column).is_some() {
                        if found.is_some() {
                            return Err(RelAlgError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some(binding);
                    }
                }
            }
            match found {
                Some(b) => Ok(ColRef::new(Some(b), &c.column)),
                None => Err(RelAlgError::UnknownColumn(c.column.clone())),
            }
        };
        Ok(match e {
            Expr::Column(c) => Expr::Column(fix(c)?),
            Expr::ColumnPlus(c, k) => Expr::ColumnPlus(fix(c)?, *k),
            other => other.clone(),
        })
    };
    let mut counter = 0usize;
    let mut pending = query.where_in.clone();
    while let Some(inp) = pending.pop() {
        // Pin the membership lhs to the scope as it stands *before* this
        // merge (inner-merged relations may carry same-named columns).
        let lhs = qualify_outer(&scope, schema, &inp.lhs)?;
        // Nested INs inside the subquery are hoisted to this level after
        // the subquery merges (each hoist adds another PK-joined relation,
        // preserving duplicate-safety inductively).
        let sub = (*inp.subquery).clone();

        // Validate the safe shape.
        if !sub.group_by.is_empty() || sub.has_aggregates() || !sub.having.is_empty() {
            return Err(RelAlgError::Unsupported(
                "IN over an aggregated subquery (not decorrelatable into a join)".into(),
            ));
        }
        let (table, alias) = match sub.from.as_slice() {
            [FromItem::Table { name, alias }] => (name.clone(), alias.clone()),
            _ => {
                return Err(RelAlgError::Unsupported(
                    "IN subquery must select from exactly one relation".into(),
                ))
            }
        };
        let rel = schema
            .relation(&table)
            .ok_or_else(|| RelAlgError::UnknownRelation(table.clone()))?;
        let sel_col = match sub.select.as_slice() {
            [SelectItem::Column(c)] => c.column.clone(),
            _ => {
                return Err(RelAlgError::Unsupported(
                    "IN subquery must select exactly one plain column".into(),
                ))
            }
        };
        let col_pos = rel
            .attr_pos(&sel_col)
            .ok_or_else(|| RelAlgError::UnknownColumn(format!("{table}.{sel_col}")))?;
        if !rel.is_primary_key(&[col_pos]) {
            return Err(RelAlgError::Unsupported(format!(
                "IN subquery column `{table}.{sel_col}` must be the relation's \
                 single-column primary key (duplicate-safety of the join rewrite)"
            )));
        }

        // Fresh binding for the merged relation.
        let fresh = loop {
            let candidate = format!("__s{counter}");
            counter += 1;
            if !existing.contains(&candidate) {
                break candidate;
            }
        };
        existing.push(fresh.clone());

        // Qualify the subquery's conditions into the fresh binding.
        let old_binding = alias.unwrap_or_else(|| table.clone());
        let requalify = |c: &ColRef| -> ColRef {
            match &c.table {
                Some(t) if *t == old_binding => ColRef::new(Some(&fresh), &c.column),
                Some(_) => c.clone(),
                None => {
                    // Unqualified: belongs to the subquery relation when the
                    // column exists there (inner scope shadows outer).
                    if rel.attr_pos(&c.column).is_some() {
                        ColRef::new(Some(&fresh), &c.column)
                    } else {
                        c.clone()
                    }
                }
            }
        };
        let requalify_expr = |e: &Expr| -> Expr {
            match e {
                Expr::Column(c) => Expr::Column(requalify(c)),
                Expr::ColumnPlus(c, k) => Expr::ColumnPlus(requalify(c), *k),
                other => other.clone(),
            }
        };

        out.from.push(FromItem::Table { name: table.clone(), alias: Some(fresh.clone()) });
        for c in &sub.where_clause {
            out.where_clause.push(Condition {
                lhs: requalify_expr(&c.lhs),
                op: c.op,
                rhs: requalify_expr(&c.rhs),
            });
        }
        // The membership link itself.
        out.where_clause.push(Condition {
            lhs,
            op: CompareOp::Eq,
            rhs: Expr::Column(ColRef::new(Some(&fresh), &sel_col)),
        });
        scope.push((fresh.clone(), table.clone()));
        // Hoist the subquery's own INs with requalified left-hand sides.
        for nested in &sub.where_in {
            pending.push(xdata_sql::InPred {
                lhs: requalify_expr(&nested.lhs),
                subquery: nested.subquery.clone(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_catalog::university;
    use xdata_sql::parse_query;

    fn decor(sql: &str) -> Result<Query, RelAlgError> {
        decorrelate(&parse_query(sql).unwrap(), &university::schema())
    }

    #[test]
    fn simple_in_becomes_join() {
        let q = decor(
            "SELECT name FROM instructor WHERE id IN (SELECT id FROM instructor \
             WHERE salary > 50000)",
        )
        .unwrap();
        assert!(q.where_in.is_empty());
        assert_eq!(q.from.len(), 2);
        // Link + copied selection.
        assert_eq!(q.where_clause.len(), 2);
        let s = q.to_string();
        assert!(s.contains("__s0"), "{s}");
    }

    #[test]
    fn correlated_predicate_survives() {
        // Correlation: the subquery references the outer instructor.
        let q = decor(
            "SELECT i.name FROM instructor i WHERE i.id IN \
             (SELECT sid FROM student WHERE dept_id = 3)",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        let s = q.to_string();
        assert!(s.contains("__s0.dept_id = 3"), "{s}");
        assert!(s.contains("i.id = __s0.sid"), "{s}");
    }

    #[test]
    fn nested_in_recurses() {
        let q = decor(
            "SELECT name FROM instructor WHERE id IN (SELECT sid FROM student \
             WHERE sid IN (SELECT s_id FROM advisor))",
        )
        .unwrap();
        assert!(q.where_in.is_empty());
        assert_eq!(q.from.len(), 3);
    }

    #[test]
    fn non_pk_column_rejected() {
        let e = decor(
            "SELECT name FROM instructor WHERE dept_id IN (SELECT dept_id FROM student)",
        )
        .unwrap_err();
        assert!(matches!(e, RelAlgError::Unsupported(_)), "{e}");
    }

    #[test]
    fn aggregated_subquery_rejected() {
        let e = decor(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT sid FROM student GROUP BY sid)",
        );
        assert!(e.is_err());
    }

    #[test]
    fn multi_relation_subquery_rejected() {
        let e = decor(
            "SELECT name FROM instructor WHERE id IN \
             (SELECT sid FROM student, advisor WHERE sid = s_id)",
        )
        .unwrap_err();
        assert!(matches!(e, RelAlgError::Unsupported(_)));
    }

    #[test]
    fn queries_without_in_unchanged() {
        let src = "SELECT * FROM instructor WHERE salary > 10";
        let q = decor(src).unwrap();
        assert_eq!(q, parse_query(src).unwrap());
    }
}
