//! Structural fingerprints of normalized queries.
//!
//! Real grading batches are heavily duplicated: out of a thousand student
//! submissions most are the reference query re-typed, with FROM lists
//! reordered and predicates flipped. [`canonical_form`] renders a
//! [`NormQuery`] into a string that is invariant under those
//! semantics-preserving rewrites, so the batch grader can execute each
//! equivalence class once and share the verdict.
//!
//! The form is **sound but conservative**: equal forms imply the two
//! queries compute the same result on every database (they are the same
//! query up to occurrence renaming, predicate orientation/order and
//! inner-join tree rewrites — exactly the invariances normalization and
//! [`JoinTree::canonical_key`] already establish); unequal forms make no
//! claim, so a missed collapse costs one extra execution, never a wrong
//! verdict. Self-joins are the deliberate conservative case: occurrences
//! of the same base relation keep their written order rather than trying
//! all permutations.

use xdata_sql::CompareOp;

use crate::ir::{AttrRef, NormQuery, Operand, Pred, SelectSpec, SubPred};
use crate::tree::JoinTree;

/// Render `q` into its canonical structural form. Two queries with equal
/// forms are equivalent after normalization and always grade identically.
pub fn canonical_form(q: &NormQuery) -> String {
    // Canonical occurrence numbering: order by base relation name, keeping
    // the written order among occurrences of the same base (stable sort).
    let mut order: Vec<usize> = (0..q.occurrences.len()).collect();
    order.sort_by(|&a, &b| q.occurrences[a].base.cmp(&q.occurrences[b].base).then(a.cmp(&b)));
    let mut perm = vec![0usize; order.len()];
    for (new, &old) in order.iter().enumerate() {
        perm[old] = new;
    }
    let remap = |a: AttrRef| AttrRef::new(perm[a.occ], a.col);

    let rels: Vec<&str> = order.iter().map(|&i| q.occurrences[i].base.as_str()).collect();

    let mut classes: Vec<Vec<AttrRef>> = q
        .eq_classes
        .iter()
        .map(|c| {
            let mut c: Vec<AttrRef> = c.iter().copied().map(remap).collect();
            c.sort_unstable();
            c
        })
        .collect();
    classes.sort_unstable();
    let classes: Vec<String> = classes.iter().map(|c| render_attrs(c)).collect();

    // Predicates are a conjunction: order and operand orientation are
    // irrelevant, so each renders in its lexicographically smaller
    // orientation and the list is sorted.
    let mut preds: Vec<String> = q.preds.iter().map(|p| render_pred(p, &remap)).collect();
    preds.sort_unstable();

    let tree = remap_tree(&q.tree, &perm).canonical_key();

    // Retained subquery / LIKE / NULL-check predicates are conjuncts too:
    // each renders with remapped outer references and the lists sort.
    let mut subs: Vec<String> = q.subs.iter().map(|s| render_sub(s, &remap)).collect();
    subs.sort_unstable();
    let mut likes: Vec<String> = q
        .likes
        .iter()
        .map(|l| {
            let a = remap(l.attr);
            format!("#{}.{} {} '{}'", a.occ, a.col, if l.negated { "NOT LIKE" } else { "LIKE" }, l.pattern)
        })
        .collect();
    likes.sort_unstable();
    let mut nulls: Vec<String> = q
        .null_checks
        .iter()
        .map(|n| {
            let a = remap(n.attr);
            format!("#{}.{} IS {}NULL", a.occ, a.col, if n.negated { "NOT " } else { "" })
        })
        .collect();
    nulls.sort_unstable();

    let select = match &q.select {
        // `*` expands in *written* occurrence order at execution time, so
        // the output column order depends on the FROM list: the star
        // renders with the written order expressed in canonical ids, and
        // commuted-FROM star queries stay distinct.
        SelectSpec::Star => {
            let written: Vec<String> = perm.iter().map(|p| p.to_string()).collect();
            format!("*[{}]", written.join(","))
        }
        SelectSpec::Columns(cols) => {
            // Projection order is output order — not sorted.
            let cols: Vec<AttrRef> = cols.iter().copied().map(remap).collect();
            format!("cols{}", render_attrs(&cols))
        }
        SelectSpec::Aggregation { group_by, aggs, having } => {
            let group: Vec<AttrRef> = group_by.iter().copied().map(remap).collect();
            let aggs: Vec<String> = aggs
                .iter()
                .map(|a| format!("{}({})", a.func.display_name(), render_opt_attr(a.arg, &remap)))
                .collect();
            let mut having: Vec<String> = having
                .iter()
                .map(|h| {
                    format!(
                        "{}({}) {} {}",
                        h.func.display_name(),
                        render_opt_attr(h.arg, &remap),
                        h.cmp.sql_symbol(),
                        h.value
                    )
                })
                .collect();
            having.sort_unstable(); // HAVING conjuncts commute
            format!("group{} aggs[{}] having[{}]", render_attrs(&group), aggs.join(","), having.join(" AND "))
        }
    };

    format!(
        "rels=[{}] eq=[{}] pred=[{}] sub=[{}] like=[{}] null=[{}] tree={} distinct={} select={}",
        rels.join(","),
        classes.join(";"),
        preds.join(" AND "),
        subs.join(" AND "),
        likes.join(" AND "),
        nulls.join(" AND "),
        tree,
        q.distinct,
        select
    )
}

/// Render one retained subquery predicate. Subquery conditions commute
/// (conjunction), so they sort; outer references remap to canonical ids;
/// the subquery's written alias is normalization noise and is omitted.
fn render_sub(s: &SubPred, remap: &impl Fn(AttrRef) -> AttrRef) -> String {
    let link = match &s.link {
        Some((o, col)) => format!("{}->{}", render_operand(o, remap), col),
        None => "-".to_string(),
    };
    let mut conds: Vec<String> = s
        .conds
        .iter()
        .map(|c| format!(".{} {} {}", c.col, c.op.sql_symbol(), render_operand(&c.rhs, remap)))
        .collect();
    conds.sort_unstable();
    format!("{} {}({} link={} where[{}])", s.connective_name(), s.base, s.base, link, conds.join(" AND "))
}

/// 128-bit FNV-style hash of [`canonical_form`], for compact display and
/// metric labels; the grader groups by the full form, so hash collisions
/// cannot mis-grade anything.
pub fn structural_hash(q: &NormQuery) -> u128 {
    let s = canonical_form(q);
    let h1 = fnv1a(s.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let h2 = fnv1a(s.as_bytes(), 0x9e37_79b9_7f4a_7c15);
    ((h1 as u128) << 64) | h2 as u128
}

fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn render_attrs(attrs: &[AttrRef]) -> String {
    let parts: Vec<String> = attrs.iter().map(|a| format!("#{}.{}", a.occ, a.col)).collect();
    format!("[{}]", parts.join(","))
}

fn render_opt_attr(a: Option<AttrRef>, remap: &impl Fn(AttrRef) -> AttrRef) -> String {
    match a {
        Some(a) => {
            let a = remap(a);
            format!("#{}.{}", a.occ, a.col)
        }
        None => "*".to_string(),
    }
}

fn render_operand(o: &Operand, remap: &impl Fn(AttrRef) -> AttrRef) -> String {
    match o {
        Operand::Attr { attr, offset } => {
            let a = remap(*attr);
            if *offset == 0 {
                format!("#{}.{}", a.occ, a.col)
            } else {
                format!("#{}.{}{:+}", a.occ, a.col, offset)
            }
        }
        Operand::Const(v) => format!("{v}"),
    }
}

fn mirror(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Eq => CompareOp::Eq,
        CompareOp::Ne => CompareOp::Ne,
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::Le => CompareOp::Ge,
        CompareOp::Ge => CompareOp::Le,
    }
}

fn render_pred(p: &Pred, remap: &impl Fn(AttrRef) -> AttrRef) -> String {
    let a = format!(
        "{} {} {}",
        render_operand(&p.lhs, remap),
        p.op.sql_symbol(),
        render_operand(&p.rhs, remap)
    );
    let b = format!(
        "{} {} {}",
        render_operand(&p.rhs, remap),
        mirror(p.op).sql_symbol(),
        render_operand(&p.lhs, remap)
    );
    // `x > 5` and `5 < x` are one predicate; pick the smaller rendering.
    a.min(b)
}

/// The tree with leaf occurrence indices renumbered; per-node conditions
/// are dropped — [`JoinTree::canonical_key`] ignores them, and they derive
/// deterministically from the (already-rendered) classes and predicates.
fn remap_tree(t: &JoinTree, perm: &[usize]) -> JoinTree {
    match t {
        JoinTree::Leaf(i) => JoinTree::Leaf(perm[*i]),
        JoinTree::Node { kind, left, right, .. } => JoinTree::Node {
            kind: *kind,
            left: Box::new(remap_tree(left, perm)),
            right: Box::new(remap_tree(right, perm)),
            conds: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize;
    use xdata_catalog::university;
    use xdata_sql::parse_query;

    fn form(sql: &str) -> String {
        let schema = university::schema();
        canonical_form(&normalize(&parse_query(sql).unwrap(), &schema).unwrap())
    }

    #[test]
    fn commuted_from_list_collapses() {
        // With an explicit select list the output is unchanged by FROM
        // order, so the commuted query collapses…
        assert_eq!(
            form("SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id"),
            form("SELECT i.name, t.course_id FROM teaches t, instructor i WHERE t.id = i.id"),
        );
        // …but `SELECT *` expands in written FROM order, so commuting the
        // list changes the output column order and must stay distinct.
        assert_ne!(
            form("SELECT * FROM instructor i, teaches t WHERE i.id = t.id"),
            form("SELECT * FROM teaches t, instructor i WHERE t.id = i.id"),
        );
    }

    #[test]
    fn explicit_join_collapses_with_comma_from() {
        assert_eq!(
            form("SELECT * FROM instructor i, teaches t WHERE i.id = t.id"),
            form("SELECT * FROM instructor i JOIN teaches t ON i.id = t.id"),
        );
    }

    #[test]
    fn flipped_predicate_collapses() {
        assert_eq!(
            form("SELECT i.name FROM instructor i WHERE i.salary > 50000"),
            form("SELECT i.name FROM instructor i WHERE 50000 < i.salary"),
        );
    }

    #[test]
    fn different_operator_distinct() {
        assert_ne!(
            form("SELECT i.name FROM instructor i WHERE i.salary > 50000"),
            form("SELECT i.name FROM instructor i WHERE i.salary >= 50000"),
        );
    }

    #[test]
    fn different_join_kind_distinct() {
        assert_ne!(
            form("SELECT * FROM instructor i, teaches t WHERE i.id = t.id"),
            form("SELECT * FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id"),
        );
    }

    #[test]
    fn distinct_flag_distinct() {
        assert_ne!(
            form("SELECT i.name FROM instructor i"),
            form("SELECT DISTINCT i.name FROM instructor i"),
        );
    }

    #[test]
    fn aggregation_spec_participates() {
        assert_ne!(
            form("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id"),
            form("SELECT dept_id, AVG(salary) FROM instructor GROUP BY dept_id"),
        );
        assert_eq!(
            form("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id"),
            form("SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id"),
        );
    }

    #[test]
    fn subquery_connective_participates() {
        // Same subquery, different connective polarity: must stay distinct
        // (a collapse here would mis-grade a NOT IN as an IN).
        assert_ne!(
            form("SELECT name FROM instructor WHERE id IN (SELECT s_id FROM advisor)"),
            form("SELECT name FROM instructor WHERE id NOT IN (SELECT s_id FROM advisor)"),
        );
        // Reordered subquery conditions collapse (conjunction commutes).
        assert_eq!(
            form(
                "SELECT i.name FROM instructor i WHERE EXISTS \
                 (SELECT s_id FROM advisor a WHERE a.i_id = i.id AND a.s_id > 3)"
            ),
            form(
                "SELECT i.name FROM instructor i WHERE EXISTS \
                 (SELECT s_id FROM advisor a WHERE a.s_id > 3 AND a.i_id = i.id)"
            ),
        );
        // The subquery alias is normalization noise.
        assert_eq!(
            form(
                "SELECT i.name FROM instructor i WHERE EXISTS \
                 (SELECT s_id FROM advisor a WHERE a.i_id = i.id)"
            ),
            form(
                "SELECT i.name FROM instructor i WHERE EXISTS \
                 (SELECT s_id FROM advisor b WHERE b.i_id = i.id)"
            ),
        );
    }

    #[test]
    fn like_and_null_checks_participate() {
        assert_ne!(
            form("SELECT name FROM instructor WHERE name LIKE 'W%'"),
            form("SELECT name FROM instructor WHERE name LIKE '%W'"),
        );
        assert_ne!(
            form("SELECT name FROM instructor WHERE name LIKE 'W%'"),
            form("SELECT name FROM instructor WHERE name NOT LIKE 'W%'"),
        );
        assert_ne!(
            form("SELECT * FROM teaches WHERE id IS NULL"),
            form("SELECT * FROM teaches WHERE id IS NOT NULL"),
        );
        assert_eq!(
            form("SELECT name FROM instructor WHERE name LIKE 'W%' AND salary > 5"),
            form("SELECT name FROM instructor WHERE salary > 5 AND name LIKE 'W%'"),
        );
    }

    #[test]
    fn hash_matches_form_equality() {
        let schema = university::schema();
        let a = normalize(
            &parse_query("SELECT i.name FROM instructor i, teaches t WHERE i.id = t.id").unwrap(),
            &schema,
        )
        .unwrap();
        let b = normalize(
            &parse_query("SELECT i.name FROM teaches t, instructor i WHERE t.id = i.id").unwrap(),
            &schema,
        )
        .unwrap();
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }
}
