//! The normalized query representation the paper's algorithms operate on.
//!
//! Normalization (§V-B preprocessing):
//!
//! 1. every relation occurrence gets a distinct name but remembers its base
//!    relation (repeated occurrences share the solver's tuple array, §V-A);
//! 2. equi-join conditions collapse into **equivalence classes** of
//!    attributes (§IV-B, Figure 2) and are dropped from the predicate list;
//! 3. all other predicates — non-equi joins like `B.x = C.x + 10` and
//!    selections like `dept = 'CS'` — are retained in [`NormQuery::preds`],
//!    conceptually pushed to the lowest possible level (§II).

use std::fmt;

use xdata_catalog::Value;
use xdata_sql::{AggOp, CompareOp, JoinKind};

use crate::tree::JoinTree;

/// One relation occurrence in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    /// The distinct binding name (alias, or table name when unaliased).
    pub name: String,
    /// The base relation in the schema.
    pub base: String,
}

/// An attribute of an occurrence: `(occurrence index, column position)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrRef {
    pub occ: usize,
    pub col: usize,
}

impl AttrRef {
    pub fn new(occ: usize, col: usize) -> Self {
        AttrRef { occ, col }
    }
}

/// One side of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `attr + offset` (offset 0 for a plain column).
    Attr { attr: AttrRef, offset: i64 },
    /// A literal.
    Const(Value),
}

impl Operand {
    pub fn attr(a: AttrRef) -> Operand {
        Operand::Attr { attr: a, offset: 0 }
    }

    pub fn attr_ref(&self) -> Option<AttrRef> {
        match self {
            Operand::Attr { attr, .. } => Some(*attr),
            Operand::Const(_) => None,
        }
    }
}

/// A retained predicate (non-equi join condition or selection).
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    pub lhs: Operand,
    pub op: CompareOp,
    pub rhs: Operand,
}

impl Pred {
    /// Occurrence indices this predicate touches (1 = selection,
    /// ≥2 = join predicate).
    pub fn occurrences(&self) -> Vec<usize> {
        let mut v: Vec<usize> = [&self.lhs, &self.rhs]
            .iter()
            .filter_map(|o| o.attr_ref().map(|a| a.occ))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether this is a single-relation selection predicate.
    pub fn is_selection(&self) -> bool {
        self.occurrences().len() <= 1
    }

    /// Whether this is an equi-join between two plain attributes (these are
    /// absorbed into equivalence classes during normalization and should not
    /// appear in `NormQuery::preds`).
    pub fn is_plain_equijoin(&self) -> bool {
        self.op == CompareOp::Eq
            && matches!(self.lhs, Operand::Attr { offset: 0, .. })
            && matches!(self.rhs, Operand::Attr { offset: 0, .. })
            && self.occurrences().len() == 2
    }
}

/// Which connective binds a retained subquery to the outer query (§V-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubqueryKind {
    /// `expr [NOT] IN (SELECT col FROM r WHERE ...)`.
    In,
    /// `[NOT] EXISTS (SELECT ... FROM r WHERE ...)`.
    Exists,
}

/// One resolved conjunct of a retained subquery's WHERE clause:
/// `sub.col op rhs`, where `rhs` is an outer-query operand (attribute or
/// constant) — the correlated case — or a constant selection on the
/// subquery relation itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SubCond {
    /// Column position in the subquery's base relation.
    pub col: usize,
    pub op: CompareOp,
    /// Outer operand: any [`AttrRef`] refers to an *outer* occurrence.
    pub rhs: Operand,
}

/// A retained `[NOT] IN` / `[NOT] EXISTS` subquery predicate. The
/// subquery is restricted to a single base relation with conjunctive
/// conditions (each linking one subquery column to an outer operand), no
/// aggregation and no further nesting — the class the bounded-quantifier
/// lowering handles exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SubPred {
    pub kind: SubqueryKind,
    pub negated: bool,
    /// For `IN`: the outer membership operand and the selected column
    /// position in the subquery relation. `None` for `EXISTS`.
    pub link: Option<(Operand, usize)>,
    /// Base relation of the subquery.
    pub base: String,
    /// The subquery's binding name (alias, or table name), for display.
    pub alias: String,
    /// Resolved subquery WHERE conjuncts.
    pub conds: Vec<SubCond>,
}

impl SubPred {
    /// The four `(kind, negated)` connective variants of the §V-H space.
    pub const CONNECTIVES: [(SubqueryKind, bool); 4] = [
        (SubqueryKind::In, false),
        (SubqueryKind::In, true),
        (SubqueryKind::Exists, false),
        (SubqueryKind::Exists, true),
    ];

    /// Outer attributes referenced by this subquery predicate (the
    /// membership operand and correlated condition operands).
    pub fn outer_attrs(&self) -> Vec<AttrRef> {
        let mut v: Vec<AttrRef> = Vec::new();
        if let Some((link, _)) = &self.link {
            v.extend(link.attr_ref());
        }
        v.extend(self.conds.iter().filter_map(|c| c.rhs.attr_ref()));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Render the connective for messages: `IN`, `NOT IN`, `EXISTS`,
    /// `NOT EXISTS`.
    pub fn connective_name(&self) -> &'static str {
        match (self.kind, self.negated) {
            (SubqueryKind::In, false) => "IN",
            (SubqueryKind::In, true) => "NOT IN",
            (SubqueryKind::Exists, false) => "EXISTS",
            (SubqueryKind::Exists, true) => "NOT EXISTS",
        }
    }
}

/// A resolved `[NOT] LIKE` predicate on a string attribute. Patterns use
/// SQL `%`/`_` wildcards; the solver reduces them to dictionary-membership
/// constraints (string values are dictionary-coded integers).
#[derive(Debug, Clone, PartialEq)]
pub struct LikePred {
    pub attr: AttrRef,
    pub negated: bool,
    pub pattern: String,
}

impl LikePred {
    /// Split a simple `[%]core[%]` pattern into `(leading %, trailing %,
    /// core)`. Returns `None` when the pattern has no structural family:
    /// the core is empty, or contains `_` or an interior `%`.
    pub fn simple_shape(pattern: &str) -> Option<(bool, bool, String)> {
        let lead = pattern.starts_with('%');
        let trail = pattern.len() > lead as usize && pattern.ends_with('%');
        let core = &pattern[lead as usize..pattern.len() - trail as usize];
        if core.is_empty() || core.contains('%') || core.contains('_') {
            return None;
        }
        Some((lead, trail, core.to_string()))
    }
}

/// A resolved `IS [NOT] NULL` check on an attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct NullCheck {
    pub attr: AttrRef,
    pub negated: bool,
}

/// Aggregate function: operator + DISTINCT flag. The paper's space has
/// eight members (§II); `COUNT(*)` is modelled as `COUNT` with no argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggFunc {
    pub op: AggOp,
    pub distinct: bool,
}

impl AggFunc {
    /// The paper's eight aggregate operators: MAX, MIN, SUM, AVG, COUNT,
    /// SUM(DISTINCT), AVG(DISTINCT), COUNT(DISTINCT). (MAX/MIN DISTINCT are
    /// identical to their plain forms and therefore not separate members.)
    pub const ALL: [AggFunc; 8] = [
        AggFunc { op: AggOp::Max, distinct: false },
        AggFunc { op: AggOp::Min, distinct: false },
        AggFunc { op: AggOp::Sum, distinct: false },
        AggFunc { op: AggOp::Avg, distinct: false },
        AggFunc { op: AggOp::Count, distinct: false },
        AggFunc { op: AggOp::Sum, distinct: true },
        AggFunc { op: AggOp::Avg, distinct: true },
        AggFunc { op: AggOp::Count, distinct: true },
    ];

    pub fn display_name(&self) -> String {
        if self.distinct {
            format!("{}(DISTINCT)", self.op.sql_name())
        } else {
            self.op.sql_name().to_string()
        }
    }
}

/// One aggregate item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    /// `None` = `COUNT(*)`.
    pub arg: Option<AttrRef>,
}

/// A resolved `HAVING` conjunct: `func(arg) cmp value` — constrained
/// aggregation, this reproduction's extension of the paper's class.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingPred {
    pub func: AggFunc,
    /// `None` = `COUNT(*)`.
    pub arg: Option<AttrRef>,
    pub cmp: CompareOp,
    pub value: i64,
}

impl std::fmt::Display for HavingPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}({}) {} {}",
            self.func.display_name(),
            match self.arg {
                Some(a) => format!("#{}.{}", a.occ, a.col),
                None => "*".to_string(),
            },
            self.cmp.sql_symbol(),
            self.value
        )
    }
}

/// What the query projects.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectSpec {
    /// `SELECT *` — all columns of all occurrences in order.
    Star,
    /// Explicit column list (no aggregates).
    Columns(Vec<AttrRef>),
    /// Aggregation query: group-by columns then aggregates, optionally
    /// constrained by HAVING conjuncts.
    Aggregation { group_by: Vec<AttrRef>, aggs: Vec<AggSpec>, having: Vec<HavingPred> },
}

/// A fully normalized query.
#[derive(Debug, Clone, PartialEq)]
pub struct NormQuery {
    pub occurrences: Vec<Occurrence>,
    /// Equivalence classes of equi-joined attributes, each with ≥ 2 members,
    /// sorted and deduplicated.
    pub eq_classes: Vec<Vec<AttrRef>>,
    /// Retained predicates: non-equi joins and selections.
    pub preds: Vec<Pred>,
    /// The query's join tree as written (left-deep over the FROM list for
    /// comma-joined relations). For inner-only queries this is just one
    /// member of the equivalent-tree space.
    pub tree: JoinTree,
    /// Whether any outer join appears (fixes the tree shape for mutation).
    pub has_outer: bool,
    /// `SELECT DISTINCT`: duplicate elimination on the projected rows.
    pub distinct: bool,
    pub select: SelectSpec,
    /// Retained `[NOT] IN` / `[NOT] EXISTS` subquery predicates (§V-H).
    pub subs: Vec<SubPred>,
    /// Retained `[NOT] LIKE` string predicates.
    pub likes: Vec<LikePred>,
    /// Retained `IS [NOT] NULL` checks.
    pub null_checks: Vec<NullCheck>,
}

impl NormQuery {
    /// Number of join nodes in the original tree.
    pub fn join_count(&self) -> usize {
        self.occurrences.len().saturating_sub(1)
    }

    /// The equivalence class containing `a`, if any.
    pub fn eq_class_of(&self, a: AttrRef) -> Option<usize> {
        self.eq_classes.iter().position(|c| c.contains(&a))
    }

    /// All attributes of all occurrences used anywhere in the query
    /// (equivalence classes, predicates, select, group by, aggregates).
    pub fn used_attrs(&self) -> Vec<AttrRef> {
        let mut out: Vec<AttrRef> = Vec::new();
        for c in &self.eq_classes {
            out.extend(c.iter().copied());
        }
        for p in &self.preds {
            out.extend([&p.lhs, &p.rhs].iter().filter_map(|o| o.attr_ref()));
        }
        for s in &self.subs {
            out.extend(s.outer_attrs());
        }
        out.extend(self.likes.iter().map(|l| l.attr));
        out.extend(self.null_checks.iter().map(|n| n.attr));
        match &self.select {
            SelectSpec::Star => {}
            SelectSpec::Columns(cols) => out.extend(cols.iter().copied()),
            SelectSpec::Aggregation { group_by, aggs, having } => {
                out.extend(group_by.iter().copied());
                out.extend(aggs.iter().filter_map(|a| a.arg));
                out.extend(having.iter().filter_map(|h| h.arg));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Selection predicates (single occurrence) of `preds`.
    pub fn selections(&self) -> impl Iterator<Item = (usize, &Pred)> {
        self.preds.iter().enumerate().filter(|(_, p)| p.is_selection())
    }

    /// Multi-relation non-equi predicates of `preds`.
    pub fn join_preds(&self) -> impl Iterator<Item = (usize, &Pred)> {
        self.preds.iter().enumerate().filter(|(_, p)| !p.is_selection())
    }

    /// Render an attribute as `binding.column` using the schema for column
    /// names. Positions out of range render positionally (defensive).
    pub fn attr_name(&self, schema: &xdata_catalog::Schema, a: AttrRef) -> String {
        let occ = &self.occurrences[a.occ];
        match schema.relation(&occ.base).and_then(|r| r.attributes.get(a.col)) {
            Some(attr) => format!("{}.{}", occ.name, attr.name),
            None => format!("{}.#{}", occ.name, a.col),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn op(o: &Operand, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match o {
                Operand::Attr { attr, offset } => {
                    write!(f, "#{}.{}", attr.occ, attr.col)?;
                    if *offset != 0 {
                        write!(f, "{:+}", offset)?;
                    }
                    Ok(())
                }
                Operand::Const(v) => write!(f, "{v}"),
            }
        }
        op(&self.lhs, f)?;
        write!(f, " {} ", self.op.sql_symbol())?;
        op(&self.rhs, f)
    }
}

/// Re-exported for convenience of downstream crates.
pub use xdata_sql::JoinKind as JoinKindRe;

/// All join-type alternatives for a node of kind `k` — the three mutation
/// targets of the paper's join-type space.
pub fn join_kind_mutations(k: JoinKind) -> Vec<JoinKind> {
    JoinKind::ALL.iter().copied().filter(|x| *x != k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_classification() {
        let sel = Pred {
            lhs: Operand::attr(AttrRef::new(0, 1)),
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::Int(5)),
        };
        assert!(sel.is_selection());
        assert!(!sel.is_plain_equijoin());

        let join = Pred {
            lhs: Operand::attr(AttrRef::new(0, 0)),
            op: CompareOp::Eq,
            rhs: Operand::attr(AttrRef::new(1, 0)),
        };
        assert!(!join.is_selection());
        assert!(join.is_plain_equijoin());

        let offset_join = Pred {
            lhs: Operand::attr(AttrRef::new(0, 0)),
            op: CompareOp::Eq,
            rhs: Operand::Attr { attr: AttrRef::new(1, 0), offset: 10 },
        };
        assert!(!offset_join.is_plain_equijoin(), "B.x = C.x + 10 is a non-equi join");
    }

    #[test]
    fn agg_space_has_eight_members() {
        assert_eq!(AggFunc::ALL.len(), 8);
        let distinct_count = AggFunc::ALL.iter().filter(|a| a.distinct).count();
        assert_eq!(distinct_count, 3);
    }

    #[test]
    fn join_kind_mutations_exclude_self() {
        for k in JoinKind::ALL {
            let m = join_kind_mutations(k);
            assert_eq!(m.len(), 3);
            assert!(!m.contains(&k));
        }
    }

    #[test]
    fn self_join_pred_is_selection() {
        // advisor.s_id = advisor.i_id touches one occurrence only.
        let p = Pred {
            lhs: Operand::attr(AttrRef::new(2, 0)),
            op: CompareOp::Eq,
            rhs: Operand::attr(AttrRef::new(2, 1)),
        };
        assert!(p.is_selection());
        assert_eq!(p.occurrences(), vec![2]);
    }
}
