//! Enumeration of equivalent join trees.
//!
//! For a query whose FROM clause is a plain relation list, any join tree
//! over the join graph computes the same result, and the paper's join-type
//! mutation space covers "all equivalent join trees that can be derived
//! from the relations in the FROM clause" (§II). The join graph's edges
//! come from the retained join predicates **and** from equivalence classes
//! — two relations sharing a class are joinable even if the user never
//! wrote that literal condition (the Figure 2 motivation).
//!
//! Trees are enumerated bottom-up over connected vertex subsets; only
//! splits with both sides connected and at least one cross edge are
//! considered (no cross products, matching how the paper applies join
//! predicates at the earliest possible point).

use std::collections::HashMap;

use xdata_sql::JoinKind;

use crate::ir::NormQuery;
use crate::tree::JoinTree;

/// Adjacency masks of the join graph: `adj[i]` has bit `j` set when
/// occurrences `i` and `j` are linked by an equivalence class or a retained
/// join predicate.
pub fn join_graph(q: &NormQuery) -> Vec<u64> {
    let n = q.occurrences.len();
    let mut adj = vec![0u64; n];
    let mut link = |a: usize, b: usize| {
        if a != b {
            adj[a] |= 1 << b;
            adj[b] |= 1 << a;
        }
    };
    for ec in &q.eq_classes {
        for x in ec {
            for y in ec {
                link(x.occ, y.occ);
            }
        }
    }
    for p in q.preds.iter().filter(|p| !p.is_selection()) {
        let occs = p.occurrences();
        for (i, a) in occs.iter().enumerate() {
            for b in &occs[i + 1..] {
                link(*a, *b);
            }
        }
    }
    adj
}

fn is_connected(mask: u64, adj: &[u64]) -> bool {
    if mask == 0 {
        return false;
    }
    let start = mask.trailing_zeros() as usize;
    let mut seen = 1u64 << start;
    let mut frontier = seen;
    while frontier != 0 {
        let mut next = 0u64;
        let mut f = frontier;
        while f != 0 {
            let v = f.trailing_zeros() as usize;
            f &= f - 1;
            next |= adj[v] & mask & !seen;
        }
        seen |= next;
        frontier = next;
    }
    seen == mask
}

fn has_cross_edge(a: u64, b: u64, adj: &[u64]) -> bool {
    let mut m = a;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        m &= m - 1;
        if adj[v] & b != 0 {
            return true;
        }
    }
    false
}

/// Enumerate all (unordered) inner-join trees over the join graph of `q`,
/// annotated with conditions at the earliest node. `limit` caps the count
/// (the space is exponential; the paper's evaluation samples beyond 4-way
/// joins too).
pub fn enumerate_trees(q: &NormQuery, limit: usize) -> Vec<JoinTree> {
    let n = q.occurrences.len();
    let adj = join_graph(q);
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut memo: HashMap<u64, Vec<JoinTree>> = HashMap::new();
    let shapes = shapes_for(full, &adj, &mut memo, limit);
    shapes.into_iter().take(limit).map(|t| t.annotate(&q.eq_classes, &q.preds)).collect()
}

fn shapes_for(
    mask: u64,
    adj: &[u64],
    memo: &mut HashMap<u64, Vec<JoinTree>>,
    limit: usize,
) -> Vec<JoinTree> {
    if let Some(v) = memo.get(&mask) {
        return v.clone();
    }
    let mut out = Vec::new();
    if mask.count_ones() == 1 {
        out.push(JoinTree::Leaf(mask.trailing_zeros() as usize));
    } else {
        // Enumerate splits mask = a ∪ b with the lowest bit pinned to `a`
        // (unordered split canonicalization).
        let low = mask & mask.wrapping_neg();
        let rest = mask & !low;
        // Iterate over subsets s of `rest`: a = low | s, b = mask \ a.
        let mut s = rest;
        loop {
            let a = low | s;
            let b = mask & !a;
            if b != 0
                && is_connected(a, adj)
                && is_connected(b, adj)
                && has_cross_edge(a, b, adj)
            {
                let las = shapes_for(a, adj, memo, limit);
                let rbs = shapes_for(b, adj, memo, limit);
                'outer: for l in &las {
                    for r in &rbs {
                        out.push(JoinTree::node(JoinKind::Inner, l.clone(), r.clone(), vec![]));
                        if out.len() >= limit {
                            break 'outer;
                        }
                    }
                }
            }
            if s == 0 {
                break;
            }
            s = (s - 1) & rest;
            if out.len() >= limit {
                break;
            }
        }
    }
    memo.insert(mask, out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use xdata_catalog::university;
    use xdata_sql::parse_query;

    fn norm(sql: &str) -> NormQuery {
        normalize(&parse_query(sql).unwrap(), &university::schema()).unwrap()
    }

    #[test]
    fn two_relation_query_has_one_tree() {
        let q = norm("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        let trees = enumerate_trees(&q, 1000);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].node_count(), 1);
    }

    #[test]
    fn chain_of_three_has_two_trees() {
        // i–t and t–c edges only: ((i,t),c) and (i,(t,c)).
        let q = norm(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
        );
        let trees = enumerate_trees(&q, 1000);
        assert_eq!(trees.len(), 2);
    }

    #[test]
    fn shared_eq_class_adds_figure2_trees() {
        // A.x = B.x AND B.x = C.x puts all three in one class: the A–C edge
        // exists too, so the (A,C)-first tree of Figure 2(c) appears.
        let q = norm(
            "SELECT * FROM instructor a, teaches b, advisor c \
             WHERE a.id = b.id AND b.id = c.s_id",
        );
        let trees = enumerate_trees(&q, 1000);
        assert_eq!(trees.len(), 3, "all three bottom pairs are joinable");
    }

    #[test]
    fn no_cross_products() {
        // Disconnected pair: no join predicate at all — no trees (the
        // normalizer still produces a raw tree, but enumeration refuses a
        // cross product; the original tree connection via tree_links keeps
        // it connected, so use 3 relations where one pair is only linked
        // through the middle).
        let q = norm(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
        );
        let adj = join_graph(&q);
        // instructor(0) and course(2) must not be directly linked.
        assert_eq!(adj[0] & (1 << 2), 0);
    }

    #[test]
    fn trees_annotated_with_conditions() {
        let q = norm(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
        );
        for t in enumerate_trees(&q, 1000) {
            // Every internal node of a connected tree has ≥1 condition.
            fn check(t: &JoinTree) {
                if let JoinTree::Node { conds, left, right, .. } = t {
                    assert!(!conds.is_empty(), "bare node in {t:?}");
                    check(left);
                    check(right);
                }
            }
            check(&t);
        }
    }

    #[test]
    fn limit_respected() {
        let q = norm(
            "SELECT * FROM instructor a, teaches b, advisor c \
             WHERE a.id = b.id AND b.id = c.s_id",
        );
        assert_eq!(enumerate_trees(&q, 2).len(), 2);
    }

    #[test]
    fn five_way_chain_enumerates() {
        let q = norm(
            "SELECT * FROM instructor i, teaches t, course c, takes k, student s \
             WHERE i.id = t.id AND t.course_id = c.course_id \
             AND c.course_id = k.course_id AND k.sid = s.sid",
        );
        let trees = enumerate_trees(&q, 100_000);
        // teaches/course/takes share one eq class → richer graph than a
        // chain; exact count is structural, just sanity-bound it.
        assert!(trees.len() > 10, "got {}", trees.len());
        for t in &trees {
            assert_eq!(t.leaves().len(), 5);
        }
    }
}
